"""One-call construction of engines and their substrates.

Experiments need the same stack assembled over and over: embedder → ANN
index → judger → Sine → cache → engine, plus a remote service resolving
against a fact universe. These helpers build it with sensible defaults and a
single seed, so every benchmark and example reads as configuration rather
than plumbing.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.ann import FlatIndex, HNSWIndex, IVFIndex, PQIndex
from repro.ann.base import VectorIndex
from repro.core import (
    AsteriaCache,
    AsteriaConfig,
    AsteriaEngine,
    ExactCache,
    ExactEngine,
    ShardedAsteriaCache,
    Sine,
    VanillaEngine,
)
from repro.core.arena import build_arena
from repro.core.eviction import EvictionPolicy, policy_by_name
from repro.core.tiered import TieredEngine
from repro.serving.aio import (
    AsyncAsteriaEngine,
    AsyncRemoteService,
)
from repro.serving.concurrent import ConcurrentEngine
from repro.serving.proc.engine import ProcAsteriaEngine
from repro.serving.proc.pool import WorkerPool
from repro.serving.proc.worker import WorkerSpec
from repro.embedding import CachedEmbedder, HashingEmbedder
from repro.judger import SimulatedJudger, SpinningJudger, spin_iterations
from repro.judger.staticity import StaticityScorer
from repro.core.resilience import ResilienceManager
from repro.network import FaultInjector, RemoteDataService, TokenBucket
from repro.network.ratelimit import RateLimiter
from repro.sim.distributions import Distribution, Uniform
from repro.sim.random import derive_seed
from repro.store.backend import CacheBackend
from repro.workloads.facts import FactUniverse


def build_backend(
    backend: "str | None", arena=None, backend_dir=None
) -> CacheBackend | None:
    """Resolve a backend selector for cache construction.

    ``None``/``"inprocess"`` returns None (the cache builds its default
    :class:`~repro.store.backend.InProcessBackend` over ``arena``);
    ``"filestore"`` builds a durable
    :class:`~repro.store.filestore.FileStoreBackend` rooted at
    ``backend_dir``; a callable is invoked with the arena and must return a
    backend (escape hatch for custom stores).
    """
    if backend is None or backend == "inprocess":
        return None
    if backend == "filestore":
        if backend_dir is None:
            raise ValueError("backend='filestore' requires backend_dir")
        from repro.store.filestore import FileStoreBackend

        return FileStoreBackend(backend_dir, arena=arena)
    if callable(backend):
        return backend(arena)
    raise ValueError(
        f"unknown backend {backend!r}; expected inprocess/filestore or a callable"
    )


def _attach_persistence(cache, persist_dir, fsync_every: int = 8):
    """Attach a :class:`~repro.store.persist.PersistentStore` (restores any
    prior state, then journals). The store lands on ``cache.persistent_store``
    and the restore report on ``cache.restore_report``."""
    if persist_dir is None:
        return cache
    from repro.store.persist import PersistentStore

    store = PersistentStore(persist_dir, fsync_every=fsync_every)
    report = store.attach(cache)
    cache.persistent_store = store
    cache.restore_report = report
    return cache


def build_index(kind: str, dim: int, seed: int = 0, arena=None) -> VectorIndex:
    """An ANN index by name: ``flat`` (default), ``hnsw``, ``ivf``, or ``pq``.

    ``arena`` (an :class:`~repro.core.arena.EmbeddingArena`) makes the index
    score shared contiguous rows instead of per-key arrays; share one
    instance with the cache that feeds the index.
    """
    if kind == "flat":
        if arena is not None:
            return FlatIndex(dim, arena=arena)
        return FlatIndex(dim)
    if kind == "hnsw":
        return HNSWIndex(dim, seed=seed, arena=arena)
    if kind == "ivf":
        return IVFIndex(dim, seed=seed, arena=arena)
    if kind == "pq":
        return PQIndex(dim, seed=seed, arena=arena)
    raise ValueError(f"unknown index kind {kind!r}; expected flat/hnsw/ivf/pq")


def build_remote(
    universe: FactUniverse | None = None,
    latency: "Distribution | float | dict | None" = None,
    rate_limit_per_minute: int | None = None,
    cost_per_call: float = 0.005,
    seed: int = 0,
    name: str = "search-api",
    fault_injector: FaultInjector | None = None,
) -> RemoteDataService:
    """A remote data service, optionally resolving against ``universe``.

    ``latency`` defaults to the paper's U(0.3 s, 0.5 s) search-API range;
    pass 0.3 for the self-hosted RAG service. ``rate_limit_per_minute``
    installs a token bucket (Google's limit is 100 QPM). ``fault_injector``
    attaches a seeded chaos source (see
    :class:`~repro.network.faults.FaultInjector`).
    """
    limiter: RateLimiter | None = None
    if rate_limit_per_minute is not None:
        limiter = TokenBucket.per_minute(rate_limit_per_minute)
    return RemoteDataService(
        name=name,
        latency=latency if latency is not None else Uniform(0.3, 0.5),
        resolver=universe.resolve if universe is not None else None,
        rate_limiter=limiter,
        cost_per_call=cost_per_call,
        rng=np.random.default_rng(derive_seed(seed, f"remote:{name}")),
        fault_injector=fault_injector,
    )


def build_asteria_engine(
    remote: RemoteDataService,
    config: AsteriaConfig | None = None,
    seed: int = 0,
    index_kind: str = "flat",
    index: VectorIndex | None = None,
    policy: "EvictionPolicy | str" = "lcfu",
    judger: SimulatedJudger | None = None,
    judge_executor=None,
    resilience: ResilienceManager | None = None,
    arena: str | None = "float32",
    judge_spin: float = 0.0,
    backend: "str | None" = None,
    backend_dir=None,
    persist_dir=None,
    fsync_every: int = 8,
    name: str = "asteria",
) -> AsteriaEngine:
    """The full Asteria stack with simulated substrates.

    One ``seed`` derives independent streams for the embedder, judger, and
    staticity scorer, so two engines with the same seed behave identically.
    A pre-built ``index`` (matching the embedder's 256 dims) overrides
    ``index_kind`` when custom ANN parameters are needed — it then keeps its
    own storage (no shared arena). ``resilience`` overrides the engine's
    default fault-tolerance policy (circuit breaker, negative cache, stale
    serving). ``arena`` selects the embedding storage tier: ``"float32"``
    (default — contiguous rows, decision-identical to per-element arrays),
    ``"int8"`` (quantized, ~4x smaller, approximate scores), or ``None``
    for standalone per-element arrays. ``backend`` selects the element
    store (see :func:`build_backend`); ``persist_dir`` attaches
    snapshot+journal durability (restoring any prior state first — see
    :class:`~repro.store.persist.PersistentStore`).
    """
    config = config if config is not None else AsteriaConfig()
    embedder = CachedEmbedder(HashingEmbedder(seed=derive_seed(seed, "embedder")))
    shared_arena = None
    if index is None:
        shared_arena = build_arena(arena, embedder.dim)
        index = build_index(
            index_kind,
            embedder.dim,
            seed=derive_seed(seed, "index"),
            arena=shared_arena,
        )
    elif index.dim != embedder.dim:
        raise ValueError(
            f"custom index dim {index.dim} != embedder dim {embedder.dim}"
        )
    if judger is None:
        judger = SimulatedJudger(seed=derive_seed(seed, "judger"))
    if judge_spin > 0:
        judger = SpinningJudger(judger, spin=judge_spin)
    sine = Sine(
        embedder,
        index,
        judger,
        tau_sim=config.tau_sim,
        tau_lsm=config.tau_lsm,
        max_candidates=config.max_candidates,
    )
    if isinstance(policy, str):
        policy = policy_by_name(policy)
    resolved_backend = build_backend(backend, arena=shared_arena, backend_dir=backend_dir)
    cache = AsteriaCache(
        sine,
        capacity_items=config.capacity_items,
        default_ttl=config.default_ttl,
        policy=policy,
        staticity_scorer=StaticityScorer(seed=derive_seed(seed, "staticity")),
        staticity_ttl_scaling=config.staticity_ttl_scaling,
        arena=shared_arena if resolved_backend is None else None,
        backend=resolved_backend,
    )
    _attach_persistence(cache, persist_dir, fsync_every=fsync_every)
    return AsteriaEngine(
        cache,
        remote,
        config,
        judge_executor=judge_executor,
        resilience=resilience,
        name=name,
    )


def build_exact_engine(
    remote: RemoteDataService,
    capacity_items: int | None = None,
    default_ttl: float | None = 3600.0,
    name: str = "exact",
) -> ExactEngine:
    """The Agent_exact baseline."""
    cache = ExactCache(capacity_items=capacity_items, default_ttl=default_ttl)
    return ExactEngine(cache, remote, name=name)


def build_vanilla_engine(
    remote: RemoteDataService, name: str = "vanilla"
) -> VanillaEngine:
    """The Agent_vanilla baseline."""
    return VanillaEngine(remote, name=name)


def build_semantic_cache(
    config: AsteriaConfig | None = None,
    seed: int = 0,
    index_kind: str = "flat",
    policy: "EvictionPolicy | str" = "lcfu",
    arena: str | None = "float32",
    judge_spin: float = 0.0,
    judge_spin_iterations: int | None = None,
    backend: "str | None" = None,
    backend_dir=None,
    persist_dir=None,
    fsync_every: int = 8,
) -> AsteriaCache:
    """A standalone semantic cache (used for shared tiers and direct use).

    ``arena`` selects the embedding storage tier (``"float32"`` default /
    ``"int8"`` / ``None``) — see :func:`build_asteria_engine`. ``judge_spin``
    > 0 wraps the judger in a :class:`~repro.judger.SpinningJudger` that
    burns that many seconds of GIL-holding CPU per judged candidate
    (identical decisions, real CPU cost — for parallelism benchmarks).
    """
    config = config if config is not None else AsteriaConfig()
    embedder = CachedEmbedder(HashingEmbedder(seed=derive_seed(seed, "embedder")))
    shared_arena = build_arena(arena, embedder.dim)
    index = build_index(
        index_kind, embedder.dim, seed=derive_seed(seed, "index"), arena=shared_arena
    )
    judger = SimulatedJudger(seed=derive_seed(seed, "judger"))
    if judge_spin > 0:
        judger = SpinningJudger(
            judger, spin=judge_spin, iterations=judge_spin_iterations
        )
    sine = Sine(
        embedder,
        index,
        judger,
        tau_sim=config.tau_sim,
        tau_lsm=config.tau_lsm,
        max_candidates=config.max_candidates,
    )
    if isinstance(policy, str):
        policy = policy_by_name(policy)
    resolved_backend = build_backend(backend, arena=shared_arena, backend_dir=backend_dir)
    cache = AsteriaCache(
        sine,
        capacity_items=config.capacity_items,
        default_ttl=config.default_ttl,
        policy=policy,
        staticity_scorer=StaticityScorer(seed=derive_seed(seed, "staticity")),
        staticity_ttl_scaling=config.staticity_ttl_scaling,
        arena=shared_arena if resolved_backend is None else None,
        backend=resolved_backend,
    )
    return _attach_persistence(cache, persist_dir, fsync_every=fsync_every)


def build_sharded_cache(
    config: AsteriaConfig | None = None,
    seed: int = 0,
    shards: int = 4,
    index_kind: str = "flat",
    policy: "EvictionPolicy | str" = "lcfu",
    arena: str | None = "float32",
    judge_spin: float = 0.0,
    backend: "str | None" = None,
    backend_dir=None,
    persist_dir=None,
    fsync_every: int = 8,
) -> ShardedAsteriaCache:
    """A thread-safe sharded semantic cache for concurrent serving.

    Every shard is built with the *same* ``seed`` so all shards share
    embedding/judging behaviour (those substrates are deterministic
    per-text); with ``shards=1`` the result replays an unsharded
    :func:`build_semantic_cache` decision for decision. A bounded
    ``config.capacity_items`` is split evenly across shards (rounded up, so
    the total may exceed the request by up to ``shards - 1``). Each shard
    gets its own private embedding arena (tier selected by ``arena``), so
    shard locks also cover arena mutation.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    config = config if config is not None else AsteriaConfig()
    shard_config = config
    if config.capacity_items is not None and shards > 1:
        shard_config = replace(
            config, capacity_items=-(-config.capacity_items // shards)
        )
    shard_backend_dirs: list = [None] * shards
    if backend_dir is not None:
        from repro.store.persist import shard_directory

        shard_backend_dirs = [
            shard_directory(backend_dir, shard) for shard in range(shards)
        ]
    sharded = ShardedAsteriaCache(
        [
            build_semantic_cache(
                shard_config,
                seed=seed,
                index_kind=index_kind,
                policy=policy,
                arena=arena,
                judge_spin=judge_spin,
                backend=backend,
                backend_dir=shard_backend_dirs[shard],
            )
            for shard in range(shards)
        ]
    )
    if persist_dir is not None:
        from repro.store.persist import ShardedPersistentStore

        store = ShardedPersistentStore(persist_dir, shards, fsync_every=fsync_every)
        reports = store.attach(sharded)
        sharded.persistent_store = store
        sharded.restore_reports = reports
    return sharded


def build_concurrent_engine(
    remote: RemoteDataService,
    config: AsteriaConfig | None = None,
    seed: int = 0,
    shards: int = 4,
    workers: int = 4,
    index_kind: str = "flat",
    policy: "EvictionPolicy | str" = "lcfu",
    io_pause_scale: float = 0.0,
    follower_timeout: float | None = None,
    resilience: ResilienceManager | None = None,
    arena: str | None = "float32",
    judge_spin: float = 0.0,
    backend: "str | None" = None,
    backend_dir=None,
    persist_dir=None,
    fsync_every: int = 8,
    name: str = "asteria-concurrent",
) -> ConcurrentEngine:
    """The full concurrent serving stack: sharded cache + worker-pool engine.

    ``shards`` partitions the cache (stable-hash routing on canonical query
    text, one lock per shard); ``workers`` sizes the serving thread pool and
    closed-loop load generator. ``io_pause_scale`` > 0 turns each simulated
    remote fetch latency into a real wall-clock pause so worker pools
    overlap remote I/O the way a deployed system would — see
    :class:`~repro.serving.concurrent.ConcurrentEngine`.
    """
    config = config if config is not None else AsteriaConfig()
    if config.prefetch_enabled or config.recalibration_enabled:
        raise ValueError(
            "concurrent serving requires prefetch_enabled and "
            "recalibration_enabled off; run those studies sequentially"
        )
    cache = build_sharded_cache(
        config,
        seed=seed,
        shards=shards,
        index_kind=index_kind,
        policy=policy,
        arena=arena,
        judge_spin=judge_spin,
        backend=backend,
        backend_dir=backend_dir,
        persist_dir=persist_dir,
        fsync_every=fsync_every,
    )
    engine = AsteriaEngine(cache, remote, config, resilience=resilience, name=name)
    return ConcurrentEngine(
        engine,
        workers=workers,
        io_pause_scale=io_pause_scale,
        follower_timeout=follower_timeout,
    )


def build_async_engine(
    remote: RemoteDataService,
    config: AsteriaConfig | None = None,
    seed: int = 0,
    shards: int = 4,
    io_pause_scale: float = 0.0,
    max_inflight: int = 256,
    default_deadline: float | None = None,
    follower_timeout: float | None = None,
    hedge_percentile: float | None = None,
    hedge_min_samples: int = 20,
    batch_window: float = 0.0,
    batch_max: int = 16,
    index_kind: str = "flat",
    policy: "EvictionPolicy | str" = "lcfu",
    resilience: ResilienceManager | None = None,
    arena: str | None = "float32",
    judge_spin: float = 0.0,
    backend: "str | None" = None,
    backend_dir=None,
    persist_dir=None,
    fsync_every: int = 8,
    name: str = "asteria-async",
) -> AsyncAsteriaEngine:
    """The full asyncio serving stack: sharded cache + event-loop engine.

    Single-threaded, so the cache needs no locks — the sharded shape is
    kept anyway so async and thread-pool runs share one stack (and one
    paraphrase-routing behaviour) and differ only in how they overlap
    remote waits. ``io_pause_scale`` is the same knob as the thread pool's;
    ``max_inflight`` / ``default_deadline`` / ``hedge_percentile`` configure
    backpressure, deadlines, and hedging — see
    :class:`~repro.serving.aio.AsyncAsteriaEngine`.
    """
    config = config if config is not None else AsteriaConfig()
    if config.prefetch_enabled or config.recalibration_enabled:
        raise ValueError(
            "async serving requires prefetch_enabled and "
            "recalibration_enabled off; run those studies sequentially"
        )
    cache = build_sharded_cache(
        config,
        seed=seed,
        shards=shards,
        index_kind=index_kind,
        policy=policy,
        arena=arena,
        judge_spin=judge_spin,
        backend=backend,
        backend_dir=backend_dir,
        persist_dir=persist_dir,
        fsync_every=fsync_every,
    )
    engine = AsteriaEngine(cache, remote, config, resilience=resilience, name=name)
    return AsyncAsteriaEngine(
        engine,
        remote=AsyncRemoteService(remote, io_pause_scale=io_pause_scale),
        max_inflight=max_inflight,
        default_deadline=default_deadline,
        follower_timeout=follower_timeout,
        hedge_percentile=hedge_percentile,
        hedge_min_samples=hedge_min_samples,
        batch_window=batch_window,
        batch_max=batch_max,
    )


def build_proc_engine(
    remote: RemoteDataService,
    config: AsteriaConfig | None = None,
    seed: int = 0,
    workers: int = 4,
    io_pause_scale: float = 0.0,
    max_inflight: int = 256,
    default_deadline: float | None = None,
    follower_timeout: float | None = None,
    batch_window: float = 0.0,
    batch_max: int = 16,
    index_kind: str = "flat",
    policy: str = "lcfu",
    resilience: ResilienceManager | None = None,
    arena: str | None = "float32",
    judge_spin: float = 0.0,
    codec: str = "pickle",
    persist_dir=None,
    fsync_every: int = 8,
    name: str = "asteria-proc",
    launch: bool = True,
    supervise: bool = True,
    fault_domains: bool = True,
    supervisor_ping_interval: float = 0.25,
    supervisor_ping_timeout: float = 2.0,
    supervisor_backoff_base: float = 0.05,
    supervisor_backoff_max: float = 2.0,
    supervisor_max_restarts: int = 5,
    shard_open_seconds: float = 0.5,
    proc_faults=None,
) -> ProcAsteriaEngine:
    """The multi-process serving stack: shard worker processes + async router.

    ``workers`` is both the process count and the shard count (one shard per
    process, routed by the same stable crc32 hash as the sharded cache, so
    ``workers=1`` replays the single-process engine's decisions exactly). A
    bounded ``config.capacity_items`` is ceil-split across workers exactly
    like :func:`build_sharded_cache`. ``policy`` must be a *name* — it
    crosses the spawn boundary inside a :class:`WorkerSpec`. ``codec``
    selects the wire serializer (``pickle`` default, ``msgpack`` when
    installed). With ``launch=False`` the pool is constructed but no process
    is spawned (call ``engine.pool.launch()`` later).

    ``supervise`` arms the :class:`WorkerSupervisor` (heartbeat + respawn
    with backoff; warm restore when ``persist_dir`` is set);
    ``fault_domains`` arms the per-shard breakers that keep a dead shard's
    requests degrading locally (stale hit, else direct remote fetch)
    instead of failing the engine. ``proc_faults`` accepts a
    :class:`ProcFaultInjector` for chaos runs.
    """
    config = config if config is not None else AsteriaConfig()
    if config.prefetch_enabled or config.recalibration_enabled:
        raise ValueError(
            "proc serving requires prefetch_enabled and "
            "recalibration_enabled off; run those studies sequentially"
        )
    if not isinstance(policy, str):
        raise TypeError(
            "build_proc_engine needs a policy *name* (the spec crosses the "
            f"process boundary), got {type(policy).__name__}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shard_config = config
    if config.capacity_items is not None and workers > 1:
        shard_config = replace(
            config, capacity_items=-(-config.capacity_items // workers)
        )
    # Calibrate the spin once here, in the quiet parent, and ship the
    # iteration count to every worker: a worker calibrating while its
    # siblings burn CPU on the same cores would measure a contended loop
    # rate, give itself less work per judge, and fake parallel speedup.
    iterations = spin_iterations(judge_spin) if judge_spin > 0 else None
    shard_dirs: list[str | None] = [None] * workers
    if persist_dir is not None:
        from repro.store.persist import shard_directory

        shard_dirs = [
            str(shard_directory(persist_dir, shard)) for shard in range(workers)
        ]
    specs = [
        WorkerSpec(
            shard_id=shard,
            n_shards=workers,
            config=shard_config,
            seed=seed,
            index_kind=index_kind,
            policy=policy,
            arena=arena,
            judge_spin=judge_spin,
            judge_spin_iterations=iterations,
            codec=codec,
            persist_dir=shard_dirs[shard],
            fsync_every=fsync_every,
        )
        for shard in range(workers)
    ]
    pool = WorkerPool(
        specs,
        batch_window=batch_window,
        batch_max=batch_max,
        ann_only=config.ann_only,
        frame_faults=proc_faults,
    )
    if supervise:
        # Before the engine: ProcAsteriaEngine wires its restart/breaker
        # callbacks onto pool.supervisor in its constructor.
        pool.enable_supervision(
            ping_interval=supervisor_ping_interval,
            ping_timeout=supervisor_ping_timeout,
            backoff_base=supervisor_backoff_base,
            backoff_max=supervisor_backoff_max,
            max_restarts=supervisor_max_restarts,
        )
    if launch:
        pool.launch()
    return ProcAsteriaEngine(
        pool,
        remote,
        config,
        resilience=resilience,
        io_pause_scale=io_pause_scale,
        max_inflight=max_inflight,
        default_deadline=default_deadline,
        follower_timeout=follower_timeout,
        name=name,
        fault_domains=fault_domains,
        shard_open_seconds=shard_open_seconds,
        proc_faults=proc_faults,
    )


def build_tiered_engine(
    remote: RemoteDataService,
    l2: AsteriaCache,
    l1_capacity: int | None = 16,
    config: AsteriaConfig | None = None,
    seed: int = 0,
    l2_latency: float = 0.005,
    name: str = "tiered",
) -> TieredEngine:
    """One fleet node: a private L1 over the shared ``l2`` cache.

    Build the shared tier once with :func:`build_semantic_cache` (use the
    same ``seed`` so both tiers share embedder/judger behaviour), then one
    TieredEngine per node.
    """
    config = config if config is not None else AsteriaConfig()
    l1_config = AsteriaConfig(
        tau_sim=config.tau_sim,
        tau_lsm=config.tau_lsm,
        max_candidates=config.max_candidates,
        capacity_items=l1_capacity,
        default_ttl=config.default_ttl,
        staticity_ttl_scaling=config.staticity_ttl_scaling,
    )
    l1 = build_semantic_cache(l1_config, seed=seed)
    return TieredEngine(
        l1, l2, remote, config, l2_latency=l2_latency, name=name
    )
