"""Figure 13 — generation quality (Exact Match) with and without the judger.

The paper scores final answers by Exact Match. Asteria matches the
non-cached baseline, while the ANN-only ablation ("Asteria w/o judger")
drops — e.g. 0.69 vs 0.79 on StrategyQA — because vector similarity serves
related-but-wrong knowledge.

In our substrate the final answer is correct when (a) the agent's base
competence succeeds — the per-dataset ``base_em`` — and (b) every piece of
knowledge served during the task was the right fact. The EM estimate is
therefore ``base_em * P(knowledge path correct)``, with (b) measured.
"""

from __future__ import annotations

from repro.agent.search_agent import SearchAgent
from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult, SystemSetup
from repro.factory import build_remote
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_task_closed_loop
from repro.workloads.skewed import SkewedWorkload

DEFAULT_DATASETS = ("zilliz_gpt", "hotpotqa", "musique", "two_wiki", "strategyqa")
DEFAULT_SYSTEMS = ("vanilla", "asteria", "ann_only")


def run(
    dataset_names: tuple[str, ...] = DEFAULT_DATASETS,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    cache_ratio: float = 0.6,
    n_tasks: int = 400,
    seed: int = 0,
) -> ExperimentResult:
    """EM scores per (dataset, system); multi-hop tasks stress correctness."""
    result = ExperimentResult(
        name="Figure 13: generation quality (Exact Match)",
        notes=(
            "Paper shape: Asteria == vanilla; ANN-only drops (e.g. "
            "StrategyQA 0.69 vs 0.79)."
        ),
    )
    for dataset_name in dataset_names:
        dataset = build_dataset(dataset_name, seed=seed)
        capacity = dataset.capacity_for(cache_ratio)
        for system in systems:
            remote = build_remote(dataset.universe, seed=seed)
            setup = SystemSetup(system=system, capacity_items=capacity, seed=seed)
            engine = setup.build_engine(remote)
            workload = SkewedWorkload(dataset, seed=seed + 1)
            stats = run_task_closed_loop(SearchAgent(engine), workload.tasks(n_tasks))
            knowledge_accuracy = stats.accuracy
            result.add_row(
                dataset=dataset_name,
                system=system,
                em_score=round(dataset.base_em * knowledge_accuracy, 4),
                knowledge_accuracy=round(knowledge_accuracy, 4),
                hit_rate=round(engine.metrics.hit_rate, 4),
                served_incorrect=engine.metrics.served_incorrect,
            )
    return result
