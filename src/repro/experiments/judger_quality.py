"""Judger-quality sensitivity: how good must the LSM actually be?

§5 argues the judger is a pluggable component whose accuracy "can be
improved with minimal effort when needed". This sweep quantifies the
requirement: the judger's irreducible error rate (our ``flip_rate``) varies
from perfect to badly confused, and we measure what survives — hit rate
(false *negatives* burn hits), knowledge accuracy (false *positives* serve
wrong answers), and the resulting end-to-end EM estimate.
"""

from __future__ import annotations

from repro.agent.search_agent import SearchAgent
from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult
from repro.factory import build_asteria_engine, build_remote
from repro.judger import SimulatedJudger
from repro.sim.random import derive_seed
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_task_closed_loop
from repro.workloads.skewed import SkewedWorkload

DEFAULT_FLIP_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)


def run(
    dataset_name: str = "musique",
    flip_rates: tuple[float, ...] = DEFAULT_FLIP_RATES,
    cache_ratio: float = 0.12,
    n_tasks: int = 400,
    seed: int = 0,
) -> ExperimentResult:
    """One row per judger error rate, multi-hop tasks (errors compound).

    The default cache ratio (0.12) keeps the cache contended so both error
    directions are visible: false negatives burn hits, and false positives
    get real chances to serve a confusable (with the whole universe cached,
    the true match always outranks the lookalike and FPs hide).
    """
    result = ExperimentResult(
        name="Judger quality sweep: LSM error rate vs cache usefulness",
        notes=(
            "flip_rate is the judger's irreducible confusion probability; "
            "0.02 corresponds to the calibrated Qwen3-0.6B stand-in."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    for flip_rate in flip_rates:
        remote = build_remote(dataset.universe, seed=seed)
        judger = SimulatedJudger(
            seed=derive_seed(seed, "judger"), flip_rate=flip_rate
        )
        engine = build_asteria_engine(
            remote,
            AsteriaConfig(capacity_items=capacity),
            seed=seed,
            judger=judger,
        )
        workload = SkewedWorkload(dataset, seed=seed + 1)
        stats = run_task_closed_loop(
            SearchAgent(engine, answer_step=False), workload.tasks(n_tasks)
        )
        metrics = engine.metrics
        result.add_row(
            flip_rate=flip_rate,
            hit_rate=round(metrics.hit_rate, 4),
            knowledge_accuracy=round(stats.accuracy, 4),
            em_estimate=round(dataset.base_em * stats.accuracy, 4),
            wrong_servings=metrics.served_incorrect,
            api_calls=remote.calls,
        )
    return result
