"""Figure 12 — data-retrieval call volume and retry ratio under rate limits.

The paper runs a fixed task set against the 100-QPM search API: vanilla
issues ~1300 external calls with a 25 % retry ratio; Asteria issues 103
(a 92 % reduction) with retries at 0.5 %.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload

DEFAULT_SYSTEMS = ("vanilla", "asteria")


def run(
    dataset_name: str = "musique",
    cache_ratio: float = 0.4,
    n_tasks: int = 1300,
    concurrency: int = 8,
    rate_limit_per_minute: int = 100,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    seed: int = 0,
) -> ExperimentResult:
    """API call counts and retry ratios for the fixed task stream."""
    result = ExperimentResult(
        name="Figure 12: data retrieval calls and retry ratio",
        notes=(
            "Paper: vanilla ~1300 calls / 25% retries; Asteria 103 calls "
            "(-92%) / 0.5% retries."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    vanilla_calls = None
    for system in systems:
        workload = SkewedWorkload(dataset, seed=seed + 1)
        tasks = workload.single_hop_tasks(n_tasks)
        outcome = run_system_on_tasks(
            SystemSetup(system=system, capacity_items=capacity, seed=seed),
            tasks,
            dataset.universe,
            concurrency=concurrency,
            rate_limit_per_minute=rate_limit_per_minute,
        )
        calls = outcome.remote.calls
        if system == "vanilla":
            vanilla_calls = calls
        reduction = (
            round(1.0 - calls / vanilla_calls, 4)
            if vanilla_calls not in (None, 0)
            else 0.0
        )
        result.add_row(
            system=system,
            api_calls=calls,
            retries=outcome.remote.retries,
            retry_ratio=round(outcome.remote.retry_ratio, 4),
            call_reduction=reduction,
            hit_rate=round(outcome.engine.metrics.hit_rate, 4),
        )
    return result
