"""Table 2 — file access frequency for SWE-bench tasks on sqlfluff.

The paper counts how often each repository file is needed across coding
tasks: file 1 by every task (frequency 1.0), then 0.28, 0.22, ... 0.04. We
generate issues from the synthetic repository and measure the same
statistic, reporting generated-vs-paper per head file.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.workloads.swebench import (
    SWEBenchWorkload,
    TABLE2_ACCESS_FREQUENCIES,
    _HEAD_FILES,
)


def run(n_issues: int = 500, seed: int = 0) -> ExperimentResult:
    """Empirical file-access frequencies over ``n_issues`` generated issues."""
    workload = SWEBenchWorkload(seed=seed)
    issues = workload.issues(n_issues)
    frequencies = workload.empirical_file_frequencies(issues)
    result = ExperimentResult(
        name="Table 2: SWE-bench file access frequency (sqlfluff)",
        notes="Paper frequencies: 1.0, 0.28, 0.22, 0.14, 0.10, 0.08, 0.04, 0.04, 0.04.",
    )
    for file_rank, (path, paper_freq) in enumerate(
        zip(_HEAD_FILES, TABLE2_ACCESS_FREQUENCIES), start=1
    ):
        result.add_row(
            file_id=file_rank,
            path=path.rsplit("/", 1)[-1],
            paper_freq=paper_freq,
            measured_freq=round(frequencies.get(path, 0.0), 3),
        )
    return result
