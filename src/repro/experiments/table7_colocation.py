"""Table 7 — co-location efficiency: MPS 80/20 vs a dedicated judger GPU.

The paper co-locates the agent and judger on one GPU (CUDA MPS, 80 %/20 %)
and retains 94 % of dedicated-two-GPU throughput (2.72 vs 2.89 req/s) with a
9.5 % higher p99. ``run_serving_experiment`` is the shared machinery — the
cost analysis (Table 5) reuses it with its three configurations.
"""

from __future__ import annotations

from repro.agent.search_agent import SearchAgent
from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult
from repro.factory import build_asteria_engine, build_remote, build_vanilla_engine
from repro.serving.executor import PartitionJudgeExecutor
from repro.serving.gpu import GpuDevice
from repro.serving.memory import KVMemoryPool
from repro.serving.scheduler import PriorityAwareScheduler
from repro.sim.kernel import Simulator
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_task_concurrent
from repro.workloads.skewed import SkewedWorkload

#: Sublinear MPS compute-capping exponent (see GpuPartition.speed_exponent).
MPS_SPEED_EXPONENT = 0.3
#: Continuous-batching slots for the agent's partition.
AGENT_SLOTS = 8
#: H100-class memory budget for KV caches (GB).
TOTAL_KV_GB = 80.0


def _build_serving_stack(sim: Simulator, serving_mode: str):
    """GPU devices, partitions, memory, and scheduler for one mode.

    Returns (scheduler, judge_executor_or_None, gpu_count).
    """
    if serving_mode == "colocated":
        gpu = GpuDevice(sim, "gpu0")
        agent_part = gpu.partition(
            "agent", 0.8, slots=AGENT_SLOTS, speed_exponent=MPS_SPEED_EXPONENT
        )
        judger_part = gpu.partition(
            "judger", 0.2, slots=2, speed_exponent=MPS_SPEED_EXPONENT
        )
        memory = KVMemoryPool(TOTAL_KV_GB, {"agent": 56.0, "judger": 4.0})
        scheduler = PriorityAwareScheduler(sim, agent_part, judger_part, memory)
        return scheduler, PartitionJudgeExecutor(scheduler), 1
    if serving_mode == "dedicated":
        gpu0 = GpuDevice(sim, "gpu0")
        gpu1 = GpuDevice(sim, "gpu1")
        agent_part = gpu0.partition("agent", 1.0, slots=AGENT_SLOTS)
        judger_part = gpu1.partition("judger", 1.0, slots=2)
        memory = KVMemoryPool(2 * TOTAL_KV_GB, {"agent": 72.0, "judger": 72.0})
        scheduler = PriorityAwareScheduler(
            sim, agent_part, judger_part, memory, shared=False
        )
        return scheduler, PartitionJudgeExecutor(scheduler), 2
    if serving_mode == "vanilla":
        gpu0 = GpuDevice(sim, "gpu0")
        agent_part = gpu0.partition("agent", 1.0, slots=AGENT_SLOTS)
        # No judger work will ever be submitted; give the scheduler an
        # isolated partition so admission logic stays uniform.
        phantom = GpuDevice(sim, "phantom")
        judger_part = phantom.partition("judger", 1.0, slots=1)
        memory = KVMemoryPool(TOTAL_KV_GB, {"agent": 72.0, "judger": 0.0})
        scheduler = PriorityAwareScheduler(sim, agent_part, judger_part, memory)
        return scheduler, None, 1
    raise ValueError(
        f"unknown serving_mode {serving_mode!r}; expected "
        "colocated/dedicated/vanilla"
    )


def run_serving_experiment(
    serving_mode: str,
    dataset_name: str = "musique",
    cache_ratio: float = 0.6,
    n_tasks: int = 400,
    concurrency: int = 8,
    rate_limit_per_minute: int | None = 100,
    seed: int = 0,
) -> dict:
    """One serving-mode run with GPU-scheduled inference and judging.

    Returns a metrics dict (throughput, p99, hit rate, API calls, gpus).
    """
    sim = Simulator()
    scheduler, judge_executor, gpu_count = _build_serving_stack(sim, serving_mode)
    dataset = build_dataset(dataset_name, seed=seed)
    remote = build_remote(
        dataset.universe,
        rate_limit_per_minute=rate_limit_per_minute,
        seed=seed,
    )
    if serving_mode == "vanilla":
        engine = build_vanilla_engine(remote)
    else:
        capacity = dataset.capacity_for(cache_ratio)
        engine = build_asteria_engine(
            remote,
            AsteriaConfig(capacity_items=capacity),
            seed=seed,
            judge_executor=judge_executor,
        )
    agent = SearchAgent(engine, scheduler=scheduler, answer_step=False)
    workload = SkewedWorkload(dataset, seed=seed + 1)
    tasks = workload.single_hop_tasks(n_tasks)
    stats = run_task_concurrent(sim, agent, tasks, concurrency=concurrency)
    horizon = sim.now
    return {
        "serving_mode": serving_mode,
        "throughput_rps": stats.throughput(horizon) if horizon > 0 else 0.0,
        "mean_latency_s": stats.mean_latency,
        "p99_latency_s": stats.percentile_latency(99),
        "hit_rate": engine.metrics.hit_rate,
        "api_calls": remote.calls,
        "gpus": gpu_count,
        "judger_deferred": scheduler.stats.judger_deferred,
        "judger_dispatched": scheduler.stats.judger_dispatched,
    }


def run(
    dataset_name: str = "musique",
    cache_ratio: float = 0.6,
    n_tasks: int = 400,
    concurrency: int = 8,
    rate_limit_per_minute: int | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Dedicated-2GPU vs co-located MPS 80/20 on throughput and p99.

    The rate limiter is off by default so GPU contention — the effect under
    study — dominates; with a tight limiter both configurations converge on
    the remote bottleneck instead.
    """
    result = ExperimentResult(
        name="Table 7: co-location efficiency",
        notes=(
            "Paper: co-located retains 94% of dedicated throughput "
            "(2.72 vs 2.89 req/s) with +9.5% p99."
        ),
    )
    outcomes = {}
    for mode in ("dedicated", "colocated"):
        outcomes[mode] = run_serving_experiment(
            serving_mode=mode,
            dataset_name=dataset_name,
            cache_ratio=cache_ratio,
            n_tasks=n_tasks,
            concurrency=concurrency,
            rate_limit_per_minute=rate_limit_per_minute,
            seed=seed,
        )
    dedicated = outcomes["dedicated"]
    for mode in ("dedicated", "colocated"):
        outcome = outcomes[mode]
        result.add_row(
            configuration="Dedicated-2GPU" if mode == "dedicated" else "Co-located (MPS 80/20)",
            throughput_rps=round(outcome["throughput_rps"], 3),
            p99_latency_ms=round(outcome["p99_latency_s"] * 1000.0, 1),
            throughput_retention=round(
                outcome["throughput_rps"] / dedicated["throughput_rps"], 3
            )
            if dedicated["throughput_rps"] > 0
            else 0.0,
            p99_inflation=round(
                outcome["p99_latency_s"] / dedicated["p99_latency_s"] - 1.0, 3
            )
            if dedicated["p99_latency_s"] > 0
            else 0.0,
            hit_rate=round(outcome["hit_rate"], 3),
            gpus=outcome["gpus"],
        )
    return result
