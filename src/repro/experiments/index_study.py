"""ANN index ablation: does the coarse filter's recall reach the hit rate?

The paper uses FAISS and treats the ANN stage as a high-recall black box.
This study swaps the four native implementations — exact Flat, graph-based
HNSW, inverted-file IVF, and PQ compression — under the full engine and
measures what stage-1 recall does to the end metric: every true paraphrase
the index fails to surface is a lost hit no judger can recover.
"""

from __future__ import annotations

from repro.ann import PQIndex
from repro.core import AsteriaConfig
from repro.factory import build_asteria_engine, build_remote
from repro.experiments.harness import ExperimentResult
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload

DEFAULT_INDEXES = ("flat", "hnsw", "ivf", "pq", "pq-fine")

#: Embedding dimensionality of the factory's default embedder.
_EMBED_DIM = 256


def _build_custom_index(kind: str, seed: int):
    """Index variants beyond the factory names; None = use the factory."""
    if kind == "pq-fine":
        # Finer codebooks (m=32 subspaces, 256 centroids): 4x the code
        # bytes of the default PQ, far smaller ADC error.
        return PQIndex(_EMBED_DIM, m=32, k=256, train_threshold=512, seed=seed)
    return None


def run(
    dataset_name: str = "musique",
    index_kinds: tuple[str, ...] = DEFAULT_INDEXES,
    n_facts: int = 600,
    cache_items: int = 700,
    n_queries: int = 3000,
    zipf_s: float = 0.6,
    seed: int = 0,
) -> ExperimentResult:
    """One row per index kind over the same skewed stream.

    The universe is scaled up (600 facts, ~flat popularity) so the cache
    population crosses the approximate indexes' training thresholds —
    below them every index answers exactly and the ablation is vacuous.
    """
    result = ExperimentResult(
        name="ANN index ablation inside the full engine",
        notes=(
            "Flat is the recall=1.0 reference. Graph/IVF search stays "
            "near-exact at cache scale; default PQ (m=8, k=64) compresses "
            "256-dim embeddings so hard that ADC error crosses tau_sim and "
            "the coarse filter collapses — finer codebooks (pq-fine) "
            "recover it. Lesson: under a tight similarity threshold, "
            "quantisation error is a hit-rate cliff, not a slope."
        ),
    )
    dataset = build_dataset(
        dataset_name,
        seed=seed,
        n_facts=n_facts,
        n_questions=max(n_facts, 250),
        zipf_s=zipf_s,
    )
    capacity = cache_items
    reference_hit_rate = None
    for kind in index_kinds:
        remote = build_remote(dataset.universe, seed=seed)
        custom = _build_custom_index(kind, seed)
        engine = build_asteria_engine(
            remote,
            AsteriaConfig(capacity_items=capacity),
            seed=seed,
            index_kind=kind if custom is None else "flat",
            index=custom,
        )
        workload = SkewedWorkload(dataset, seed=seed + 1)
        now = 0.0
        for query in workload.queries(n_queries):
            response = engine.handle(query, now)
            now += response.latency + 0.1
        metrics = engine.metrics
        if kind == "flat":
            reference_hit_rate = metrics.hit_rate
        result.add_row(
            index=kind,
            hit_rate=round(metrics.hit_rate, 4),
            hit_rate_vs_flat=round(
                metrics.hit_rate / reference_hit_rate, 4
            )
            if reference_hit_rate
            else 1.0,
            accuracy=round(metrics.accuracy, 4),
            api_calls=remote.calls,
        )
    return result
