"""Figure 10 — throughput vs request rate/concurrency (Musique, ratio 0.4).

The paper's baselines plateau near 1 req/s — every request waits on a
rate-limited remote — while Asteria scales nearly linearly to 4.89 req/s at
a request rate of 8 (4.5× over exact, 5.7× over vanilla).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload

DEFAULT_CONCURRENCY = (1, 2, 4, 8)
DEFAULT_SYSTEMS = ("vanilla", "exact", "asteria")


def run(
    dataset_name: str = "musique",
    cache_ratio: float = 0.4,
    concurrency_levels: tuple[int, ...] = DEFAULT_CONCURRENCY,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    n_tasks: int = 600,
    rate_limit_per_minute: int | None = 100,
    seed: int = 0,
) -> ExperimentResult:
    """One row per (concurrency, system)."""
    result = ExperimentResult(
        name="Figure 10: throughput under varying request concurrency",
        notes=(
            "Paper shape: baselines saturate ~1 req/s; Asteria scales nearly "
            "linearly (4.89 req/s at rate 8 -> 4.5x/5.7x)."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    for concurrency in concurrency_levels:
        for system in systems:
            workload = SkewedWorkload(dataset, seed=seed + 1)
            tasks = workload.single_hop_tasks(n_tasks)
            outcome = run_system_on_tasks(
                SystemSetup(system=system, capacity_items=capacity, seed=seed),
                tasks,
                dataset.universe,
                concurrency=concurrency,
                rate_limit_per_minute=rate_limit_per_minute,
            )
            result.add_row(
                concurrency=concurrency,
                **outcome.metrics_row(),
            )
    return result
