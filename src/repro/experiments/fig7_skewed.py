"""Figure 7 — end-to-end serving on skewed search workloads vs cache ratio.

For each dataset (Zilliz-GPT, HotpotQA, Musique, 2Wiki) and cache-size
ratio, the paper compares Agent_vanilla, Agent_exact, and Agent_Asteria on
throughput, cache hit rate, and latency under Zipf(0.99) traffic with a
rate-limited search API. Headline shapes: Asteria sustains >85 % hit rates
where exact-match stays below 20 %, yielding up to 3.6× throughput and up to
4× lower latency.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.workloads.datasets import DATASET_NAMES, build_dataset
from repro.workloads.skewed import SkewedWorkload

DEFAULT_RATIOS = (0.1, 0.2, 0.4, 0.6, 0.8)
DEFAULT_SYSTEMS = ("vanilla", "exact", "asteria")


def run(
    dataset_names: tuple[str, ...] = DATASET_NAMES,
    cache_ratios: tuple[float, ...] = DEFAULT_RATIOS,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    n_tasks: int = 1000,
    concurrency: int = 8,
    rate_limit_per_minute: int | None = 100,
    seed: int = 0,
) -> ExperimentResult:
    """The full sweep; one row per (dataset, ratio, system)."""
    result = ExperimentResult(
        name="Figure 7: skewed search workloads (Zipf 0.99) vs cache ratio",
        notes=(
            "Paper shape: Asteria >85% hit rate and up to 3.6x throughput "
            "over exact-match (<20% hits) across all four datasets."
        ),
    )
    for dataset_name in dataset_names:
        dataset = build_dataset(dataset_name, seed=seed)
        for ratio in cache_ratios:
            capacity = dataset.capacity_for(ratio)
            for system in systems:
                workload = SkewedWorkload(dataset, seed=seed + 1)
                tasks = workload.single_hop_tasks(n_tasks)
                outcome = run_system_on_tasks(
                    SystemSetup(system=system, capacity_items=capacity, seed=seed),
                    tasks,
                    dataset.universe,
                    concurrency=concurrency,
                    rate_limit_per_minute=rate_limit_per_minute,
                )
                result.add_row(
                    dataset=dataset_name,
                    cache_ratio=ratio,
                    **outcome.metrics_row(),
                )
    return result
