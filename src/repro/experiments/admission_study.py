"""Admission ablation: what keeps one-hit wonders out of the cache.

§3.2 asks "when does a candidate become a cache hit ... how should admission
and eviction operate"; §4.3 wants the cache unpolluted. This study compares
admit-everything (the paper's default) against a TinyLFU-style doorkeeper
(admit on the second semantically-equivalent miss) on a tail-heavy workload
with a tight cache: the doorkeeper sacrifices the second request of every
genuinely popular fact but stops the Zipf tail from churning the cache.
"""

from __future__ import annotations

from repro.core import AsteriaConfig, DoorkeeperAdmission
from repro.experiments.harness import ExperimentResult
from repro.factory import build_asteria_engine, build_remote
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload


def run(
    dataset_name: str = "hotpotqa",
    cache_ratio: float = 0.06,
    n_queries: int = 2000,
    zipf_s: float = 0.7,
    seed: int = 0,
) -> ExperimentResult:
    """One row per admission policy on the same tail-heavy stream."""
    result = ExperimentResult(
        name="Admission study: always-admit vs doorkeeper",
        notes=(
            "Tight cache + long tail: admit-everything churns, the "
            "doorkeeper filters one-hit wonders at the cost of one extra "
            "miss per recurring fact."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed, zipf_s=zipf_s)
    capacity = dataset.capacity_for(cache_ratio)
    for label in ("always", "doorkeeper"):
        remote = build_remote(dataset.universe, seed=seed)
        engine = build_asteria_engine(
            remote, AsteriaConfig(capacity_items=capacity), seed=seed
        )
        if label == "doorkeeper":
            engine.admission = DoorkeeperAdmission(window=600.0)
        workload = SkewedWorkload(dataset, seed=seed + 1)
        now = 0.0
        for query in workload.queries(n_queries):
            response = engine.handle(query, now)
            now += response.latency + 0.2
        metrics = engine.metrics
        result.add_row(
            admission=label,
            hit_rate=round(metrics.hit_rate, 4),
            evictions=metrics.evictions,
            inserts=engine.cache.stats.inserts,
            api_calls=remote.calls,
            api_cost_usd=round(remote.cost_meter.api_cost, 4),
        )
    return result
