"""Figure 3 — bursty and correlated query patterns.

The paper shows that external events spike a topic's search interest and
drag related topics up with it. We generate a trend trace and report, per
event, the pre-event rate, the peak rate, the burst ratio, and the related
topic's correlated surge.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.harness import ExperimentResult
from repro.workloads.datasets import build_dataset
from repro.workloads.trend import TrendWorkload


def run(
    dataset_name: str = "hotpotqa",
    duration: float = 600.0,
    base_rate: float = 1.0,
    seed: int = 0,
    window: float = 30.0,
) -> ExperimentResult:
    """Per-event burst and correlation measurements from a trend trace."""
    dataset = build_dataset(dataset_name, seed=seed)
    workload = TrendWorkload(
        dataset, duration=duration, base_rate=base_rate, seed=seed + 1
    )
    arrivals = workload.timed_queries()
    fact_topic = {fact.fact_id: fact.topic for fact in dataset.universe}

    def topic_count(topic: str, start: float, end: float) -> int:
        return sum(
            1
            for at, query in arrivals
            if start <= at < end and fact_topic.get(query.fact_id) == topic
        )

    result = ExperimentResult(
        name="Figure 3: bursty, correlated query patterns",
        notes=(
            "Paper: events (e.g. a model release, a royal succession) cause "
            "sudden spikes and correlated surges in related topics."
        ),
    )
    for index, event in enumerate(workload.events):
        before = topic_count(event.topic, max(0.0, event.start - window), event.start)
        after = topic_count(event.topic, event.start, event.start + window)
        row = {
            "event": index,
            "topic": event.topic,
            "start_s": event.start,
            "queries_before": before,
            "queries_after": after,
            "burst_ratio": round((after + 1) / (before + 1), 2),
        }
        if event.related:
            related_topic = event.related[0][0]
            related_before = topic_count(
                related_topic, max(0.0, event.start - window), event.start
            )
            related_after = topic_count(
                related_topic, event.start, event.start + window
            )
            row["related_topic"] = related_topic
            row["related_burst_ratio"] = round(
                (related_after + 1) / (related_before + 1), 2
            )
        result.add_row(**row)
    totals = Counter(fact_topic.get(query.fact_id) for _, query in arrivals)
    result.notes += f" Total arrivals: {len(arrivals)} across {len(totals)} topics."
    return result
