"""Fleet-scale extension: per-node L1 + shared regional L2.

Not a paper artefact — the natural deployment the paper's cross-region
framing and multi-cloud related work (Macaron, EVCache) point to. N agent
nodes round-robin one skewed workload; with a shared L2 a single node's
remote fetch warms the entire fleet, so the fleet hit rate stays flat as
nodes are added, while isolated nodes dilute their private caches.
"""

from __future__ import annotations

from repro.core import AsteriaConfig
from repro.factory import build_remote, build_semantic_cache, build_tiered_engine
from repro.experiments.harness import ExperimentResult
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload

DEFAULT_NODE_COUNTS = (1, 2, 4, 8)


def run(
    dataset_name: str = "musique",
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    l1_capacity: int = 8,
    l2_capacity: int = 150,
    n_queries: int = 1200,
    seed: int = 0,
) -> ExperimentResult:
    """One row per (node count, sharing mode)."""
    result = ExperimentResult(
        name="Tiered fleet: shared L2 vs isolated nodes",
        notes=(
            "Shared tier keeps the fleet hit rate flat as nodes scale; "
            "isolated nodes pay one cold start per node."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    for n_nodes in node_counts:
        for shared in (False, True):
            remote = build_remote(dataset.universe, seed=seed)
            nodes = []
            shared_l2 = (
                build_semantic_cache(
                    AsteriaConfig(capacity_items=l2_capacity), seed=seed + 5
                )
                if shared
                else None
            )
            for index in range(n_nodes):
                l2 = shared_l2
                if l2 is None:
                    # Isolated: same total L2 budget, split across nodes.
                    per_node = max(1, l2_capacity // n_nodes)
                    l2 = build_semantic_cache(
                        AsteriaConfig(capacity_items=per_node), seed=seed + 5
                    )
                nodes.append(
                    build_tiered_engine(
                        remote,
                        l2,
                        l1_capacity=l1_capacity,
                        seed=seed + 5,
                        name=f"node{index}",
                    )
                )
            workload = SkewedWorkload(dataset, seed=seed + 1)
            now = 0.0
            latencies = []
            for index, query in enumerate(workload.queries(n_queries)):
                response = nodes[index % n_nodes].handle(query, now)
                latencies.append(response.latency)
                now += response.latency + 0.05
            hits = sum(node.metrics.hits for node in nodes)
            total = sum(node.metrics.requests for node in nodes)
            l2_hits = sum(node.l2_hits for node in nodes)
            result.add_row(
                nodes=n_nodes,
                l2="shared" if shared else "isolated",
                fleet_hit_rate=round(hits / total, 4),
                l2_hit_share=round(l2_hits / total, 4),
                remote_calls=remote.calls,
                mean_latency_s=round(sum(latencies) / len(latencies), 4),
            )
    return result
