"""Figure 11 — per-request end-to-end latency breakdown at low concurrency.

The paper isolates a single request: vanilla spends 0.6 s on inference plus
0.48 s on external retrieval (1.08 s total); Asteria replaces the remote
call with 0.02 s of cache retrieval and 0.03 s of judger validation
(0.61 s total, with inference unchanged).
"""

from __future__ import annotations

from repro.agent.search_agent import SearchAgent
from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult
from repro.factory import build_asteria_engine, build_remote, build_vanilla_engine
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_task_closed_loop
from repro.workloads.skewed import SkewedWorkload


def run(
    dataset_name: str = "musique",
    n_requests: int = 200,
    seed: int = 0,
) -> ExperimentResult:
    """Mean per-request component latencies for vanilla vs Asteria.

    Asteria is measured in steady state (after a warm-up pass that
    populates the cache), mirroring the paper's hit-path breakdown.
    """
    dataset = build_dataset(dataset_name, seed=seed)
    result = ExperimentResult(
        name="Figure 11: per-request latency breakdown",
        notes=(
            "Paper: vanilla 1.08 s = 0.6 inference + 0.48 retrieval; "
            "Asteria 0.61-0.65 s = 0.6 inference + 0.02 cache + 0.03 judger."
        ),
    )

    # -- vanilla ------------------------------------------------------------
    remote = build_remote(dataset.universe, seed=seed)
    vanilla = build_vanilla_engine(remote)
    workload = SkewedWorkload(dataset, seed=seed + 1)
    stats = run_task_closed_loop(
        SearchAgent(vanilla, answer_step=False),
        workload.single_hop_tasks(n_requests),
    )
    mean_total = stats.mean_latency
    mean_inference = sum(r.inference_latency for r in stats.results) / stats.tasks
    mean_retrieval = sum(r.retrieval_latency for r in stats.results) / stats.tasks
    result.add_row(
        system="vanilla",
        total_s=round(mean_total, 4),
        inference_s=round(mean_inference, 4),
        retrieval_s=round(mean_retrieval, 4),
        cache_check_s=0.0,
        judger_s=0.0,
    )

    # -- Asteria (steady state) ------------------------------------------------
    remote = build_remote(dataset.universe, seed=seed)
    engine = build_asteria_engine(remote, AsteriaConfig(), seed=seed)
    warm = SkewedWorkload(dataset, seed=seed + 1)
    run_task_closed_loop(
        SearchAgent(engine, answer_step=False), warm.single_hop_tasks(n_requests)
    )
    engine.metrics.reset()  # Fresh counters; keep the warmed cache.
    measure = SkewedWorkload(dataset, seed=seed + 2)
    stats = run_task_closed_loop(
        SearchAgent(engine, answer_step=False),
        measure.single_hop_tasks(n_requests),
    )
    mean_total = stats.mean_latency
    mean_inference = sum(r.inference_latency for r in stats.results) / stats.tasks
    mean_retrieval = sum(r.retrieval_latency for r in stats.results) / stats.tasks
    ann = engine.config.ann_latency
    judger = max(0.0, engine.metrics.cache_check_latency.mean - ann)
    result.add_row(
        system="asteria",
        total_s=round(mean_total, 4),
        inference_s=round(mean_inference, 4),
        retrieval_s=round(mean_retrieval, 4),
        cache_check_s=round(ann, 4),
        judger_s=round(judger, 4),
        hit_rate=round(engine.metrics.hit_rate, 4),
    )
    return result
