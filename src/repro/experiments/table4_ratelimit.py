"""Table 4 — normalised throughput with and without API rate limits.

Using the self-deployed RAG service (300 ms, no fee) so the limiter can be
toggled, the paper finds Asteria is 1.5× faster than vanilla without a rate
limit (pure latency savings) and 4.16× faster with one — i.e. rate-limit
avoidance alone contributes an extra ~2.8×.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload


def run(
    dataset_name: str = "musique",
    cache_ratio: float = 0.4,
    n_tasks: int = 600,
    concurrency: int = 8,
    rate_limit_per_minute: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    """Normalised throughput for {vanilla, asteria} x {no limit, limit}."""
    result = ExperimentResult(
        name="Table 4: normalised throughput, w/o vs w/ API rate limit",
        notes="Paper: Asteria 1.5x without a limit, 4.16x with one.",
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    throughputs: dict[tuple[str, bool], float] = {}
    for limited in (False, True):
        for system in ("vanilla", "asteria"):
            workload = SkewedWorkload(dataset, seed=seed + 1)
            tasks = workload.single_hop_tasks(n_tasks)
            outcome = run_system_on_tasks(
                SystemSetup(system=system, capacity_items=capacity, seed=seed),
                tasks,
                dataset.universe,
                concurrency=concurrency,
                rate_limit_per_minute=rate_limit_per_minute if limited else None,
                remote_latency=0.3,
                cost_per_call=0.0,
            )
            throughputs[(system, limited)] = outcome.throughput
    for limited in (False, True):
        baseline = throughputs[("vanilla", limited)]
        for system in ("vanilla", "asteria"):
            absolute = throughputs[(system, limited)]
            result.add_row(
                rate_limit="with" if limited else "without",
                system=system,
                throughput_rps=round(absolute, 4),
                normalized=round(absolute / baseline, 3) if baseline > 0 else 0.0,
            )
    return result
