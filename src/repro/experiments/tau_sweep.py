"""§4.2 ablation — the τ_sim / τ_lsm trade-off surfaces.

The paper describes both thresholds' levers: a permissive τ_sim raises
recall but inflates validation work; a strict τ_lsm raises precision but
rejects marginal matches. This sweep measures hit rate, precision (fraction
of hits that were truly equivalent), and judger workload across the grid —
the data behind choosing (0.7, 0.9) as the operating point and behind
Algorithm 1's precision-curve search.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup
from repro.factory import build_remote
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_closed_loop
from repro.workloads.skewed import SkewedWorkload

DEFAULT_TAU_SIM = (0.6, 0.7, 0.8, 0.95, 0.99)
DEFAULT_TAU_LSM = (0.02, 0.1, 0.5, 0.9)


def run(
    dataset_name: str = "musique",
    tau_sim_values: tuple[float, ...] = DEFAULT_TAU_SIM,
    tau_lsm_values: tuple[float, ...] = DEFAULT_TAU_LSM,
    cache_ratio: float = 0.6,
    n_queries: int = 800,
    seed: int = 0,
) -> ExperimentResult:
    """One row per (τ_sim, τ_lsm) pair."""
    result = ExperimentResult(
        name="Threshold sweep: tau_sim x tau_lsm",
        notes=(
            "Lower tau_sim -> more candidates judged; lower tau_lsm -> "
            "higher hit rate but lower precision."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    for tau_sim in tau_sim_values:
        for tau_lsm in tau_lsm_values:
            remote = build_remote(dataset.universe, seed=seed)
            setup = SystemSetup(
                system="asteria",
                capacity_items=capacity,
                seed=seed,
                tau_sim=tau_sim,
                tau_lsm=tau_lsm,
            )
            engine = setup.build_engine(remote)
            workload = SkewedWorkload(dataset, seed=seed + 1)
            responses, _ = run_closed_loop(engine, workload.queries(n_queries))
            judged_total = sum(r.lookup.judged for r in responses)
            metrics = engine.metrics
            hits = metrics.hits
            # served_correct counts misses (remote is authoritative) plus
            # correct hits; subtract misses to get hit-path precision.
            correct_hits = metrics.served_correct - metrics.misses
            precision = correct_hits / hits if hits else 1.0
            result.add_row(
                tau_sim=tau_sim,
                tau_lsm=tau_lsm,
                hit_rate=round(metrics.hit_rate, 4),
                hit_precision=round(precision, 4),
                served_incorrect=metrics.served_incorrect,
                judged_per_lookup=round(judged_total / max(1, len(responses)), 3),
            )
    return result
