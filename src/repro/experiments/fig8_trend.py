"""Figure 8 — trend-driven (bursty) workload vs cache ratio.

The paper compresses 12 hours of Google Trends into a 10-minute trace and
reports up to 3.8× throughput over Agent_vanilla with ~95 % hit rates,
crediting the LCFU policy's staticity-aware self-cleaning. The trace is an
open-loop arrival stream, so throughput here is completed requests/second
over the trace; prefetching is enabled for Asteria (the trend correlations
are what it exploits).
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup
from repro.factory import build_remote
from repro.sim.kernel import Simulator
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_open_loop
from repro.workloads.trend import TrendWorkload

DEFAULT_RATIOS = (0.1, 0.2, 0.4, 0.6, 0.8)
DEFAULT_SYSTEMS = ("vanilla", "exact", "asteria")


def run(
    dataset_name: str = "hotpotqa",
    cache_ratios: tuple[float, ...] = DEFAULT_RATIOS,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    duration: float = 600.0,
    base_rate: float = 1.0,
    rate_limit_per_minute: int | None = 100,
    seed: int = 0,
) -> ExperimentResult:
    """One row per (ratio, system) over the bursty trace."""
    result = ExperimentResult(
        name="Figure 8: trend-driven workload vs cache ratio",
        notes=(
            "Paper shape: ~95% hit rate, up to 3.8x throughput over vanilla; "
            "LCFU's staticity term reclaims space from stale trends."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    for ratio in cache_ratios:
        capacity = dataset.capacity_for(ratio)
        for system in systems:
            workload = TrendWorkload(
                dataset, duration=duration, base_rate=base_rate, seed=seed + 1
            )
            arrivals = workload.timed_queries()
            sim = Simulator()
            remote = build_remote(
                dataset.universe,
                rate_limit_per_minute=rate_limit_per_minute,
                seed=seed,
            )
            setup = SystemSetup(
                system=system,
                capacity_items=capacity,
                seed=seed,
                prefetch=system == "asteria",
            )
            engine = setup.build_engine(remote)
            responses = run_open_loop(sim, engine, arrivals)
            horizon = max(sim.now, duration)
            latencies = sorted(response.latency for response in responses)
            p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
            result.add_row(
                cache_ratio=ratio,
                system=system,
                throughput_rps=round(len(responses) / horizon, 4),
                hit_rate=round(engine.metrics.hit_rate, 4),
                mean_latency_s=round(
                    sum(latencies) / len(latencies) if latencies else 0.0, 4
                ),
                p99_latency_s=round(p99, 4),
                api_calls=remote.calls,
                retry_ratio=round(remote.retry_ratio, 4),
                prefetches=engine.metrics.prefetches_issued,
            )
    return result
