"""Figure 2 — Zipfian distribution of search interest.

The paper plots Google Trends topic volumes over 24-hour and 7-day windows
and observes a Zipf pattern: a few head topics dominate. We draw query
volumes from the Zipf(0.99) sampler over a topic universe and report the
head shares plus a fitted log-log slope.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.sim.random import derive_seed
from repro.workloads.zipf import ZipfSampler


def run(
    n_topics: int = 1000,
    window_draws: tuple[tuple[str, int], ...] = (("24h", 20000), ("7d", 120000)),
    zipf_s: float = 0.99,
    seed: int = 0,
    head: int = 5,
) -> ExperimentResult:
    """Topic volumes per time window; top-``head`` topics reported."""
    result = ExperimentResult(
        name="Figure 2: Zipfian search interest by time window",
        notes=(
            "Paper: top-5 topics dominate both the 24-hour and 7-day "
            "windows; long tail of thousands of topics."
        ),
    )
    sampler = ZipfSampler(n_topics, zipf_s)
    for window, draws in window_draws:
        rng = np.random.default_rng(derive_seed(seed, f"fig2:{window}"))
        ranks = sampler.sample_many(rng, draws)
        counts = np.bincount(ranks, minlength=n_topics)
        order = np.argsort(-counts)
        top_volume = int(counts[order[:head]].sum())
        # Fitted slope of log(volume) vs log(rank) over the head 50 topics.
        head_n = min(50, n_topics)
        observed = counts[order[:head_n]].astype(float)
        observed[observed == 0] = 0.5
        slope = float(
            np.polyfit(np.log(np.arange(1, head_n + 1)), np.log(observed), 1)[0]
        )
        for position in range(head):
            result.add_row(
                window=window,
                topic_rank=position + 1,
                volume=int(counts[order[position]]),
                share=round(float(counts[order[position]]) / draws, 4),
            )
        result.add_row(
            window=window,
            topic_rank="top5_total",
            volume=top_volume,
            share=round(top_volume / draws, 4),
            fitted_slope=round(slope, 3),
        )
    return result
