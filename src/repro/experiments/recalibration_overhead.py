"""§6.7 — threshold recalibration: overhead and drift stabilisation.

The paper samples 5 recent queries per minute for ground-truth labelling and
reports a ~2 % throughput cost for stabilised precision under drift. ``run``
measures the overhead (Asteria with and without recalibration on the same
stream); ``run_drift`` measures the stabilisation: mid-run the judger's
error rate jumps (workload drift into a domain it handles badly) and the
recalibrated system restores precision by tightening τ_lsm — and, with the
§5 fine-tuning hook, by improving the judger itself.
"""

from __future__ import annotations

from repro.agent.search_agent import SearchAgent
from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.factory import build_asteria_engine, build_remote
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_task_closed_loop
from repro.workloads.skewed import SkewedWorkload


def run(
    dataset_name: str = "hotpotqa",
    cache_ratio: float = 0.4,
    n_tasks: int = 800,
    concurrency: int = 8,
    rate_limit_per_minute: int | None = 100,
    recalibration_interval: float = 10.0,
    seed: int = 0,
) -> ExperimentResult:
    """Asteria with recalibration off vs on."""
    result = ExperimentResult(
        name="Recalibration overhead (§6.7)",
        notes=(
            "Paper: ~2% throughput cost; small periodic samples keep the "
            "precision target under drift."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    throughputs = {}
    for recalibrate in (False, True):
        workload = SkewedWorkload(dataset, seed=seed + 1)
        tasks = workload.single_hop_tasks(n_tasks)
        outcome = run_system_on_tasks(
            SystemSetup(
                system="asteria",
                capacity_items=capacity,
                seed=seed,
                recalibration=recalibrate,
                # The paper recalibrates once a minute over hour-long runs;
                # these compressed traces last a few simulated minutes, so
                # the interval is scaled down proportionally.
                recalibration_interval=recalibration_interval,
            ),
            tasks,
            dataset.universe,
            concurrency=concurrency,
            rate_limit_per_minute=rate_limit_per_minute,
        )
        throughputs[recalibrate] = outcome.throughput
        engine = outcome.engine
        result.add_row(
            recalibration="on" if recalibrate else "off",
            throughput_rps=round(outcome.throughput, 4),
            hit_rate=round(engine.metrics.hit_rate, 4),
            accuracy=round(engine.metrics.accuracy, 4),
            rounds=engine.metrics.recalibrations,
            final_tau_lsm=round(engine.cache.sine.tau_lsm, 4)
            if hasattr(engine, "cache")
            else None,
            gt_fetches=outcome.remote.cost_meter.by_tool().get("ground-truth", 0.0),
        )
    if throughputs[False] > 0:
        overhead = 1.0 - throughputs[True] / throughputs[False]
        result.notes += f" Measured overhead: {overhead:.2%}."
    return result


def run_drift(
    dataset_name: str = "musique",
    cache_ratio: float = 0.1,
    phase_tasks: int = 400,
    drifted_neg: tuple = (12.0, 2.0),
    recalibration_interval: float = 20.0,
    seed: int = 0,
) -> ExperimentResult:
    """Accuracy under judger drift, with and without Algorithm 1 (+ §5).

    Phase 1 is the normal workload; at the phase boundary the judger's
    score separation degrades — non-equivalent pairs start drawing from
    Beta(12, 2) (mean 0.86 with real mass above τ) instead of the calibrated
    Beta(0.8, 20) — modelling drift into a domain whose distinctions the
    LSM has not learned. Three configurations serve phase 2: recalibration
    off, recalibration on (τ tightens), and recalibration + fine-tuning
    (the judger itself recovers). Reported: phase-2 hit rate, hit
    precision, final τ_lsm, and the judger's final negative-score mean.
    """
    result = ExperimentResult(
        name="Recalibration under judger drift (§6.7 + §5)",
        notes=(
            "Paper: recalibration stabilises accuracy under drift at "
            "negligible cost; the annotated set can also fine-tune the LSM."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    configurations = (
        ("no_recalibration", False, False),
        ("recalibration", True, False),
        ("recalibration_finetune", True, True),
    )
    for label, recalibrate, finetune in configurations:
        remote = build_remote(dataset.universe, seed=seed)
        config = AsteriaConfig(
            capacity_items=capacity,
            recalibration_enabled=recalibrate,
            recalibration_interval=recalibration_interval,
            recalibration_samples=20,
            finetune_enabled=finetune,
        )
        engine = build_asteria_engine(remote, config, seed=seed)
        agent = SearchAgent(engine, answer_step=False)
        workload = SkewedWorkload(dataset, seed=seed + 1)
        phase1 = run_task_closed_loop(agent, workload.single_hop_tasks(phase_tasks))
        # The drift moment: non-equivalent pairs stop looking obviously
        # different to the judger.
        judger = engine.cache.sine.judger
        judger.neg_alpha, judger.neg_beta = drifted_neg
        if engine.recalibrator is not None:
            engine.recalibrator.forget()  # Pre-drift labels are stale.
        engine.metrics.reset()
        phase2 = SkewedWorkload(dataset, seed=seed + 2)
        stats = run_task_closed_loop(
            agent,
            phase2.single_hop_tasks(phase_tasks),
            start=phase1.results[-1].finished_at,
        )
        metrics = engine.metrics
        correct_hits = metrics.served_correct - metrics.misses
        precision = correct_hits / metrics.hits if metrics.hits else 1.0
        final_neg_mean = judger.neg_alpha / (judger.neg_alpha + judger.neg_beta)
        result.add_row(
            configuration=label,
            phase2_hit_rate=round(metrics.hit_rate, 4),
            phase2_hit_precision=round(precision, 4),
            phase2_task_accuracy=round(stats.accuracy, 4),
            final_tau_lsm=round(engine.cache.sine.tau_lsm, 4),
            final_neg_score_mean=round(final_neg_mean, 4),
            recalibration_rounds=metrics.recalibrations,
        )
    return result
