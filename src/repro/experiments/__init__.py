"""Experiment runners: one module per table/figure of the paper's evaluation.

Every runner exposes ``run(...) -> ExperimentResult`` with parameters
defaulting to a paper-faithful configuration but scalable down for tests.
The benchmarks in ``benchmarks/`` call these runners and print the same
rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.

| Runner                     | Paper artefact                               |
|----------------------------|----------------------------------------------|
| ``fig1c_breakdown``        | Fig. 1c — Search-R1 latency breakdown        |
| ``fig2_zipf``              | Fig. 2 — Zipfian search interest             |
| ``fig3_bursts``            | Fig. 3 — bursty, correlated query patterns   |
| ``table2_file_freq``       | Table 2 — SWE-bench file access frequencies  |
| ``fig7_skewed``            | Fig. 7 — skewed workload sweep               |
| ``fig8_trend``             | Fig. 8 — trend-driven workload sweep         |
| ``fig9_swebench``          | Fig. 9 — SWE-bench workload sweep            |
| ``fig10_concurrency``      | Fig. 10 — throughput vs request concurrency  |
| ``fig11_breakdown``        | Fig. 11 — per-request latency breakdown      |
| ``fig12_api_calls``        | Fig. 12 — API calls and retry ratio          |
| ``table4_ratelimit``       | Table 4 — throughput w/ and w/o rate limit   |
| ``table5_cost``            | Table 5 — cost analysis                      |
| ``fig13_accuracy``         | Fig. 13 — generation quality (EM)            |
| ``table6_lcfu``            | Table 6 — LCFU vs LRU/LFU                    |
| ``table7_colocation``      | Table 7 — co-location efficiency             |
| ``recalibration_overhead`` | §6.7 — recalibration overhead                |
| ``tau_sweep``              | §4.2 ablation — threshold trade-offs         |
"""

from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks

__all__ = ["ExperimentResult", "SystemSetup", "run_system_on_tasks"]
