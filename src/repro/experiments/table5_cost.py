"""Table 5 — cost and performance across deployment configurations.

Three configurations under peak Musique load:

* **Agent_vanilla** — one GPU, every request pays the search API.
* **Asteria w/o Sharing** — caching, but the judger gets its own second GPU
  (double GPU rent).
* **Asteria** — co-located judger on the same GPU via MPS 80/20.

The paper's accounting (total costs $82.5 / $158.5 / $76.64; throughput
0.87 / 4.74 / 4.89 req/s; ~6× throughput per dollar for Asteria) combines:

* **API fees for a fixed benchmark workload** — the ~1300-task stream of
  Figure 12 at $5/1k calls (vanilla pays for every task: $6.5);
* **GPU rental for a fixed serving window** — $76 per GPU (~51 H100-hours
  at $1.49/h), doubled for the dedicated-judger configuration.

We measure each configuration's per-task API call rate and throughput on
the simulator, then apply the same accounting.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.experiments.table7_colocation import run_serving_experiment
from repro.network.cost import PRICE_H100_PER_HOUR

#: The paper's fixed workload size (Figure 12 / Table 5).
NOMINAL_TASKS = 1300
#: GPU rental hours per device implied by the paper's $76/GPU line item.
ACCOUNTING_HOURS = 51.0


def run(
    dataset_name: str = "musique",
    cache_ratio: float = 0.6,
    n_tasks: int = 400,
    concurrency: int = 8,
    rate_limit_per_minute: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    """One row per configuration with API/GPU/total cost and thpt/$."""
    result = ExperimentResult(
        name="Table 5: cost and performance across configurations",
        notes=(
            "Paper: vanilla $82.5 @ 0.87 req/s; w/o sharing $158.5 @ 4.74; "
            "Asteria $76.64 @ 4.89 -> ~6x throughput per dollar."
        ),
    )
    configurations = (
        ("vanilla", "vanilla"),
        ("asteria_wo_sharing", "dedicated"),
        ("asteria", "colocated"),
    )
    for label, serving_mode in configurations:
        outcome = run_serving_experiment(
            serving_mode=serving_mode,
            dataset_name=dataset_name,
            cache_ratio=cache_ratio,
            n_tasks=n_tasks,
            concurrency=concurrency,
            rate_limit_per_minute=rate_limit_per_minute,
            seed=seed,
        )
        calls_per_task = outcome["api_calls"] / n_tasks
        api_cost = calls_per_task * NOMINAL_TASKS * 0.005
        gpu_cost = outcome["gpus"] * ACCOUNTING_HOURS * PRICE_H100_PER_HOUR
        total = gpu_cost + api_cost
        result.add_row(
            configuration=label,
            api_cost_usd=round(api_cost, 2),
            gpu_cost_usd=round(gpu_cost, 2),
            total_cost_usd=round(total, 2),
            throughput_rps=round(outcome["throughput_rps"], 3),
            thpt_per_dollar=round(
                outcome["throughput_rps"] / total if total > 0 else 0.0, 5
            ),
            hit_rate=round(outcome["hit_rate"], 3),
        )
    return result
