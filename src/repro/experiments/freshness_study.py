"""Freshness ablation: what the TTL aging mechanism (§4.3) actually buys.

The paper's TTL exists so "even high-cost or frequently accessed items are
periodically refreshed" — i.e. so the cache stops serving *stale* knowledge.
This study makes staleness measurable: volatile facts' authoritative answers
change every ``epoch_period(staticity)`` simulated seconds, and a cache hit
whose stored value no longer matches the current answer is a stale serving.

Three aging configurations replay the same long skewed workload:

* ``no_ttl`` — entries are immortal: maximal hit rate, maximal staleness;
* ``fixed_ttl`` — the paper's user-defined TTL: one knob trades staleness
  against refetch volume for *all* content at once;
* ``staticity_ttl`` — TTL scaled by staticity/10 (our extension of the
  paper's aging discussion): ephemeral entries refresh early, stable ones
  live long — less staleness than ``no_ttl`` *and* fewer refetches than a
  fixed TTL tight enough to match it.
"""

from __future__ import annotations

from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult
from repro.factory import build_asteria_engine, build_remote
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload


def run(
    dataset_name: str = "hotpotqa",
    cache_ratio: float = 0.6,
    n_queries: int = 1500,
    think_time: float = 1.2,
    fixed_ttl: float = 600.0,
    seed: int = 0,
) -> ExperimentResult:
    """One row per aging configuration.

    ``think_time`` stretches the trace over enough simulated time
    (~n_queries * (think + service) seconds) for volatile facts to flip
    epochs repeatedly.
    """
    result = ExperimentResult(
        name="Freshness study: TTL aging vs stale servings",
        notes=(
            "Staleness = cache hits whose value no longer matches the "
            "source of truth. The paper's TTL bounds it; staticity-scaled "
            "TTL bounds it cheaper."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    capacity = dataset.capacity_for(cache_ratio)
    configurations = (
        ("no_ttl", None, False),
        ("fixed_ttl", fixed_ttl, False),
        ("staticity_ttl", fixed_ttl, True),
    )
    for label, ttl, scaled in configurations:
        remote = build_remote(dataset.universe, seed=seed)
        remote.time_resolver = dataset.universe.time_resolver()
        config = AsteriaConfig(
            capacity_items=capacity,
            default_ttl=ttl,
            staticity_ttl_scaling=scaled,
        )
        engine = build_asteria_engine(remote, config, seed=seed)
        workload = SkewedWorkload(dataset, seed=seed + 1)
        now = 0.0
        stale = 0
        hits = 0
        for query in workload.queries(n_queries):
            response = engine.handle(query, now)
            if response.served_from_cache:
                hits += 1
                current = dataset.universe.resolve_at(query, now)
                if response.result != current:
                    stale += 1
            now += response.latency + think_time
        result.add_row(
            aging=label,
            hit_rate=round(engine.metrics.hit_rate, 4),
            stale_serve_rate=round(stale / hits if hits else 0.0, 4),
            stale_servings=stale,
            api_calls=remote.calls,
            expirations=engine.metrics.expirations,
            horizon_s=round(now, 1),
        )
    return result
