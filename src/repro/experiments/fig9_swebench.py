"""Figure 9 — SWE-bench coding workload vs cache ratio.

Coding agents resolve GitHub issues against a shared repository; shared core
files make ~45 % of file fetches cacheable, which the paper reports as a
~20 % throughput gain over both baselines. The remote here is the
self-deployed RAG/file service: flat 300 ms, no per-call fee, no rate limit.
"""

from __future__ import annotations

from repro.agent.code_agent import CodeAgent
from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.workloads.swebench import SWEBenchWorkload

DEFAULT_RATIOS = (0.1, 0.2, 0.4, 0.6, 0.8)
DEFAULT_SYSTEMS = ("vanilla", "exact", "asteria")


def run(
    cache_ratios: tuple[float, ...] = DEFAULT_RATIOS,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    n_issues: int = 300,
    concurrency: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """One row per (ratio, system) over generated sqlfluff issues."""
    result = ExperimentResult(
        name="Figure 9: SWE-bench workload vs cache ratio",
        notes=(
            "Paper shape: ~45% hit rate and ~20% throughput gain for "
            "Asteria; exact-match misses same-file rephrasings."
        ),
    )
    workload = SWEBenchWorkload(seed=seed)
    n_files = len(workload.universe)
    for ratio in cache_ratios:
        capacity = max(1, int(ratio * n_files))
        for system in systems:
            issue_stream = SWEBenchWorkload(seed=seed)
            issues = issue_stream.issues(n_issues)
            outcome = run_system_on_tasks(
                SystemSetup(system=system, capacity_items=capacity, seed=seed),
                issues,
                issue_stream.universe,
                concurrency=concurrency,
                rate_limit_per_minute=None,
                remote_latency=0.3,
                cost_per_call=0.0,
                agent_factory=lambda engine: CodeAgent(engine, answer_step=False),
            )
            result.add_row(
                cache_ratio=ratio,
                **outcome.metrics_row(),
            )
    return result
