"""Miss-coalescing ablation: the flash crowd on fresh knowledge.

The thundering herd is sharpest at the moment Figure 3's event fires: a
breaking topic nobody has cached yet draws hundreds of concurrent queries,
and — without coalescing — every one of them misses and pays its own remote
fetch for an answer already in flight, burning rate-limit quota exactly when
it is scarcest. This study models that instant: ``n_clients`` queries for
``n_facts`` brand-new facts arrive within one second of a cold cache, with
and without in-flight fetch sharing.
"""

from __future__ import annotations

import numpy as np

from repro.core import AsteriaConfig
from repro.experiments.harness import ExperimentResult
from repro.factory import build_asteria_engine, build_remote
from repro.sim.kernel import Simulator
from repro.sim.random import derive_seed
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_open_loop


def run(
    dataset_name: str = "hotpotqa",
    n_clients: int = 120,
    n_facts: int = 4,
    spread: float = 1.0,
    rate_limit_per_minute: int | None = 100,
    seed: int = 0,
) -> ExperimentResult:
    """One row per coalescing setting over the same flash crowd."""
    result = ExperimentResult(
        name="Miss coalescing: flash crowd on uncached facts",
        notes=(
            "n queries for k fresh facts land within ~1 s of a cold cache; "
            "coalescing collapses the herd to ~k remote fetches."
        ),
    )
    dataset = build_dataset(dataset_name, seed=seed)
    rng = np.random.default_rng(derive_seed(seed, "flash-crowd"))
    arrivals = []
    for index in range(n_clients):
        fact = dataset.universe.by_rank(index % n_facts)
        variant = int(rng.integers(dataset.paraphraser.variants))
        at = float(rng.uniform(0.0, spread))
        arrivals.append((at, dataset.query_for(fact, variant)))
    arrivals.sort(key=lambda pair: pair[0])

    for coalesce in (False, True):
        remote = build_remote(
            dataset.universe, rate_limit_per_minute=rate_limit_per_minute,
            seed=seed,
        )
        engine = build_asteria_engine(
            remote,
            AsteriaConfig(coalesce_misses=coalesce),
            seed=seed,
        )
        sim = Simulator()
        responses = run_open_loop(sim, engine, arrivals)
        latencies = sorted(response.latency for response in responses)
        p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
        result.add_row(
            coalescing="on" if coalesce else "off",
            api_calls=remote.calls,
            coalesced=engine.metrics.coalesced_misses,
            mean_latency_s=round(sum(latencies) / len(latencies), 4),
            p99_latency_s=round(p99, 4),
            retries=remote.retries,
            api_cost_usd=round(remote.cost_meter.api_cost, 4),
        )
    return result
