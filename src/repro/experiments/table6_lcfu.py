"""Table 6 — LCFU vs LRU vs LFU on the HotpotQA workload.

The paper's trade: LFU wins the raw hit rate (0.89 vs LCFU's 0.86) but LCFU
wins throughput (+9 %) because it preferentially retains items that are
*expensive* to re-fetch. The workload's premium slice (higher fee, 4× remote
latency) is what LCFU's cost/latency terms see and recency/frequency
policies ignore; popularity is flattened slightly (Zipf 0.7) so the
contested eviction slots have near-equal frequencies and the policies'
choices — not raw popularity — decide the outcome.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult, SystemSetup, run_system_on_tasks
from repro.workloads.datasets import build_dataset
from repro.workloads.skewed import SkewedWorkload

DEFAULT_POLICIES = ("lru", "lfu", "lcfu")


def run(
    dataset_name: str = "hotpotqa",
    cache_ratio: float = 0.06,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    n_tasks: int = 800,
    concurrency: int = 8,
    rate_limit_per_minute: int | None = None,
    seed: int = 0,
    trials: int = 5,
) -> ExperimentResult:
    """One row per eviction policy, averaged over ``trials`` workload seeds.

    Policy differences here are a few percent — the paper's own gap is 9 % —
    so single-trace noise would dominate; every policy sees the same
    ``trials`` traces and the means are reported.
    """
    result = ExperimentResult(
        name="Table 6: LCFU vs LRU/LFU eviction",
        notes=(
            "Paper: hit rates 0.88/0.89/0.86 (LRU/LFU/LCFU) but LCFU wins "
            "throughput by up to 9% by retaining expensive items. The "
            "ratio is set below the working set so eviction actually runs."
        ),
    )
    # Strengthen the premium slice so retrieval-cost heterogeneity — the
    # signal LCFU keys on and LRU/LFU ignore — is first-order, as it is for
    # the paper's mixed fast/slow data services.
    dataset = build_dataset(
        dataset_name,
        seed=seed,
        premium_fraction=0.3,
        premium_latency_scale=4.0,
        premium_cost=0.025,
        zipf_s=0.7,
    )
    capacity = dataset.capacity_for(cache_ratio)
    for policy in policies:
        hits, throughputs, latencies, costs, evictions = [], [], [], [], []
        for trial in range(trials):
            workload = SkewedWorkload(dataset, seed=seed + 1 + trial)
            tasks = workload.single_hop_tasks(n_tasks)
            outcome = run_system_on_tasks(
                SystemSetup(
                    system="asteria",
                    capacity_items=capacity,
                    seed=seed,
                    policy=policy,
                ),
                tasks,
                dataset.universe,
                concurrency=concurrency,
                rate_limit_per_minute=rate_limit_per_minute,
            )
            hits.append(outcome.engine.metrics.hit_rate)
            throughputs.append(outcome.throughput)
            latencies.append(outcome.stats.mean_latency)
            costs.append(outcome.remote.cost_meter.api_cost)
            evictions.append(outcome.engine.metrics.evictions)
        count = len(hits)
        result.add_row(
            policy=policy,
            cache_hit=round(sum(hits) / count, 4),
            throughput_rps=round(sum(throughputs) / count, 4),
            mean_latency_s=round(sum(latencies) / count, 4),
            api_cost_usd=round(sum(costs) / count, 4),
            evictions=round(sum(evictions) / count),
        )
    return result
