"""Figure 1c — Search-R1 latency breakdown on the vanilla (uncached) agent.

The paper measures that external data retrieval makes up ~40-50 % of total
execution time for Search-R1 on an H100, leaving the GPU ~50 % idle. We
replay multi-hop search tasks through Agent_vanilla and break each task's
wall time into inference vs retrieval.
"""

from __future__ import annotations

from repro.agent.search_agent import SearchAgent
from repro.experiments.harness import ExperimentResult
from repro.factory import build_remote, build_vanilla_engine
from repro.workloads.datasets import build_dataset
from repro.workloads.replay import run_task_closed_loop
from repro.workloads.skewed import SkewedWorkload


def run(
    dataset_name: str = "hotpotqa",
    n_tasks: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    """Latency breakdown for the uncached search agent."""
    dataset = build_dataset(dataset_name, seed=seed)
    workload = SkewedWorkload(dataset, seed=seed + 1)
    remote = build_remote(dataset.universe, seed=seed)
    engine = build_vanilla_engine(remote)
    agent = SearchAgent(engine)
    stats = run_task_closed_loop(agent, workload.tasks(n_tasks))

    # The paper's breakdown covers the think-act-observe *cycle*: one LLM
    # generation per external retrieval. Exclude each task's final
    # answer-only generation (hops inference steps of hops+1 are in-loop).
    inference = sum(
        r.inference_latency * r.steps / (r.steps + 1) for r in stats.results
    )
    retrieval = sum(r.retrieval_latency for r in stats.results)
    total = inference + retrieval
    result = ExperimentResult(
        name="Figure 1c: Search-R1 latency breakdown (vanilla agent)",
        notes=(
            "Paper: retrieval is ~40-50% of execution time; GPU utilisation "
            "~50%."
        ),
    )
    result.add_row(
        component="llm_inference",
        seconds=round(inference, 2),
        fraction=round(inference / total, 4),
    )
    result.add_row(
        component="external_retrieval",
        seconds=round(retrieval, 2),
        fraction=round(retrieval / total, 4),
    )
    result.add_row(
        component="gpu_utilisation",
        seconds=round(inference, 2),
        fraction=round(inference / total, 4),
    )
    return result
