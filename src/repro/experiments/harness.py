"""Shared experiment infrastructure.

``ExperimentResult`` is a printable table of rows (dicts); every runner
returns one. ``run_system_on_tasks`` executes one (system, workload)
configuration end-to-end on the discrete-event simulator and extracts the
paper's metrics. ``SystemSetup`` names the three evaluated configurations
and builds them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.agent.base import ScriptedAgent
from repro.agent.model import AgentStats, AgentTask
from repro.agent.search_agent import SearchAgent
from repro.core import AsteriaConfig
from repro.core.engine import KnowledgeEngine
from repro.factory import (
    build_asteria_engine,
    build_exact_engine,
    build_remote,
    build_vanilla_engine,
)
from repro.network.remote import RemoteDataService
from repro.sim.kernel import Simulator
from repro.workloads.facts import FactUniverse
from repro.workloads.replay import run_task_concurrent

#: The paper's three primary systems plus the accuracy-only ANN ablation.
SYSTEMS = ("vanilla", "exact", "asteria", "ann_only")


@dataclass
class ExperimentResult:
    """A printable experiment outcome: named rows of metric columns."""

    name: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values) -> None:
        """Append one row of named metric columns."""
        self.rows.append(values)

    def column(self, key: str) -> list:
        """All values of one column, in row order."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria) -> list[dict]:
        """Rows matching every (column == value) criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def format_table(self) -> str:
        """GitHub-style markdown table of all rows."""
        if not self.rows:
            return f"## {self.name}\n(no rows)\n"
        columns: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)
        widths = {
            column: max(len(column), *(len(fmt(row.get(column, ""))) for row in self.rows))
            for column in columns
        }
        header = " | ".join(column.ljust(widths[column]) for column in columns)
        rule = "-|-".join("-" * widths[column] for column in columns)
        body = "\n".join(
            " | ".join(fmt(row.get(column, "")).ljust(widths[column]) for column in columns)
            for row in self.rows
        )
        lines = [f"## {self.name}", header, rule, body]
        if self.notes:
            lines.append(f"\n{self.notes}")
        return "\n".join(lines) + "\n"

    def print_table(self) -> None:
        """Print the markdown rendering of the table."""
        print(self.format_table())


@dataclass
class SystemSetup:
    """How to build one evaluated system for a given workload.

    Parameters mirror §6.1: a shared remote-service shape per workload and a
    per-system engine configuration.
    """

    system: str
    capacity_items: int | None
    seed: int = 0
    tau_sim: float | None = None
    tau_lsm: float | None = None
    policy: str = "lcfu"
    prefetch: bool = False
    recalibration: bool = False
    recalibration_interval: float = 60.0
    default_ttl: float | None = 3600.0

    def build_engine(self, remote: RemoteDataService) -> KnowledgeEngine:
        """Instantiate the engine this setup describes."""
        if self.system == "vanilla":
            return build_vanilla_engine(remote)
        if self.system == "exact":
            return build_exact_engine(
                remote, capacity_items=self.capacity_items, default_ttl=self.default_ttl
            )
        if self.system in ("asteria", "ann_only"):
            config = AsteriaConfig(
                capacity_items=self.capacity_items,
                default_ttl=self.default_ttl,
                ann_only=self.system == "ann_only",
                prefetch_enabled=self.prefetch,
                recalibration_enabled=self.recalibration,
                recalibration_interval=self.recalibration_interval,
            )
            if self.tau_sim is not None:
                config.tau_sim = self.tau_sim
            if self.tau_lsm is not None:
                config.tau_lsm = self.tau_lsm
            return build_asteria_engine(
                remote, config, seed=self.seed, policy=self.policy, name=self.system
            )
        raise ValueError(f"unknown system {self.system!r}; known: {SYSTEMS}")


@dataclass
class RunOutcome:
    """Everything measured from one simulated run."""

    system: str
    engine: KnowledgeEngine
    remote: RemoteDataService
    stats: AgentStats
    horizon: float

    @property
    def throughput(self) -> float:
        return self.stats.throughput(self.horizon) if self.horizon > 0 else 0.0

    def metrics_row(self, **extra) -> dict:
        """The standard metric columns the paper reports."""
        return {
            "system": self.system,
            "throughput_rps": round(self.throughput, 4),
            "hit_rate": round(self.engine.metrics.hit_rate, 4),
            "mean_latency_s": round(self.stats.mean_latency, 4),
            "p99_latency_s": round(self.stats.percentile_latency(99), 4),
            "api_calls": self.remote.calls,
            "retry_ratio": round(self.remote.retry_ratio, 4),
            "api_cost_usd": round(self.remote.cost_meter.api_cost, 4),
            **extra,
        }


def run_system_on_tasks(
    setup: SystemSetup,
    tasks: Sequence[AgentTask],
    universe: FactUniverse,
    concurrency: int = 8,
    rate_limit_per_minute: int | None = 100,
    remote_latency: "float | dict | None" = None,
    cost_per_call: float = 0.005,
    agent_factory: Callable[[KnowledgeEngine], ScriptedAgent] | None = None,
) -> RunOutcome:
    """Run one system over ``tasks`` on a fresh simulator.

    ``concurrency`` closed-loop clients share the task list (the paper's
    load model); the remote service resolves against ``universe`` and is
    throttled at ``rate_limit_per_minute`` unless None.
    """
    sim = Simulator()
    remote = build_remote(
        universe,
        latency=remote_latency,
        rate_limit_per_minute=rate_limit_per_minute,
        cost_per_call=cost_per_call,
        seed=setup.seed,
    )
    engine = setup.build_engine(remote)
    if agent_factory is None:
        # The paper accounts one LLM generation per retrieval (Figure 11:
        # a request is 0.6 s inference + retrieval), so the final answer is
        # folded into the last loop generation rather than charged extra.
        agent = SearchAgent(engine, answer_step=False)
    else:
        agent = agent_factory(engine)
    stats = run_task_concurrent(sim, agent, list(tasks), concurrency=concurrency)
    return RunOutcome(
        system=setup.system,
        engine=engine,
        remote=remote,
        stats=stats,
        horizon=sim.now,
    )
