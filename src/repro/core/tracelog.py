"""Structured request tracing — one record per resolved tool call.

Production caches are debugged from their request logs. :class:`TraceLog`
captures each request's decision path (status, ANN candidates, judged count,
latency split, cost) as plain dicts, exports/imports JSONL, and computes the
summary a postmortem needs. Attach one to any engine via
``engine.trace = TraceLog()`` — engines call :meth:`record` when a trace is
attached, with zero overhead otherwise.

Every request, degraded or not, lands in the log with an ``outcome`` field so
postmortem accounting is conservative (nothing disappears):

* ``hit`` / ``miss`` / ``bypass`` — the normal lookup statuses;
* ``stale_hit`` / ``failed`` — fault-degraded responses (PR 4);
* ``overloaded`` / ``deadline_exceeded`` — serving-layer rejections (PR 3),
  recorded via :meth:`record_rejected` since they never produce a response.

Hedged fetches carry ``hedged: true`` so tail-latency postmortems can see
which requests were saved by the backup flight.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

#: Outcomes a record may carry (normal statuses + degraded + rejected).
OUTCOMES = (
    "hit",
    "miss",
    "bypass",
    "stale_hit",
    "failed",
    "overloaded",
    "deadline_exceeded",
)

#: Outcomes that never reach the cache lookup (no latency split available).
REJECTED_OUTCOMES = ("overloaded", "deadline_exceeded")


class TraceLog:
    """Bounded in-memory request log with JSONL import/export.

    Parameters
    ----------
    max_records:
        Oldest records are dropped beyond this bound (default 100 000).
        Retention uses a ``deque(maxlen=...)`` so the drop is O(1), not the
        O(n) ``list.pop(0)`` it once was.
    """

    def __init__(self, max_records: int = 100_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self._records: deque[dict] = deque(maxlen=max_records)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return True

    def _append(self, entry: dict) -> None:
        if len(self._records) == self.max_records:
            self.dropped += 1
        self._records.append(entry)

    def record(self, now: float, query, response) -> None:
        """Append one resolved request (engine-facing API).

        ``outcome`` is the degraded label when the response is degraded
        (``stale_hit`` / ``failed``), else the lookup status — so summing
        ``by_outcome`` covers every request the engine resolved.
        """
        lookup = response.lookup
        degraded = getattr(response, "degraded", None)
        entry = {
            "now": round(now, 6),
            "tool": query.tool,
            "query": query.text,
            "status": lookup.status,
            "outcome": degraded if degraded is not None else lookup.status,
            "latency": round(response.latency, 6),
            "cache_check": round(lookup.latency, 6),
            "candidates": lookup.candidates,
            "judged": lookup.judged,
            "truth_match": lookup.truth_match,
            "cost": response.fetch.cost if response.fetch else 0.0,
            "retries": response.fetch.retries if response.fetch else 0,
        }
        if response.fetch is not None and getattr(response.fetch, "hedged", False):
            entry["hedged"] = True
        self._append(entry)

    def record_rejected(
        self, now: float, query, outcome: str, latency: float = 0.0
    ) -> None:
        """Append one request the serving layer rejected before lookup.

        ``overloaded`` requests never entered the engine; ``deadline_exceeded``
        ones died mid-flight. Neither has a lookup record, but both must
        appear here or the log under-counts offered load.
        """
        if outcome not in REJECTED_OUTCOMES:
            raise ValueError(
                f"outcome must be one of {REJECTED_OUTCOMES}, got {outcome!r}"
            )
        self._append(
            {
                "now": round(now, 6),
                "tool": query.tool,
                "query": query.text,
                "status": outcome,
                "outcome": outcome,
                "latency": round(latency, 6),
                "cache_check": 0.0,
                "candidates": 0,
                "judged": 0,
                "truth_match": None,
                "cost": 0.0,
                "retries": 0,
            }
        )

    def records(self) -> list[dict]:
        """A copy of the stored records, oldest first."""
        return list(self._records)

    # -- persistence -------------------------------------------------------
    def save_jsonl(self, path: "str | Path") -> None:
        """Write one JSON object per line."""
        lines = [json.dumps(record, allow_nan=False) for record in self._records]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load_jsonl(cls, path: "str | Path", max_records: int = 100_000) -> "TraceLog":
        """Read a JSONL trace back into a TraceLog."""
        log = cls(max_records=max_records)
        for line in Path(path).read_text().splitlines():
            if line.strip():
                log._append(json.loads(line))
        return log

    # -- analysis ----------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view: counts, hit rate, latency mean, spend.

        ``by_outcome`` partitions *every* record (normal + degraded +
        rejected); ``by_status`` keeps the raw lookup statuses for
        compatibility. Hit rate is computed over clean hit/miss lookups only,
        matching :class:`~repro.core.metrics.EngineMetrics.hit_rate`.
        """
        total = len(self._records)
        if total == 0:
            return {"requests": 0}
        by_status: dict[str, int] = {}
        by_outcome: dict[str, int] = {}
        latency_sum = 0.0
        cost_sum = 0.0
        wrong = 0
        hedged = 0
        for record in self._records:
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
            outcome = record.get("outcome", record["status"])
            by_outcome[outcome] = by_outcome.get(outcome, 0) + 1
            latency_sum += record["latency"]
            cost_sum += record["cost"]
            if record["truth_match"] is False:
                wrong += 1
            if record.get("hedged"):
                hedged += 1
        # Degraded/rejected outcomes keep their raw status out of hit/miss
        # accounting: a stale_hit record's status is its lookup status
        # ("miss"), so count clean lookups from outcomes, not statuses.
        hits = by_outcome.get("hit", 0)
        misses = by_outcome.get("miss", 0)
        return {
            "requests": total,
            "by_status": by_status,
            "by_outcome": by_outcome,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "mean_latency": latency_sum / total,
            "total_cost": cost_sum,
            "wrong_servings": wrong,
            "hedged": hedged,
        }

    def slowest(self, n: int = 10) -> list[dict]:
        """The ``n`` slowest requests (a tail-latency postmortem's start)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return sorted(self._records, key=lambda r: -r["latency"])[:n]

    def __repr__(self) -> str:
        return f"TraceLog(records={len(self)}, dropped={self.dropped})"
