"""Structured request tracing — one record per resolved tool call.

Production caches are debugged from their request logs. :class:`TraceLog`
captures each request's decision path (status, ANN candidates, judged count,
latency split, cost) as plain dicts, exports/imports JSONL, and computes the
summary a postmortem needs. Attach one to any engine via
``engine.trace = TraceLog()`` — engines call :meth:`record` when a trace is
attached, with zero overhead otherwise.
"""

from __future__ import annotations

import json
from pathlib import Path


class TraceLog:
    """Bounded in-memory request log with JSONL import/export.

    Parameters
    ----------
    max_records:
        Oldest records are dropped beyond this bound (default 100 000).
    """

    def __init__(self, max_records: int = 100_000) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self._records: list[dict] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return True

    def record(self, now: float, query, response) -> None:
        """Append one resolved request (engine-facing API)."""
        lookup = response.lookup
        entry = {
            "now": round(now, 6),
            "tool": query.tool,
            "query": query.text,
            "status": lookup.status,
            "latency": round(response.latency, 6),
            "cache_check": round(lookup.latency, 6),
            "candidates": lookup.candidates,
            "judged": lookup.judged,
            "truth_match": lookup.truth_match,
            "cost": response.fetch.cost if response.fetch else 0.0,
            "retries": response.fetch.retries if response.fetch else 0,
        }
        self._records.append(entry)
        if len(self._records) > self.max_records:
            self._records.pop(0)
            self.dropped += 1

    def records(self) -> list[dict]:
        """A copy of the stored records, oldest first."""
        return list(self._records)

    # -- persistence -------------------------------------------------------
    def save_jsonl(self, path: "str | Path") -> None:
        """Write one JSON object per line."""
        lines = [json.dumps(record, allow_nan=False) for record in self._records]
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load_jsonl(cls, path: "str | Path", max_records: int = 100_000) -> "TraceLog":
        """Read a JSONL trace back into a TraceLog."""
        log = cls(max_records=max_records)
        for line in Path(path).read_text().splitlines():
            if line.strip():
                log._records.append(json.loads(line))
        return log

    # -- analysis ----------------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate view: counts, hit rate, latency mean, spend."""
        total = len(self._records)
        if total == 0:
            return {"requests": 0}
        by_status: dict[str, int] = {}
        latency_sum = 0.0
        cost_sum = 0.0
        wrong = 0
        for record in self._records:
            by_status[record["status"]] = by_status.get(record["status"], 0) + 1
            latency_sum += record["latency"]
            cost_sum += record["cost"]
            if record["truth_match"] is False:
                wrong += 1
        hits = by_status.get("hit", 0)
        misses = by_status.get("miss", 0)
        return {
            "requests": total,
            "by_status": by_status,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "mean_latency": latency_sum / total,
            "total_cost": cost_sum,
            "wrong_servings": wrong,
        }

    def slowest(self, n: int = 10) -> list[dict]:
        """The ``n`` slowest requests (a tail-latency postmortem's start)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        return sorted(self._records, key=lambda r: -r["latency"])[:n]

    def __repr__(self) -> str:
        return f"TraceLog(records={len(self)}, dropped={self.dropped})"
