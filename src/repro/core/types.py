"""Leaf datatypes shared across the cache, network, and agent layers.

These are deliberately dependency-free so that every subsystem can import
them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

#: The tool kinds the data client understands.
TOOL_SEARCH = "search"
TOOL_RAG = "rag"
TOOL_FILE = "file"


@dataclass(frozen=True, slots=True)
class Query:
    """One tool-call query emitted by an agent.

    ``fact_id`` is the workload's hidden ground-truth identity — what the
    query is *really* asking. The cache's matching path never reads it; it
    exists so the simulated judger, accuracy scoring, and recalibration's
    ground-truth evaluator can stand in for components the paper runs on
    live models and live APIs.

    ``staticity`` (1-10, optional) annotates how time-invariant the true
    answer is; the staticity *scorer* adds noise on top, so SE metadata is
    imperfect in the same way the paper's is.
    """

    text: str
    tool: str = TOOL_SEARCH
    fact_id: str | None = None
    staticity: int | None = None
    cost: float | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("query text must be non-empty")
        if self.staticity is not None and not 1 <= self.staticity <= 10:
            raise ValueError(f"staticity must be in [1, 10], got {self.staticity}")
        # Freeze metadata so Query stays hashable-by-identity and safe to share.
        object.__setattr__(self, "metadata", MappingProxyType(dict(self.metadata)))

    def __getstate__(self) -> dict:
        """Materialize the mapping proxy (proxies cannot pickle)."""
        return {
            "text": self.text,
            "tool": self.tool,
            "fact_id": self.fact_id,
            "staticity": self.staticity,
            "cost": self.cost,
            "metadata": dict(self.metadata),
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "metadata", MappingProxyType(dict(state["metadata"])))


@dataclass(frozen=True, slots=True)
class FetchResult:
    """Outcome of one remote fetch, including everything the SE records.

    ``latency`` is the end-to-end simulated seconds including rate-limit
    queueing and retries; ``service_latency`` is the raw service time of the
    final successful attempt.
    """

    result: str
    latency: float
    service_latency: float
    cost: float
    retries: int = 0
    rate_limited: bool = False
    size_tokens: int = 0
    #: True when this result was produced (or its latency shaped) by a
    #: hedged second flight winning the race — postmortems read it from the
    #: trace log to see which requests the backup fetch saved.
    hedged: bool = False

    def __post_init__(self) -> None:
        if self.latency < 0 or self.service_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")


@dataclass(frozen=True, slots=True)
class CacheLookup:
    """Outcome of one cache lookup, as reported by the engine.

    ``status`` is one of ``hit``, ``miss``, ``bypass`` (uncacheable tool).
    ``candidates`` counts ANN candidates above the similarity threshold;
    ``judged`` counts how many the judger actually scored.
    """

    status: str
    result: str | None
    latency: float
    ann_latency: float = 0.0
    judge_latency: float = 0.0
    candidates: int = 0
    judged: int = 0
    element_id: int | None = None
    truth_match: bool | None = None

    def __post_init__(self) -> None:
        if self.status not in ("hit", "miss", "bypass"):
            raise ValueError(f"unknown lookup status: {self.status!r}")

    @property
    def is_hit(self) -> bool:
        return self.status == "hit"


def estimate_tokens(text: str) -> int:
    """Crude token count (≈ 4 characters/token, minimum 1) used for SE size."""
    return max(1, len(text) // 4)
