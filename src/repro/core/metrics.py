"""Measurement: latency reservoirs and engine-level counters.

Every engine owns an :class:`EngineMetrics`; experiments read it to print the
paper's metrics — throughput (req/s), latency percentiles, cache hit rate,
API calls/retries, and operational cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class LatencyStats:
    """An append-only collection of latency samples with percentile queries."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def add(self, value: float) -> None:
        """Record one sample (seconds)."""
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self._samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return float(sum(self._samples))

    @property
    def mean(self) -> float:
        """Arithmetic mean; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return float(np.mean(self._samples))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100); 0.0 when empty."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, p))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def samples(self) -> list[float]:
        """A copy of all recorded samples."""
        return list(self._samples)

    def merge(self, other: "LatencyStats") -> None:
        """Fold another reservoir's samples into this one (order-insensitive
        for every statistic exposed here)."""
        self._samples.extend(other._samples)

    def __repr__(self) -> str:
        return (
            f"LatencyStats(n={self.count}, mean={self.mean:.4f}, "
            f"p99={self.p99:.4f})"
        )


@dataclass
class EngineMetrics:
    """Counters and latency reservoirs for one engine instance.

    Correctness counters compare the *served* knowledge against the query's
    hidden ground truth: ``served_correct`` counts responses whose knowledge
    matched, ``served_incorrect`` counts semantic-cache mistakes (these are
    what degrade the Figure 13 EM score).
    """

    requests: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    served_correct: int = 0
    served_incorrect: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    coalesced_misses: int = 0
    evictions: int = 0
    expirations: int = 0
    recalibrations: int = 0
    #: Requests rejected by serving-layer backpressure (never reached the
    #: cache, so they are *not* part of ``requests``).
    overloaded: int = 0
    #: Requests whose deadline expired mid-miss (response degraded; the
    #: background fetch may still have admitted — also not in ``requests``).
    deadline_exceeded: int = 0
    #: Fetches that launched a hedged second request past the latency
    #: percentile, and how many of those hedges won the race.
    hedged_fetches: int = 0
    hedge_wins: int = 0
    #: -- degraded outcomes (fault tolerance) --------------------------------
    #: Like ``overloaded``/``deadline_exceeded``, degraded requests never
    #: reach ``record_lookup``: they bump their own counters below and the
    #: ``degraded_latency`` reservoir only, so hit-rate, accuracy, and the
    #: latency percentiles stay comparable across runs with and without
    #: faults.
    #: Requests answered from the last-known-good stale store after the
    #: remote failed or the breaker refused the fetch.
    stale_hits: int = 0
    #: Miss fetches refused up-front because the circuit breaker was open.
    breaker_open_rejects: int = 0
    #: Miss fetches refused because the key recently failed (negative cache).
    negative_cache_hits: int = 0
    #: Stale-while-revalidate refresh flights scheduled in the background.
    background_refreshes: int = 0
    #: Remote fetch flights (including retries-exhausted) that failed.
    fetch_failures: int = 0
    #: Degraded requests with no stale fallback — served an explicit failure.
    failed_requests: int = 0
    total_latency: LatencyStats = field(default_factory=LatencyStats)
    hit_latency: LatencyStats = field(default_factory=LatencyStats)
    miss_latency: LatencyStats = field(default_factory=LatencyStats)
    cache_check_latency: LatencyStats = field(default_factory=LatencyStats)
    remote_latency: LatencyStats = field(default_factory=LatencyStats)
    #: Latency of degraded responses (stale hits and explicit failures);
    #: kept out of ``total_latency`` so fault runs stay stats-comparable.
    degraded_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def hit_rate(self) -> float:
        """Validated hits / cacheable requests (bypasses excluded)."""
        cacheable = self.hits + self.misses
        if cacheable == 0:
            return 0.0
        return self.hits / cacheable

    @property
    def accuracy(self) -> float:
        """Fraction of knowledge-bearing responses that were correct."""
        served = self.served_correct + self.served_incorrect
        if served == 0:
            return 1.0
        return self.served_correct / served

    def record_lookup(self, status: str) -> None:
        """Bump the counter matching a lookup ``status``."""
        self.requests += 1
        if status == "hit":
            self.hits += 1
        elif status == "miss":
            self.misses += 1
        elif status == "bypass":
            self.bypasses += 1
        else:
            raise ValueError(f"unknown lookup status {status!r}")

    def reset(self) -> None:
        """Zero every counter and reservoir (e.g. after a warm-up phase)."""
        fresh = EngineMetrics()
        self.__dict__.update(fresh.__dict__)

    def merge(self, other: "EngineMetrics") -> None:
        """Fold another instance's counters and reservoirs into this one.

        Used by concurrent serving to combine per-worker accumulators, and by
        fleet experiments to total per-node engines. Gauge-style counters
        synced from cache stats (``evictions``, ``expirations``) take the
        max rather than the sum, since per-worker views of one shared cache
        would otherwise double-count.
        """
        for name in (
            "requests",
            "hits",
            "misses",
            "bypasses",
            "served_correct",
            "served_incorrect",
            "prefetches_issued",
            "prefetch_hits",
            "coalesced_misses",
            "recalibrations",
            "overloaded",
            "deadline_exceeded",
            "hedged_fetches",
            "hedge_wins",
            "stale_hits",
            "breaker_open_rejects",
            "negative_cache_hits",
            "background_refreshes",
            "fetch_failures",
            "failed_requests",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.evictions = max(self.evictions, other.evictions)
        self.expirations = max(self.expirations, other.expirations)
        for name in (
            "total_latency",
            "hit_latency",
            "miss_latency",
            "cache_check_latency",
            "remote_latency",
            "degraded_latency",
        ):
            getattr(self, name).merge(getattr(other, name))

    def summary(self) -> dict:
        """A plain-dict snapshot for printing and serialisation."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "accuracy": round(self.accuracy, 4),
            "mean_latency": round(self.total_latency.mean, 4),
            "p99_latency": round(self.total_latency.p99, 4),
            "prefetches_issued": self.prefetches_issued,
            "prefetch_hits": self.prefetch_hits,
            "coalesced_misses": self.coalesced_misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "recalibrations": self.recalibrations,
            "overloaded": self.overloaded,
            "deadline_exceeded": self.deadline_exceeded,
            "hedged_fetches": self.hedged_fetches,
            "hedge_wins": self.hedge_wins,
            "stale_hits": self.stale_hits,
            "breaker_open_rejects": self.breaker_open_rejects,
            "negative_cache_hits": self.negative_cache_hits,
            "background_refreshes": self.background_refreshes,
            "fetch_failures": self.fetch_failures,
            "failed_requests": self.failed_requests,
        }
