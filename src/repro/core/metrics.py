"""Measurement: latency reservoirs and engine-level counters.

Every engine owns an :class:`EngineMetrics`; experiments read it to print the
paper's metrics — throughput (req/s), latency percentiles, cache hit rate,
API calls/retries, and operational cost.

:class:`LatencyStats` is bounded-memory: it keeps ``count``/``total``/``max``
exact for any number of samples but retains at most ``max_samples`` values
(reservoir sampling, Algorithm R with a seeded RNG). Percentiles are exact
until the cap is reached and an unbiased estimate beyond it, so a soak run of
10^8 requests holds the same memory as one of 10^4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

#: Default reservoir capacity. Large enough that every existing experiment
#: and test (well under 16k samples per reservoir) sees exact percentiles;
#: small enough that six reservoirs per engine stay ~100 KB in a soak run.
DEFAULT_RESERVOIR = 16_384


class LatencyStats:
    """Latency samples with percentile queries, in bounded memory.

    ``count``/``total``/``mean``/``max`` are exact regardless of volume.
    Percentiles are computed over a uniform reservoir of up to
    ``max_samples`` values: exact while ``count <= max_samples``, an
    unbiased estimate after (Vitter's Algorithm R with a seeded
    :class:`random.Random`, so runs stay reproducible).
    """

    __slots__ = ("max_samples", "_samples", "_count", "_total", "_max", "_rng")

    def __init__(self, max_samples: int = DEFAULT_RESERVOIR, seed: int = 0) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Record one sample (seconds)."""
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return float(self._total)

    @property
    def mean(self) -> float:
        """Arithmetic mean (exact); 0.0 when empty."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100); 0.0 when empty.

        Exact while no sample has been evicted from the reservoir; an
        unbiased estimate on longer runs.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, p))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def max(self) -> float:
        return self._max

    def samples(self) -> list[float]:
        """A copy of the retained (reservoir) samples."""
        return list(self._samples)

    def merge(self, other: "LatencyStats") -> None:
        """Fold another reservoir into this one.

        ``count``/``total``/``max`` stay exact sums. The merged reservoir
        draws from both sample pools proportionally to the populations they
        represent, then clips to this instance's cap — still a uniform
        sample of the combined stream.
        """
        if other._count == 0:
            return
        pool = self._samples + other._samples
        if len(pool) > self.max_samples:
            # Weight each retained sample by the population it stands for,
            # approximated by proportional allocation between the two pools.
            own_share = (
                self._count / (self._count + other._count) if self._count else 0.0
            )
            take_own = min(len(self._samples), round(own_share * self.max_samples))
            take_other = self.max_samples - take_own
            if take_other > len(other._samples):
                take_other = len(other._samples)
                take_own = self.max_samples - take_other
            pool = self._rng.sample(self._samples, take_own) + self._rng.sample(
                other._samples, take_other
            )
        self._samples = pool
        self._count += other._count
        self._total += other._total
        if other._max > self._max:
            self._max = other._max

    def __getstate__(self) -> dict:
        """Explicit state so reservoirs cross process/pickle boundaries.

        The RNG state rides along, so a deserialized reservoir continues the
        exact eviction sequence the original would have produced.
        """
        return {
            "max_samples": self.max_samples,
            "samples": list(self._samples),
            "count": self._count,
            "total": self._total,
            "max": self._max,
            "rng_state": self._rng.getstate(),
        }

    def __setstate__(self, state: dict) -> None:
        self.max_samples = state["max_samples"]
        self._samples = list(state["samples"])
        self._count = state["count"]
        self._total = state["total"]
        self._max = state["max"]
        self._rng = random.Random()
        self._rng.setstate(state["rng_state"])

    def __repr__(self) -> str:
        return (
            f"LatencyStats(n={self.count}, mean={self.mean:.4f}, "
            f"p99={self.p99:.4f})"
        )


@dataclass
class EngineMetrics:
    """Counters and latency reservoirs for one engine instance.

    Correctness counters compare the *served* knowledge against the query's
    hidden ground truth: ``served_correct`` counts responses whose knowledge
    matched, ``served_incorrect`` counts semantic-cache mistakes (these are
    what degrade the Figure 13 EM score).
    """

    requests: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    served_correct: int = 0
    served_incorrect: int = 0
    prefetches_issued: int = 0
    prefetch_hits: int = 0
    coalesced_misses: int = 0
    evictions: int = 0
    expirations: int = 0
    recalibrations: int = 0
    #: Requests rejected by serving-layer backpressure (never reached the
    #: cache, so they are *not* part of ``requests``).
    overloaded: int = 0
    #: Requests whose deadline expired mid-miss (response degraded; the
    #: background fetch may still have admitted — also not in ``requests``).
    deadline_exceeded: int = 0
    #: Fetches that launched a hedged second request past the latency
    #: percentile, and how many of those hedges won the race.
    hedged_fetches: int = 0
    hedge_wins: int = 0
    #: -- degraded outcomes (fault tolerance) --------------------------------
    #: Like ``overloaded``/``deadline_exceeded``, degraded requests never
    #: reach ``record_lookup``: they bump their own counters below and the
    #: ``degraded_latency`` reservoir only, so hit-rate, accuracy, and the
    #: latency percentiles stay comparable across runs with and without
    #: faults.
    #: Requests answered from the last-known-good stale store after the
    #: remote failed or the breaker refused the fetch.
    stale_hits: int = 0
    #: Miss fetches refused up-front because the circuit breaker was open.
    breaker_open_rejects: int = 0
    #: Miss fetches refused because the key recently failed (negative cache).
    negative_cache_hits: int = 0
    #: Stale-while-revalidate refresh flights scheduled in the background.
    background_refreshes: int = 0
    #: Remote fetch flights (including retries-exhausted) that failed.
    fetch_failures: int = 0
    #: Degraded requests with no stale fallback — served an explicit failure.
    failed_requests: int = 0
    #: -- proc-tier fault domains ---------------------------------------------
    #: Shard worker processes respawned by the supervisor after a death.
    worker_restarts: int = 0
    #: Requests routed to a dead/recovering shard that bypassed the cache
    #: with a direct remote fetch (no stale fallback was available).
    shard_down_fetches: int = 0
    total_latency: LatencyStats = field(default_factory=LatencyStats)
    hit_latency: LatencyStats = field(default_factory=LatencyStats)
    miss_latency: LatencyStats = field(default_factory=LatencyStats)
    cache_check_latency: LatencyStats = field(default_factory=LatencyStats)
    remote_latency: LatencyStats = field(default_factory=LatencyStats)
    #: Latency of degraded responses (stale hits and explicit failures);
    #: kept out of ``total_latency`` so fault runs stay stats-comparable.
    degraded_latency: LatencyStats = field(default_factory=LatencyStats)

    @property
    def hit_rate(self) -> float:
        """Validated hits / cacheable requests (bypasses excluded)."""
        cacheable = self.hits + self.misses
        if cacheable == 0:
            return 0.0
        return self.hits / cacheable

    @property
    def accuracy(self) -> float:
        """Fraction of knowledge-bearing responses that were correct."""
        served = self.served_correct + self.served_incorrect
        if served == 0:
            return 1.0
        return self.served_correct / served

    def record_lookup(self, status: str) -> None:
        """Bump the counter matching a lookup ``status``."""
        self.requests += 1
        if status == "hit":
            self.hits += 1
        elif status == "miss":
            self.misses += 1
        elif status == "bypass":
            self.bypasses += 1
        else:
            raise ValueError(f"unknown lookup status {status!r}")

    def reset(self) -> None:
        """Zero every counter and reservoir (e.g. after a warm-up phase)."""
        fresh = EngineMetrics()
        for name, value in vars(fresh).items():
            setattr(self, name, value)

    def merge(self, other: "EngineMetrics") -> None:
        """Fold another instance's counters and reservoirs into this one.

        Used by concurrent serving to combine per-worker accumulators, and by
        fleet experiments to total per-node engines. Gauge-style counters
        synced from cache stats (``evictions``, ``expirations``) take the
        max rather than the sum, since per-worker views of one shared cache
        would otherwise double-count.
        """
        for name in (
            "requests",
            "hits",
            "misses",
            "bypasses",
            "served_correct",
            "served_incorrect",
            "prefetches_issued",
            "prefetch_hits",
            "coalesced_misses",
            "recalibrations",
            "overloaded",
            "deadline_exceeded",
            "hedged_fetches",
            "hedge_wins",
            "stale_hits",
            "breaker_open_rejects",
            "negative_cache_hits",
            "background_refreshes",
            "fetch_failures",
            "failed_requests",
            "worker_restarts",
            "shard_down_fetches",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.evictions = max(self.evictions, other.evictions)
        self.expirations = max(self.expirations, other.expirations)
        for name in (
            "total_latency",
            "hit_latency",
            "miss_latency",
            "cache_check_latency",
            "remote_latency",
            "degraded_latency",
        ):
            getattr(self, name).merge(getattr(other, name))

    def __getstate__(self) -> dict:
        """Explicit state (counters by name + reservoirs) for pickling.

        ``EngineMetrics`` would pickle fine implicitly, but serving workers
        ship metrics across process boundaries, so the wire shape is part of
        the contract: a flat dict of field name -> value.
        """
        return dict(vars(self))

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def summary(self) -> dict:
        """A plain-dict snapshot for printing and serialisation."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "accuracy": round(self.accuracy, 4),
            "mean_latency": round(self.total_latency.mean, 4),
            "p99_latency": round(self.total_latency.p99, 4),
            "prefetches_issued": self.prefetches_issued,
            "prefetch_hits": self.prefetch_hits,
            "coalesced_misses": self.coalesced_misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "recalibrations": self.recalibrations,
            "overloaded": self.overloaded,
            "deadline_exceeded": self.deadline_exceeded,
            "hedged_fetches": self.hedged_fetches,
            "hedge_wins": self.hedge_wins,
            "stale_hits": self.stale_hits,
            "breaker_open_rejects": self.breaker_open_rejects,
            "negative_cache_hits": self.negative_cache_hits,
            "background_refreshes": self.background_refreshes,
            "fetch_failures": self.fetch_failures,
            "failed_requests": self.failed_requests,
            "worker_restarts": self.worker_restarts,
            "shard_down_fetches": self.shard_down_fetches,
        }
