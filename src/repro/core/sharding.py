"""Sharded, thread-safe semantic cache for concurrent serving (§4.4).

:class:`ShardedAsteriaCache` partitions the cache into N independent
:class:`~repro.core.cache.AsteriaCache` shards — each with its own Sine
pipeline (embedder, ANN index, judger) and its own ``threading.RLock`` — and
routes every query to one shard by a *stable* hash of its canonicalised text.
Because the embedder, judger, and staticity scorer are all deterministic
per-text (content-seeded, no sequential RNG stream), N shards built with one
seed behave, each on its own query subset, exactly like an unsharded cache
would; with one shard the whole object replays an unsharded trace decision
for decision.

Why this shape:

* **Parallelism** — lookups on different shards proceed concurrently; the
  numpy-heavy stage-1 work (embed + ANN matrix product) releases the GIL, so
  real threads scale it across cores.
* **No cross-shard locking** — whole-cache operations (expiry purge, stats,
  invalidation) visit shards one at a time and never hold two shard locks at
  once, so no lock-ordering deadlocks are possible.
* **Hit-rate trade-off** — routing by canonical text guarantees exact
  repeats (the Zipf-dominant pattern) always co-shard, but a *paraphrase*
  may hash to a different shard than its original and miss there. Shard
  count therefore trades a little semantic hit rate for lookup parallelism;
  the concurrency bench quantifies it.

Capacity, TTL purge, eviction, and stats stay per-shard; :attr:`stats`
aggregates the per-shard counters into one
:class:`~repro.core.cache.CacheStats` view whose fields are exact sums.
"""

from __future__ import annotations

import dataclasses
import threading
import zlib
from typing import Callable, Sequence

from repro.ann.base import SearchHit
from repro.core.cache import AsteriaCache, CacheStats, canonical_text
from repro.core.element import SemanticElement
from repro.core.sine import SineResult
from repro.core.types import FetchResult, Query


def shard_index_for(text: str, n_shards: int) -> int:
    """Stable shard id for ``text``: crc32 of the canonical form, mod N.

    crc32 (unlike ``hash``) is stable across processes and Python versions,
    so a persisted or distributed deployment routes identically everywhere.
    """
    return zlib.crc32(canonical_text(text).encode("utf-8")) % n_shards


class _SineBroadcast:
    """Engine-facing view over the per-shard Sine pipelines.

    :class:`~repro.core.engine.AsteriaEngine` configures its cache through
    ``cache.sine`` (thresholds, candidate count) and the recalibrator reads
    and writes ``tau_lsm`` at runtime. Reads come from shard 0 (all shards
    are kept in lockstep); writes broadcast to every shard.
    """

    def __init__(self, shards: Sequence[AsteriaCache]) -> None:
        self._shards = shards

    @property
    def tau_sim(self) -> float:
        return self._shards[0].sine.tau_sim

    @tau_sim.setter
    def tau_sim(self, value: float) -> None:
        for shard in self._shards:
            shard.sine.tau_sim = value

    @property
    def tau_lsm(self) -> float:
        return self._shards[0].sine.tau_lsm

    @tau_lsm.setter
    def tau_lsm(self, value: float) -> None:
        for shard in self._shards:
            shard.sine.tau_lsm = value

    @property
    def max_candidates(self) -> int:
        return self._shards[0].sine.max_candidates

    @max_candidates.setter
    def max_candidates(self, value: int) -> None:
        for shard in self._shards:
            shard.sine.max_candidates = value

    @property
    def embedder(self):
        """Shard 0's embedder (all shards share one seed, so any shard's
        embedder computes identical vectors)."""
        return self._shards[0].sine.embedder

    @property
    def judger(self):
        """Shard 0's judger (recalibration fine-tuning over a sharded cache
        only adjusts this instance; thresholds still broadcast)."""
        return self._shards[0].sine.judger

    def __len__(self) -> int:
        return sum(len(shard.sine) for shard in self._shards)


class ShardedAsteriaCache:
    """N thread-safe :class:`AsteriaCache` shards behind one cache interface.

    Parameters
    ----------
    shards:
        Pre-built shard caches (use the same seed for each so all shards
        share embedding/judging behaviour — see
        :func:`repro.factory.build_sharded_cache`).

    The public surface mirrors :class:`AsteriaCache` closely enough that
    :class:`~repro.core.engine.AsteriaEngine` runs over either transparently:
    ``lookup`` / ``lookup_prepared`` / ``lookup_batch`` / ``prepare_batch`` /
    ``insert`` / ``contains_semantic`` / ``remove_expired`` / ``invalidate``
    / ``stats`` / ``usage``. Every method is thread-safe; each takes only the
    target shard's re-entrant lock (whole-cache sweeps take one shard lock at
    a time).
    """

    #: Marker consumed by ConcurrentEngine's safety check.
    thread_safe = True

    def __init__(self, shards: Sequence[AsteriaCache]) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("need at least one shard")
        self._shards = shards
        self._locks = [threading.RLock() for _ in shards]
        self.sine = _SineBroadcast(self._shards)
        #: Optional stage tracer, broadcast to every shard (the tracer is
        #: thread-safe; spans carry the recording thread's id).
        self.tracer = None

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with None) a stage tracer on every shard."""
        self.tracer = tracer
        for shard in self._shards:
            shard.set_tracer(tracer)

    # -- introspection ---------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[AsteriaCache]:
        """The shard caches (index-aligned with :meth:`shard_index`)."""
        return list(self._shards)

    def shard_index(self, text: str) -> int:
        """The shard id serving queries with this text."""
        return shard_index_for(text, len(self._shards))

    def __len__(self) -> int:
        return sum(self.usage_per_shard())

    def __bool__(self) -> bool:
        """Always truthy; see :meth:`AsteriaCache.__bool__`."""
        return True

    def usage(self) -> int:
        """Current occupancy in elements across all shards."""
        return len(self)

    def usage_per_shard(self) -> list[int]:
        """Occupancy of each shard, index-aligned with :attr:`shards`."""
        counts = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                counts.append(len(shard))
        return counts

    @property
    def capacity_items(self) -> int | None:
        """Total capacity across shards (None when any shard is unbounded)."""
        total = 0
        for shard in self._shards:
            if shard.capacity_items is None:
                return None
            total += shard.capacity_items
        return total

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters: every field is the exact per-shard sum."""
        totals = CacheStats()
        for stats in self.stats_per_shard():
            for field in dataclasses.fields(CacheStats):
                setattr(
                    totals,
                    field.name,
                    getattr(totals, field.name) + getattr(stats, field.name),
                )
        return totals

    def stats_per_shard(self) -> list[CacheStats]:
        """A consistent snapshot of each shard's counters."""
        snapshots = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                snapshots.append(dataclasses.replace(shard.stats))
        return snapshots

    # -- lookup -----------------------------------------------------------------
    def lookup(self, query: Query, now: float, ann_only: bool = False) -> SineResult:
        """Two-stage lookup on the query's shard, under that shard's lock."""
        i = self.shard_index(query.text)
        with self._locks[i]:
            return self._shards[i].lookup(query, now, ann_only=ann_only)

    def lookup_prepared(
        self,
        query: Query,
        raw_hits: list[SearchHit],
        now: float,
        ann_only: bool = False,
    ) -> SineResult:
        """Lookup over pre-computed ANN hits (which must come from this
        query's shard — pair with :meth:`prepare_batch`)."""
        i = self.shard_index(query.text)
        with self._locks[i]:
            return self._shards[i].lookup_prepared(
                query, raw_hits, now, ann_only=ann_only
            )

    def lookup_batch(
        self, queries: Sequence[Query], now: float, ann_only: bool = False
    ) -> list[SineResult]:
        """Batched lookups grouped by shard: each shard gets exactly one
        embed-batch + ANN-batch pass over its own sub-batch, under its own
        lock. Results return in input order.
        """
        queries = list(queries)
        groups = self._group_positions(query.text for query in queries)
        results: list[SineResult | None] = [None] * len(queries)
        for i, positions in enumerate(groups):
            if not positions:
                continue
            with self._locks[i]:
                shard_results = self._shards[i].lookup_batch(
                    [queries[p] for p in positions], now, ann_only=ann_only
                )
            for position, result in zip(positions, shard_results):
                results[position] = result
        return results  # type: ignore[return-value]

    def prepare_batch(self, texts: Sequence[str]) -> list[list[SearchHit]]:
        """Stage-1 work grouped by shard (one embed+ANN pass per shard)."""
        texts = list(texts)
        groups = self._group_positions(texts)
        batch_hits: list[list[SearchHit]] = [[] for _ in texts]
        for i, positions in enumerate(groups):
            if not positions:
                continue
            with self._locks[i]:
                shard_hits = self._shards[i].prepare_batch(
                    [texts[p] for p in positions]
                )
            for position, hits in zip(positions, shard_hits):
                batch_hits[position] = hits
        return batch_hits

    def _group_positions(self, texts) -> list[list[int]]:
        """Input positions grouped by shard id, preserving input order."""
        groups: list[list[int]] = [[] for _ in self._shards]
        for position, text in enumerate(texts):
            groups[self.shard_index(text)].append(position)
        return groups

    def contains_semantic(self, query: Query) -> bool:
        """Stage-1-only membership probe on the query's shard."""
        i = self.shard_index(query.text)
        with self._locks[i]:
            return self._shards[i].contains_semantic(query)

    # -- admission / lifecycle ---------------------------------------------------
    def insert(
        self,
        query: Query,
        fetch: FetchResult,
        now: float,
        prefetched: bool = False,
        ttl: float | None = None,
    ) -> SemanticElement:
        """Admit a fetched result into the query's shard."""
        i = self.shard_index(query.text)
        with self._locks[i]:
            return self._shards[i].insert(
                query, fetch, now, prefetched=prefetched, ttl=ttl
            )

    def remove_expired(self, now: float) -> int:
        """TTL purge on every shard; returns the total removed."""
        removed = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                removed += shard.remove_expired(now)
        return removed

    def invalidate(self, predicate: Callable[[SemanticElement], bool]) -> int:
        """Remove matching elements from every shard; returns the count."""
        removed = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                removed += shard.invalidate(predicate)
        return removed

    def __repr__(self) -> str:
        return (
            f"ShardedAsteriaCache(shards={self.n_shards}, items={len(self)}, "
            f"capacity={self.capacity_items})"
        )
