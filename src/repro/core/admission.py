"""Admission policies: deciding which fetched results deserve cache space.

§3.2 lists "how should admission ... operate" among the questions a real
cache must answer, and §4.3 wants the cache protected from pollution. The
engine's default is admit-everything (what the paper evaluates); this module
adds the two classic alternatives as pluggable policies:

``AlwaysAdmit``
    The paper's behaviour.
``DoorkeeperAdmission``
    TinyLFU-style: a fetched result is only cached on its *second* miss
    within a time window. One-hit wonders (the Zipf tail) never displace
    useful entries; genuinely recurring knowledge is admitted one miss
    later. The doorkeeper tracks *semantic* identity — the embedding's
    nearest cached neighbour can't be used (it missed!), so recurrence is
    detected by content fingerprint of the canonical text.
``SizeThresholdAdmission``
    Refuse results larger than a token budget (huge one-off documents).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.types import FetchResult, Query
from repro.embedding.tokenizer import SimpleTokenizer


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides whether a missed-and-fetched result enters the cache."""

    name: str

    def admit(self, query: Query, fetch: FetchResult, now: float) -> bool:
        """True to cache this result."""
        ...


class AlwaysAdmit:
    """Admit every fetched result (the paper's default)."""

    name = "always"

    def admit(self, query: Query, fetch: FetchResult, now: float) -> bool:
        """Always True."""
        return True


class DoorkeeperAdmission:
    """Admit on the second semantically-equivalent miss within a window.

    Parameters
    ----------
    window:
        Seconds a first-miss record stays valid (default 300).
    max_tracked:
        Bound on remembered first-misses; oldest dropped beyond it.
    """

    name = "doorkeeper"

    def __init__(self, window: float = 300.0, max_tracked: int = 4096) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self.window = window
        self.max_tracked = max_tracked
        self._tokenizer = SimpleTokenizer()
        self._first_seen: dict[frozenset, float] = {}
        self.admitted = 0
        self.refused = 0

    def _fingerprint(self, query: Query) -> frozenset:
        """Semantic identity proxy: the set of content stems."""
        return frozenset(self._tokenizer.content_tokens(query.text))

    def admit(self, query: Query, fetch: FetchResult, now: float) -> bool:
        """True iff an equivalent miss happened within the window."""
        fingerprint = self._fingerprint(query)
        first = self._first_seen.get(fingerprint)
        if first is not None and now - first <= self.window:
            del self._first_seen[fingerprint]
            self.admitted += 1
            return True
        self._first_seen[fingerprint] = now
        if len(self._first_seen) > self.max_tracked:
            oldest = min(self._first_seen, key=self._first_seen.get)
            del self._first_seen[oldest]
        self.refused += 1
        return False

    def __repr__(self) -> str:
        return (
            f"DoorkeeperAdmission(window={self.window}, "
            f"admitted={self.admitted}, refused={self.refused})"
        )


class SizeThresholdAdmission:
    """Refuse results above ``max_tokens`` (one large doc ≠ many small hits)."""

    name = "size-threshold"

    def __init__(self, max_tokens: int = 2048) -> None:
        if max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        self.max_tokens = max_tokens

    def admit(self, query: Query, fetch: FetchResult, now: float) -> bool:
        """True iff the result fits the token budget."""
        return fetch.size_tokens <= self.max_tokens
