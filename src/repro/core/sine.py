"""Sine — the Semantic Retrieval Index (§4.2).

Two-stage retrieval over semantic elements:

1. **Coarse filter**: an ANN search over query embeddings keeps candidates
   with cosine similarity >= ``tau_sim`` (high recall, cheap).
2. **Fine validation**: the semantic judger scores each surviving candidate
   and the first with confidence >= ``tau_lsm`` becomes the match (high
   precision).

Sine is *retrieval only* — it neither admits, evicts, nor mutates frequency;
:mod:`repro.core.cache` layers cache semantics on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.ann.base import SearchHit, VectorIndex, search_batch_fallback
from repro.core.element import SemanticElement
from repro.core.types import Query
from repro.embedding.model import EmbeddingModel
from repro.judger.base import JudgeRequest, Judger, JudgeVerdict


@dataclass(frozen=True, slots=True)
class SineResult:
    """Outcome of one two-stage retrieval.

    ``match`` is the validated element or None. ``candidates`` are the ANN
    hits that passed ``tau_sim`` (in similarity order); ``verdicts`` aligns
    with the judged prefix of ``candidates``. ``ann_considered`` counts raw
    ANN results before thresholding.
    """

    match: SemanticElement | None
    candidates: list[SearchHit] = field(default_factory=list)
    verdicts: list[JudgeVerdict] = field(default_factory=list)
    ann_considered: int = 0

    @property
    def judged(self) -> int:
        """Number of candidates the judger scored."""
        return len(self.verdicts)

    @property
    def top_similarity(self) -> float:
        """Best ANN similarity seen (0.0 when the index was empty)."""
        return self.candidates[0].score if self.candidates else 0.0


class Sine:
    """The two-stage semantic retrieval index.

    Parameters
    ----------
    embedder:
        Embedding model for query fingerprints.
    index:
        Any :class:`~repro.ann.base.VectorIndex`; keys are element ids.
    judger:
        The validation model (ignored when ``ann_only`` lookups are asked
        for).
    tau_sim / tau_lsm:
        Stage thresholds. ``tau_lsm`` is mutable at runtime — the threshold
        recalibrator (Algorithm 1) adjusts it.
    max_candidates:
        ANN results retrieved per query.
    judge_all:
        If True, judge every candidate and pick the highest-scoring
        acceptable one; if False (default), stop at the first acceptance —
        the paper's latency-oriented behaviour.
    """

    def __init__(
        self,
        embedder: EmbeddingModel,
        index: VectorIndex,
        judger: Judger,
        tau_sim: float = 0.7,
        tau_lsm: float = 0.9,
        max_candidates: int = 4,
        judge_all: bool = False,
    ) -> None:
        if not 0.0 <= tau_sim <= 1.0 or not 0.0 <= tau_lsm <= 1.0:
            raise ValueError("thresholds must be in [0, 1]")
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.embedder = embedder
        self.index = index
        self.judger = judger
        self.tau_sim = tau_sim
        self.tau_lsm = tau_lsm
        self.max_candidates = max_candidates
        self.judge_all = judge_all
        #: Optional stage tracer (see :mod:`repro.obs.trace`); when set, each
        #: retrieval records ``embed`` / ``ann_search`` / ``judge`` spans.
        self.tracer = None

    # -- population management (driven by the cache) -------------------------
    def insert(self, element: SemanticElement) -> None:
        """Index ``element`` by its embedding.

        An element carrying an arena slot (the cache allocated its row on
        admission) registers that row in place via the index's ``add_slot``
        when available, so no second copy of the vector is made; otherwise
        the element's array is added normally.
        """
        slot = element.arena_slot
        if slot is not None:
            add_slot = getattr(self.index, "add_slot", None)
            if add_slot is not None:
                add_slot(element.element_id, slot)
                return
        self.index.add(element.element_id, element.embedding)

    def remove(self, element_id: int) -> None:
        """Drop ``element_id`` from the index."""
        self.index.remove(element_id)

    def __len__(self) -> int:
        return len(self.index)

    # -- retrieval ---------------------------------------------------------
    def candidates_for(self, query: Query) -> list[SearchHit]:
        """Stage 1 only: ANN hits above ``tau_sim``, best first."""
        embedding = self.embedder.embed(query.text)
        hits = self.index.search(embedding, self.max_candidates)
        return [hit for hit in hits if hit.score >= self.tau_sim]

    def retrieve(
        self,
        query: Query,
        elements: Mapping[int, SemanticElement],
        ann_only: bool = False,
    ) -> SineResult:
        """Full two-stage retrieval.

        ``elements`` maps element ids to live elements (the cache's store);
        ANN hits lacking a live element are skipped defensively.

        With ``ann_only`` the top candidate above ``tau_sim`` is returned
        unvalidated — the strawman of §3.2 used by the accuracy ablation.
        """
        # Resolve the tracer decision once for both stages: the guard costs
        # an attribute load on every untraced request, so retrieve_prepared
        # must not re-derive what this frame already knows.
        tracer = self.tracer
        if tracer is None or not tracer.live or not tracer.active():
            embedding = self.embedder.embed(query.text)
            raw_hits = self.index.search(embedding, self.max_candidates)
            return self._prepared(query, raw_hits, elements, ann_only, None)
        clock = tracer.clock
        t0 = clock()
        embedding = self.embedder.embed(query.text)
        tracer.record_leaf("embed", t0)
        t0 = clock()
        raw_hits = self.index.search(embedding, self.max_candidates)
        tracer.record_leaf("ann_search", t0, {"raw_hits": len(raw_hits)})
        return self._prepared(query, raw_hits, elements, ann_only, tracer)

    def retrieve_prepared(
        self,
        query: Query,
        raw_hits: list[SearchHit],
        elements: Mapping[int, SemanticElement],
        ann_only: bool = False,
    ) -> SineResult:
        """Stage 2 on pre-computed ANN hits (the batch path supplies them).

        Thresholding, judging, and result construction are exactly the tail
        of :meth:`retrieve`, so batched and scalar lookups agree whenever the
        supplied ``raw_hits`` equal what a fresh ANN search would return.
        """
        tracer = self.tracer
        if tracer is not None and not (tracer.live and tracer.active()):
            tracer = None
        return self._prepared(query, raw_hits, elements, ann_only, tracer)

    def _prepared(
        self,
        query: Query,
        raw_hits: list[SearchHit],
        elements: Mapping[int, SemanticElement],
        ann_only: bool,
        tracer,
    ) -> SineResult:
        candidates = [hit for hit in raw_hits if hit.score >= self.tau_sim]

        if ann_only:
            for hit in candidates:
                element = elements.get(hit.key)
                if element is not None:
                    return SineResult(
                        match=element,
                        candidates=candidates,
                        ann_considered=len(raw_hits),
                    )
            return SineResult(
                match=None, candidates=candidates, ann_considered=len(raw_hits)
            )

        if tracer is None or not candidates:
            return self._judge_candidates(query, raw_hits, candidates, elements)
        t0 = tracer.clock()
        result = self._judge_candidates(query, raw_hits, candidates, elements)
        tracer.record_leaf(
            "judge", t0, {"judged": result.judged, "matched": result.match is not None}
        )
        return result

    def _judge_candidates(
        self,
        query: Query,
        raw_hits: list[SearchHit],
        candidates: list[SearchHit],
        elements: Mapping[int, SemanticElement],
    ) -> SineResult:
        """Stage 2 proper: judge candidates in similarity order (the tail of
        :meth:`retrieve_prepared`, factored out so it can be traced)."""
        verdicts: list[JudgeVerdict] = []
        best: tuple[float, SemanticElement] | None = None
        for hit in candidates:
            element = elements.get(hit.key)
            if element is None:
                continue
            verdict = self.judger.judge(
                JudgeRequest(
                    query_text=query.text,
                    cached_query=element.key,
                    cached_result=element.value,
                    query_truth=query.fact_id,
                    cached_truth=element.truth_key,
                )
            )
            verdicts.append(verdict)
            if verdict.score >= self.tau_lsm:
                if not self.judge_all:
                    return SineResult(
                        match=element,
                        candidates=candidates,
                        verdicts=verdicts,
                        ann_considered=len(raw_hits),
                    )
                if best is None or verdict.score > best[0]:
                    best = (verdict.score, element)
        return SineResult(
            match=best[1] if best is not None else None,
            candidates=candidates,
            verdicts=verdicts,
            ann_considered=len(raw_hits),
        )

    def lookup_batch(
        self,
        queries: Sequence[Query],
        elements: Mapping[int, SemanticElement],
        ann_only: bool = False,
    ) -> list[SineResult]:
        """Batched two-stage retrieval: one embed-batch + one ANN-batch call.

        Stage 1 is shared across the batch (a single ``embed_batch`` and a
        single ``search_batch``); stage 2 judges each query independently in
        input order, so every result equals the corresponding
        :meth:`retrieve` call against the same index state.
        """
        queries = list(queries)
        if not queries:
            return []
        embeddings = self.embedder.embed_batch([query.text for query in queries])
        search_batch = getattr(self.index, "search_batch", None)
        if search_batch is not None:
            batch_hits = search_batch(embeddings, self.max_candidates)
        else:
            batch_hits = search_batch_fallback(
                self.index, embeddings, self.max_candidates
            )
        return [
            self.retrieve_prepared(query, raw_hits, elements, ann_only=ann_only)
            for query, raw_hits in zip(queries, batch_hits)
        ]
