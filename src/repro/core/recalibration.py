"""Periodic threshold recalibration (§4.2, Algorithm 1).

A fixed ``tau_lsm`` is brittle under workload drift. The recalibrator samples
recent validated lookups, obtains ground truth for each (in the paper: a
fresh fetch judged by a ground-truth evaluator; here: the query's hidden fact
identity, optionally charged as a real refetch), builds the judger's
precision curve on a validation set, and picks the smallest threshold whose
precision meets the target.

The precision-curve utilities are exposed separately because the τ sweep
benchmarks reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class EvalRecord:
    """One validated lookup: the judger's score and whether it was right.

    ``score`` is the LSM confidence for the pair that was served;
    ``correct`` is the ground-truth label produced by the evaluator.
    """

    score: float
    correct: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1], got {self.score}")


def precision_curve(
    records: Sequence[EvalRecord],
) -> list[tuple[float, float]]:
    """Precision at every distinct score threshold, ascending by threshold.

    Each entry is ``(threshold, precision_when_accepting_score >= threshold)``.
    Thresholds with zero accepted records are omitted.
    """
    if not records:
        return []
    ordered = sorted(records, key=lambda record: record.score)
    scores = np.array([record.score for record in ordered])
    correct = np.array([record.correct for record in ordered], dtype=float)
    # Suffix sums: accepting everything from index i upward.
    total_from = np.cumsum(np.ones_like(correct)[::-1])[::-1]
    correct_from = np.cumsum(correct[::-1])[::-1]
    curve: list[tuple[float, float]] = []
    seen: set[float] = set()
    for index, threshold in enumerate(scores):
        if threshold in seen:
            continue
        seen.add(threshold)
        curve.append((float(threshold), float(correct_from[index] / total_from[index])))
    return curve


def find_threshold(
    curve: Sequence[tuple[float, float]],
    target_precision: float,
    fallback: float = 1.0,
) -> float:
    """Smallest threshold whose precision meets ``target_precision``.

    Falls back to ``fallback`` (reject-almost-everything) when no threshold
    on the curve reaches the target — the safe direction for a cache.
    """
    if not 0.0 < target_precision <= 1.0:
        raise ValueError(f"target_precision must be in (0, 1], got {target_precision}")
    for threshold, precision in curve:
        if precision >= target_precision:
            return threshold
    return fallback


class ThresholdRecalibrator:
    """Algorithm 1, packaged for the engine.

    Parameters
    ----------
    target_precision:
        The quality bar P_target (paper example: 0.99).
    sample_size:
        Recent records sampled per round (paper: 5 per minute).
    ground_truth:
        ``ground_truth(query_text, served_truth_key, query_fact_id) -> bool``
        labels whether the served answer was correct. The default compares
        fact identities — equivalent to the paper's FetchGT + EvaluateGT
        pipeline in our substrate.
    min_records:
        Do nothing until the validation set has at least this many labelled
        records (avoids thrashing on tiny evidence).
    rng:
        Sampling generator (seeded by the experiment).
    """

    def __init__(
        self,
        target_precision: float = 0.99,
        sample_size: int = 5,
        ground_truth: Callable[[str, str | None, str | None], bool] | None = None,
        min_records: int = 20,
        rng: np.random.Generator | None = None,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if min_records < 1:
            raise ValueError("min_records must be >= 1")
        self.target_precision = target_precision
        self.sample_size = sample_size
        self.ground_truth = ground_truth or self._oracle_ground_truth
        self.min_records = min_records
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._validation_set: list[EvalRecord] = []
        self.rounds = 0

    @staticmethod
    def _oracle_ground_truth(
        query_text: str, served_truth_key: str | None, query_fact_id: str | None
    ) -> bool:
        if served_truth_key is None or query_fact_id is None:
            return False
        return served_truth_key == query_fact_id

    @property
    def validation_size(self) -> int:
        """Labelled records accumulated so far."""
        return len(self._validation_set)

    def ingest(
        self,
        recent: Sequence[tuple[str, float, str | None, str | None]],
    ) -> int:
        """Label a sample of recent lookups and grow the validation set.

        ``recent`` entries are ``(query_text, lsm_score, served_truth_key,
        query_fact_id)`` — what the engine's eval log records per validated
        hit. Returns the number of newly labelled records.
        """
        if not recent:
            return 0
        count = min(self.sample_size, len(recent))
        chosen = self.rng.choice(len(recent), size=count, replace=False)
        for index in chosen:
            query_text, score, served_truth, fact_id = recent[int(index)]
            label = self.ground_truth(query_text, served_truth, fact_id)
            self._validation_set.append(EvalRecord(score=score, correct=label))
        return count

    def recalibrate(self, current_threshold: float) -> float:
        """One recalibration round; returns the (possibly unchanged) τ'."""
        self.rounds += 1
        if len(self._validation_set) < self.min_records:
            return current_threshold
        curve = precision_curve(self._validation_set)
        return find_threshold(curve, self.target_precision, fallback=current_threshold)

    def forget(self, keep_last: int = 0) -> None:
        """Discard old validation records (workload drift makes them stale)."""
        if keep_last < 0:
            raise ValueError("keep_last must be >= 0")
        if keep_last == 0:
            self._validation_set.clear()
        else:
            self._validation_set = self._validation_set[-keep_last:]

    #: What one fine-tuning round pulls the simulated judger back towards:
    #: the calibrated SimulatedJudger defaults (its "well-trained" state).
    FINE_TUNE_TARGETS = {
        "flip_rate": 0.002,
        "pos_alpha": 30.0,
        "pos_beta": 0.4,
        "neg_alpha": 0.8,
        "neg_beta": 20.0,
    }

    def fine_tune(self, judger, decay: float = 0.7) -> bool:
        """Use the annotated set to improve the judger itself (§5).

        The paper notes the recalibration labels can fine-tune the LSM.
        In our substrate a fine-tuning round moves each of the simulated
        judger's error parameters a fraction ``1 - decay`` of the way back
        to its well-calibrated value — the system-level effect of training
        on a batch of labelled mistakes. Requires at least ``min_records``
        accumulated labels and a judger exposing the simulated parameters
        (returns False otherwise, so heuristic judgers are unaffected).
        """
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        if len(self._validation_set) < self.min_records:
            return False
        tuned = False
        for attribute, target in self.FINE_TUNE_TARGETS.items():
            value = getattr(judger, attribute, None)
            if value is None:
                continue
            setattr(judger, attribute, target + (value - target) * decay)
            tuned = True
        return tuned

    def __repr__(self) -> str:
        return (
            f"ThresholdRecalibrator(target={self.target_precision}, "
            f"rounds={self.rounds}, validation={self.validation_size})"
        )
