"""Contiguous embedding storage: the cache's hot-path memory layout.

Per-element embedding arrays make the lookup fast path pay a Python object,
a refcount, and a pointer chase per semantic element. The **arena** replaces
them with one growable ``(capacity, dim)`` matrix plus a free-list: every
element's embedding lives in a *slot* (one row), handed out on admission and
recycled on eviction. Consumers — the cache, Sine, and the ANN indexes —
score queries against contiguous row views instead of gathering per-SE
arrays, which is what makes the batched lookup path one matrix product.

Two tiers behind one interface:

* :class:`EmbeddingArena` — float32 rows, bit-exact with per-element
  storage (vectors are unit-normalised on allocation with the same math as
  :func:`repro.ann.base.normalize_batch`, so arena-backed search decisions
  replay the per-vector decisions exactly).
* :class:`QuantizedArena` — int8 rows with one float32 scale per row
  (symmetric per-row quantization). ~4x smaller than float32 at a small
  recall cost; the micro-bench records the memory/recall trade-off curve.

Slot lifecycle invariants:

* ``allocate``/``allocate_batch`` normalise and copy the vector(s) in;
  freed slots are reused before the high-water mark advances, and the
  matrix doubles when the free-list empties.
* ``release`` zeroes the row (a freed slot scores 0 against any query, so
  stale rows can never outrank live ones) and recycles the slot.
* Rows never move except under :meth:`compact`, which packs live rows to
  the front and returns an ``old slot -> new slot`` remap for index and
  element handles; views handed out earlier stay value-correct because row
  contents are immutable between allocate and release.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EmbeddingArena", "QuantizedArena", "build_arena"]


class _ArenaBase:
    """Slot management shared by both storage tiers.

    Unallocated capacity is tracked in two parts: ``_free`` holds released
    slots (reused LIFO, before any fresh slot), and ``_next_fresh`` points at
    the lowest never-used slot, so slots hand out as 0, 1, 2, ... on a fresh
    arena — the same sequence :class:`~repro.ann.flat.FlatIndex` used for its
    internal matrix, which keeps arena-backed scoring bit-identical to the
    pre-arena layout. Liveness is a bool row mask rather than a Python set,
    so bulk fills and compaction scans stay vectorised at 10^7-slot scale.
    """

    def __init__(self, dim: int, initial_capacity: int = 1024) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if initial_capacity < 1:
            raise ValueError(f"initial_capacity must be >= 1, got {initial_capacity}")
        self._dim = dim
        self._capacity = initial_capacity
        #: Released slots, reused LIFO before fresh capacity is touched.
        self._free: list[int] = []
        #: Lowest slot never handed out; everything above is virgin capacity.
        self._next_fresh = 0
        self._live_mask = np.zeros(initial_capacity, dtype=bool)
        self._count = 0
        #: 1 + highest slot ever occupied; scoring slices rows to this.
        self._high_water = 0
        # Lifecycle counters (read by tests and the micro-bench).
        self.allocations = 0
        self.releases = 0
        self.reuses = 0
        self.grows = 0
        self.compactions = 0

    # -- introspection -------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def high_water(self) -> int:
        return self._high_water

    def __len__(self) -> int:
        return self._count

    def __contains__(self, slot: int) -> bool:
        return 0 <= slot < self._capacity and bool(self._live_mask[slot])

    def live_slots(self) -> list[int]:
        """Currently allocated slots, ascending."""
        return [int(slot) for slot in np.flatnonzero(self._live_mask)]

    # -- allocation ----------------------------------------------------------
    def allocate(self, vector: np.ndarray) -> int:
        """Store ``vector`` (unit-normalised) in a slot; returns the slot.

        Routed through :meth:`allocate_batch` so the scalar and batch paths
        share one normalisation expression — the same one
        :func:`repro.ann.base.normalize_batch` uses — keeping arena rows
        bit-identical to per-element normalised arrays.
        """
        vector = np.asarray(vector, dtype=np.float32)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise ValueError(f"expected dim {self._dim}, got shape {vector.shape}")
        return int(self.allocate_batch(vector[None, :])[0])

    def allocate_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Store each row of ``vectors``; returns the slots as an int64 array.

        Vectorised: one normalisation pass and one fancy-index store for the
        whole batch, so bulk fills (persistence restore, synthetic soak
        tests) run at memory bandwidth instead of per-row Python cost.
        """
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ValueError(
                f"expected (n, {self._dim}) vectors, got shape {vectors.shape}"
            )
        n = vectors.shape[0]
        slots = self._take_slots(n)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        unit = vectors / np.where(norms == 0, np.float32(1.0), norms)
        self._store_rows(slots, unit)
        return slots

    def _take_slots(self, n: int) -> np.ndarray:
        """Claim ``n`` slots: released ones LIFO first, then fresh capacity."""
        slots = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            if self._free:
                take = min(n - filled, len(self._free))
                reused = self._free[len(self._free) - take :]
                del self._free[len(self._free) - take :]
                reused.reverse()  # pop order: most recently released first
                slots[filled : filled + take] = reused
                self.reuses += take
                top = int(slots[filled : filled + take].max()) + 1
                if top > self._high_water:
                    self._high_water = top
                filled += take
            elif self._next_fresh < self._capacity:
                take = min(n - filled, self._capacity - self._next_fresh)
                start = self._next_fresh
                slots[filled : filled + take] = np.arange(
                    start, start + take, dtype=np.int64
                )
                self._next_fresh = start + take
                if self._next_fresh > self._high_water:
                    self._high_water = self._next_fresh
                filled += take
            else:
                self._grow()
        self._live_mask[slots] = True
        self._count += n
        self.allocations += n
        return slots

    def release(self, slot: int) -> None:
        """Recycle ``slot``; its row is zeroed so it can never score > 0."""
        if slot not in self:
            raise KeyError(f"slot {slot} not allocated")
        self._live_mask[slot] = False
        self._count -= 1
        self._clear_row(slot)
        self._free.append(slot)
        self.releases += 1
        # Let the high-water mark sink past a trailing run of freed slots so
        # scoring never pays for rows above the live region.
        while self._high_water > 0 and not self._live_mask[self._high_water - 1]:
            self._high_water -= 1

    def _grow(self) -> None:
        old = self._capacity
        self._capacity = old * 2
        self._grow_storage(old, self._capacity)
        mask = np.zeros(self._capacity, dtype=bool)
        mask[:old] = self._live_mask
        self._live_mask = mask
        self.grows += 1

    # -- compaction ----------------------------------------------------------
    def compact(self) -> dict[int, int]:
        """Pack live rows to the front; returns ``{old_slot: new_slot}``.

        Only moved slots appear in the remap. Relative slot order is
        preserved, the high-water mark drops to the live count, and the
        free-list is rebuilt. Callers must propagate the remap to anything
        holding slot handles (the cache does this for its elements and
        index).
        """
        live = [int(slot) for slot in np.flatnonzero(self._live_mask)]
        remap = {old: new for new, old in enumerate(live) if old != new}
        if remap:
            self._move_rows(live)
        count = len(live)
        self._live_mask[:] = False
        self._live_mask[:count] = True
        self._count = count
        self._high_water = count
        self._free = []
        self._next_fresh = count
        self.compactions += 1
        return remap

    # -- storage hooks (tier-specific) ---------------------------------------
    def _store_row(self, slot: int, unit_vector: np.ndarray) -> None:
        raise NotImplementedError

    def _store_rows(self, slots: np.ndarray, unit_vectors: np.ndarray) -> None:
        raise NotImplementedError

    def _clear_row(self, slot: int) -> None:
        raise NotImplementedError

    def _grow_storage(self, old_capacity: int, new_capacity: int) -> None:
        raise NotImplementedError

    def _move_rows(self, live_sorted: list[int]) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dim={self._dim}, live={len(self)}, "
            f"capacity={self._capacity}, high_water={self._high_water})"
        )


class EmbeddingArena(_ArenaBase):
    """Float32 tier: full-precision rows, bit-exact replay of per-SE arrays."""

    def __init__(self, dim: int, initial_capacity: int = 1024) -> None:
        super().__init__(dim, initial_capacity)
        self._matrix = np.zeros((initial_capacity, dim), dtype=np.float32)

    @property
    def quantized(self) -> bool:
        return False

    def get(self, slot: int) -> np.ndarray:
        """Read-only view of the row (no copy; stays valid until release)."""
        if slot not in self:
            raise KeyError(f"slot {slot} not allocated")
        view = self._matrix[slot]
        view.flags.writeable = False
        return view

    def rows(self) -> np.ndarray:
        """Read-only ``(high_water, dim)`` view of the occupied region."""
        view = self._matrix[: self._high_water]
        view.flags.writeable = False
        return view

    def scores(self, queries: np.ndarray) -> np.ndarray:
        """``queries @ rows.T`` over the occupied region — one matrix product.

        ``queries`` is ``(n, dim)`` float32 (normalised by the caller); the
        result is ``(n, high_water)``. Freed rows are zero so they score 0.
        """
        return queries @ self._matrix[: self._high_water].T

    def scores_for(self, queries: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Scores against a gathered subset of rows — ``(n, len(slots))``."""
        return queries @ self._matrix[slots].T

    def memory_bytes(self) -> int:
        """Bytes held by row storage (the envelope tests gate on this)."""
        return self._matrix.nbytes

    # -- hooks ---------------------------------------------------------------
    def _store_row(self, slot, unit_vector):
        self._matrix[slot] = unit_vector

    def _store_rows(self, slots, unit_vectors):
        self._matrix[slots] = unit_vectors

    def _clear_row(self, slot):
        self._matrix[slot] = 0.0

    def _grow_storage(self, old_capacity, new_capacity):
        grown = np.zeros((new_capacity, self._dim), dtype=np.float32)
        grown[:old_capacity] = self._matrix
        self._matrix = grown

    def _move_rows(self, live_sorted):
        packed = self._matrix[live_sorted].copy()
        self._matrix[: len(live_sorted)] = packed
        self._matrix[len(live_sorted) : self._high_water] = 0.0


class QuantizedArena(_ArenaBase):
    """Int8 tier: symmetric per-row quantization, ~4x smaller than float32.

    Each unit vector is stored as ``round(v / scale)`` int8 codes with
    ``scale = max(|v|) / 127`` kept per row, so the dequantized row is
    ``codes * scale`` and a dot product against query ``q`` is
    ``(q . codes) * scale``. Scoring upcasts the code block to float32 for
    the matrix product (a transient, not retained memory); :meth:`get`
    returns a dequantized float32 copy so consumers see the same interface
    as the float32 tier.
    """

    def __init__(self, dim: int, initial_capacity: int = 1024) -> None:
        super().__init__(dim, initial_capacity)
        self._codes = np.zeros((initial_capacity, dim), dtype=np.int8)
        self._scales = np.zeros(initial_capacity, dtype=np.float32)

    @property
    def quantized(self) -> bool:
        return True

    def get(self, slot: int) -> np.ndarray:
        """Dequantized float32 copy of the row."""
        if slot not in self:
            raise KeyError(f"slot {slot} not allocated")
        return self._codes[slot].astype(np.float32) * self._scales[slot]

    def rows(self) -> np.ndarray:
        """Dequantized float32 copy of the occupied region."""
        hw = self._high_water
        return self._codes[:hw].astype(np.float32) * self._scales[:hw, None]

    def scores(self, queries: np.ndarray) -> np.ndarray:
        hw = self._high_water
        return (queries @ self._codes[:hw].astype(np.float32).T) * self._scales[:hw]

    def scores_for(self, queries: np.ndarray, slots: np.ndarray) -> np.ndarray:
        return (queries @ self._codes[slots].astype(np.float32).T) * self._scales[
            slots
        ]

    def memory_bytes(self) -> int:
        return self._codes.nbytes + self._scales.nbytes

    # -- hooks ---------------------------------------------------------------
    def _quantize(self, unit_vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        peak = np.abs(unit_vectors).max(axis=-1)
        scales = (peak / 127.0).astype(np.float32)
        safe = np.where(scales == 0, np.float32(1.0), scales)
        codes = np.rint(unit_vectors / safe[..., None]).astype(np.int8)
        return codes, scales

    def _store_row(self, slot, unit_vector):
        codes, scales = self._quantize(unit_vector[None, :])
        self._codes[slot] = codes[0]
        self._scales[slot] = scales[0]

    def _store_rows(self, slots, unit_vectors):
        codes, scales = self._quantize(unit_vectors)
        self._codes[slots] = codes
        self._scales[slots] = scales

    def _clear_row(self, slot):
        self._codes[slot] = 0
        self._scales[slot] = 0.0

    def _grow_storage(self, old_capacity, new_capacity):
        codes = np.zeros((new_capacity, self._dim), dtype=np.int8)
        codes[:old_capacity] = self._codes
        self._codes = codes
        scales = np.zeros(new_capacity, dtype=np.float32)
        scales[:old_capacity] = self._scales
        self._scales = scales

    def _move_rows(self, live_sorted):
        count = len(live_sorted)
        self._codes[:count] = self._codes[live_sorted].copy()
        self._codes[count : self._high_water] = 0
        self._scales[:count] = self._scales[live_sorted].copy()
        self._scales[count : self._high_water] = 0.0


def build_arena(
    kind: "str | None", dim: int, initial_capacity: int = 1024
) -> "_ArenaBase | None":
    """An arena tier by name: ``float32`` (exact), ``int8``, or None (off)."""
    if kind is None or kind == "none":
        return None
    if kind == "float32":
        return EmbeddingArena(dim, initial_capacity)
    if kind == "int8":
        return QuantizedArena(dim, initial_capacity)
    raise ValueError(f"unknown arena kind {kind!r}; expected float32/int8/none")
