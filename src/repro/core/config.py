"""Configuration for the Asteria engine.

One dataclass gathers every tunable the paper names, with the paper's
defaults where they are meaningful in our substrate and documented remappings
where they are not:

* ``tau_sim`` — the paper uses 0.9 in Qwen3 embedding space. Our hashing
  embedder produces a different similarity geometry (paraphrases ≥ 0.95,
  confusables 0.55-0.85, unrelated ≈ 0), so the *equivalent operating point*
  is 0.7: permissive enough to pass every paraphrase and the confusables the
  judger must catch, strict enough to exclude unrelated queries.
* ``tau_lsm`` — 0.9, as in the paper (§4.2).
* Cache-check latencies follow Figure 11: ~0.02 s for embedding+ANN and
  ~0.03 s for judger validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default similarity threshold; see module docstring for the 0.9 -> 0.7 map.
DEFAULT_TAU_SIM = 0.7
#: Paper default LSM confidence threshold.
DEFAULT_TAU_LSM = 0.9


@dataclass
class AsteriaConfig:
    """Tunables for :class:`repro.core.engine.AsteriaEngine`.

    Parameters
    ----------
    tau_sim:
        ANN candidate-selection cosine threshold (coarse filter).
    tau_lsm:
        Judger confidence threshold (fine validation).
    max_candidates:
        ANN candidates fetched per lookup (the judger sees at most these).
    capacity_items:
        Cache capacity in semantic elements; None = unbounded.
    default_ttl:
        Time-to-live for new elements in seconds; None disables aging.
    ann_latency:
        Simulated seconds for embedding + ANN search per lookup (0.02 s,
        Figure 11).
    judge_latency_base:
        Fixed judger invocation overhead per lookup that judges >= 1
        candidate (0.02 s).
    judge_latency_per_candidate:
        Additional seconds per judged candidate (0.01 s; one candidate gives
        the paper's 0.03 s total).
    prefetch_enabled / prefetch_confidence / prefetch_max_per_event:
        Markov prefetching controls (Algorithm 3).
    recalibration_enabled / recalibration_interval / recalibration_samples /
    target_precision:
        Algorithm 1 controls: every ``recalibration_interval`` simulated
        seconds, sample ``recalibration_samples`` recent validated hits,
        fetch ground truth, and move ``tau_lsm`` to meet
        ``target_precision``.
    ann_only:
        Ablation switch: trust the ANN top-1 above ``tau_sim`` without
        judging (the paper's Agent_ANN / "Asteria w/o judger").
    admit_on_miss:
        Store fetched results as new SEs (normally True; False turns the
        engine into a read-only prober for debugging).
    staticity_ttl_scaling:
        Scale element TTLs by staticity/10 (extension of the paper's aging
        mechanism; see AsteriaCache).
    finetune_enabled:
        Let recalibration rounds also fine-tune the judger on the labelled
        validation set (§5's suggestion); requires recalibration_enabled.
    cacheable_tools:
        Tools whose results may be cached; queries for other tools *bypass*
        the cache entirely (e.g. side-effecting or user-specific tools).
        None (default) caches every tool.
    coalesce_misses:
        Suppress the thundering herd (process mode): concurrent misses for
        semantically identical queries share one in-flight remote fetch
        instead of each paying for their own. Off by default (the paper
        does not describe coalescing); the extension bench quantifies it.
    """

    tau_sim: float = DEFAULT_TAU_SIM
    tau_lsm: float = DEFAULT_TAU_LSM
    max_candidates: int = 4
    capacity_items: int | None = None
    default_ttl: float | None = 3600.0
    ann_latency: float = 0.02
    judge_latency_base: float = 0.02
    judge_latency_per_candidate: float = 0.01
    prefetch_enabled: bool = False
    prefetch_confidence: float = 0.4
    prefetch_max_per_event: int = 2
    recalibration_enabled: bool = False
    recalibration_interval: float = 60.0
    recalibration_samples: int = 5
    target_precision: float = 0.99
    ann_only: bool = False
    admit_on_miss: bool = True
    staticity_ttl_scaling: bool = False
    finetune_enabled: bool = False
    cacheable_tools: "tuple[str, ...] | None" = None
    coalesce_misses: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.tau_sim <= 1.0:
            raise ValueError(f"tau_sim must be in [0, 1], got {self.tau_sim}")
        if not 0.0 <= self.tau_lsm <= 1.0:
            raise ValueError(f"tau_lsm must be in [0, 1], got {self.tau_lsm}")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.capacity_items is not None and self.capacity_items < 1:
            raise ValueError("capacity_items must be >= 1 or None")
        if self.default_ttl is not None and self.default_ttl <= 0:
            raise ValueError("default_ttl must be > 0 or None")
        for name in ("ann_latency", "judge_latency_base", "judge_latency_per_candidate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.prefetch_confidence <= 1.0:
            raise ValueError("prefetch_confidence must be in [0, 1]")
        if self.prefetch_max_per_event < 1:
            raise ValueError("prefetch_max_per_event must be >= 1")
        if self.recalibration_interval <= 0:
            raise ValueError("recalibration_interval must be > 0")
        if self.recalibration_samples < 1:
            raise ValueError("recalibration_samples must be >= 1")
        if not 0.0 < self.target_precision <= 1.0:
            raise ValueError("target_precision must be in (0, 1]")

    def cache_check_latency(self, judged: int) -> float:
        """L_CacheCheck = L_ANN + L_LSM for a lookup that judged ``judged``."""
        latency = self.ann_latency
        if judged > 0 and not self.ann_only:
            latency += (
                self.judge_latency_base
                + self.judge_latency_per_candidate * judged
            )
        return latency


#: Serving-facing alias: the multi-process tier ships this dataclass to
#: worker processes as the per-shard cache configuration.
CacheConfig = AsteriaConfig
