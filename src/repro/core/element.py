"""The Semantic Element (SE): Asteria's cache unit (§4.1, Figure 5).

An SE is a key-value pair — the agent's tool query is the semantic key, the
retrieved information is the value — augmented with the metadata every cache
policy decision reads: the embedding fingerprint, a 1-10 staticity score,
access frequency, the original retrieval latency and cost, the size in
tokens, and TTL bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class SemanticElement:
    """One cached (query, result) pair with performance-aware metadata.

    Attributes
    ----------
    element_id:
        Unique integer key, also the ANN-index key.
    key:
        The canonical query text (the semantic key).
    value:
        The retrieved result (the cached knowledge).
    embedding:
        Unit-norm embedding of ``key`` — the semantic fingerprint.
    tool:
        Which tool produced the value (search / rag / file).
    truth_key:
        Hidden ground-truth fact identity of the query that created this
        element. Read only by ground-truth machinery, never by matching.
    staticity:
        1-10 fact-likeness score from the staticity scorer (10 = stable).
    frequency:
        Number of validated cache hits served by this element.
    retrieval_latency:
        Seconds the original remote fetch took (drives LCFU).
    retrieval_cost:
        Dollars the original remote fetch cost (drives LCFU).
    size_tokens:
        Value size in tokens (LCFU normalises by it).
    created_at / last_accessed_at / expires_at:
        Lifecycle timestamps in simulated seconds; ``expires_at`` may be
        ``inf`` when TTL is disabled.
    prefetched:
        True if this element entered via predictive prefetching; such
        elements start at frequency 0 and earn retention on first validated
        hit (§4.3).
    arena_slot:
        Row handle into the cache's embedding arena when one is configured
        (``embedding`` is then a view of that row); None for standalone
        per-element storage. Owned by the cache: allocated on admission,
        released on removal, remapped on arena compaction.
    """

    element_id: int
    key: str
    value: str
    embedding: np.ndarray
    tool: str = "search"
    truth_key: str | None = None
    staticity: int = 6
    frequency: int = 0
    retrieval_latency: float = 0.0
    retrieval_cost: float = 0.0
    size_tokens: int = 1
    created_at: float = 0.0
    last_accessed_at: float = 0.0
    expires_at: float = float("inf")
    prefetched: bool = False
    arena_slot: int | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("element key must be non-empty")
        if not 1 <= self.staticity <= 10:
            raise ValueError(f"staticity must be in [1, 10], got {self.staticity}")
        if self.size_tokens < 0:
            raise ValueError("size_tokens must be >= 0")
        if self.retrieval_latency < 0 or self.retrieval_cost < 0:
            raise ValueError("retrieval latency/cost must be >= 0")
        if self.frequency < 0:
            raise ValueError("frequency must be >= 0")

    def __getstate__(self) -> dict:
        """Detach arena state so elements survive pickling across processes.

        When ``embedding`` is a view into a shared arena row the view cannot
        travel: the receiving process has no arena to resolve the slot
        against. Serialize an owned copy of the vector and drop the slot
        handle; the deserialized element is standalone.
        """
        state = {
            "element_id": self.element_id,
            "key": self.key,
            "value": self.value,
            "embedding": self.embedding,
            "tool": self.tool,
            "truth_key": self.truth_key,
            "staticity": self.staticity,
            "frequency": self.frequency,
            "retrieval_latency": self.retrieval_latency,
            "retrieval_cost": self.retrieval_cost,
            "size_tokens": self.size_tokens,
            "created_at": self.created_at,
            "last_accessed_at": self.last_accessed_at,
            "expires_at": self.expires_at,
            "prefetched": self.prefetched,
            "arena_slot": None,
            "metadata": dict(self.metadata),
        }
        embedding = self.embedding
        if isinstance(embedding, np.ndarray) and (
            self.arena_slot is not None or not embedding.flags["OWNDATA"]
        ):
            state["embedding"] = np.array(embedding, dtype=embedding.dtype, copy=True)
        return state

    def __setstate__(self, state: dict) -> None:
        embedding = state.get("embedding")
        if isinstance(embedding, np.ndarray) and not embedding.flags["OWNDATA"]:
            # numpy may rebuild the vector as a read-only view over the
            # pickle's own bytes; re-own it so the element stays writable
            # and independent of the deserialization buffer.
            state = {**state, "embedding": np.array(embedding, copy=True)}
        for name, value in state.items():
            setattr(self, name, value)

    def ttl_remaining(self, now: float) -> float:
        """Seconds until expiry (negative once expired)."""
        return self.expires_at - now

    def is_expired(self, now: float) -> bool:
        """True once the TTL has elapsed."""
        return self.expires_at <= now

    def record_hit(self, now: float) -> None:
        """Register one validated cache hit (frequency + recency update)."""
        self.frequency += 1
        self.last_accessed_at = now

    def __repr__(self) -> str:
        return (
            f"SemanticElement(id={self.element_id}, key={self.key!r}, "
            f"freq={self.frequency}, stat={self.staticity}, "
            f"cost=${self.retrieval_cost:.4f})"
        )
