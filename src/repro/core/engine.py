"""Engines: the data client + cache + remote-fallback orchestration (§3.3).

Three engines implement one interface (the experiments' system axis):

``AsteriaEngine``
    The full system: two-stage semantic lookup, admission on miss, LCFU
    eviction, optional Markov prefetching and threshold recalibration. With
    ``config.ann_only`` it degrades into the paper's Agent_ANN ablation.
``ExactEngine``
    Agent_exact — a traditional exact-match KV cache at the tool boundary.
``VanillaEngine``
    Agent_vanilla — no cache; every request goes to the remote service.

Each engine supports two execution styles, mirroring
:class:`~repro.network.remote.RemoteDataService`:

* ``handle(query, now)`` — analytic, returns a complete
  :class:`EngineResponse` with simulated latency;
* ``process(sim, query)`` — a generator for the discrete-event simulator,
  where queueing, rate limits, prefetch asynchrony, and GPU contention are
  real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Protocol, Sequence, runtime_checkable

from repro.core.admission import AdmissionPolicy, AlwaysAdmit
from repro.core.cache import AsteriaCache, ExactCache, canonical_text
from repro.core.config import AsteriaConfig
from repro.core.metrics import EngineMetrics
from repro.core.prefetch import MarkovPrefetcher, QuerySignature
from repro.core.recalibration import ThresholdRecalibrator
from repro.core.resilience import FetchFailed, ResilienceManager
from repro.core.types import CacheLookup, FetchResult, Query
from repro.embedding.tokenizer import SimpleTokenizer
from repro.network.remote import RemoteDataService, RemoteFetchError


@dataclass(frozen=True, slots=True)
class EngineResponse:
    """What the agent gets back for one tool call.

    ``degraded`` is None on the normal path; a fault-degraded response sets
    it to ``"stale_hit"`` (served from the last-known-good store, possibly
    past its TTL) or ``"failed"`` (no fallback available — ``result`` is
    empty and the caller must handle the miss itself).
    """

    result: str
    latency: float
    lookup: CacheLookup
    fetch: FetchResult | None = None
    degraded: str | None = None

    @property
    def served_from_cache(self) -> bool:
        return self.lookup.is_hit


@runtime_checkable
class KnowledgeEngine(Protocol):
    """The system axis of every experiment."""

    name: str
    metrics: EngineMetrics

    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Resolve one query analytically starting at ``now``."""
        ...

    def process(self, sim, query: Query) -> Generator:
        """Resolve one query as a simulated process (drive with yield from)."""
        ...


@runtime_checkable
class JudgeExecutor(Protocol):
    """Runs judger work somewhere (fixed latency, or a shared GPU)."""

    def run(self, sim, judged: int) -> Generator:
        """A generator that completes when ``judged`` validations are done."""
        ...


class _ConfigLatencyExecutor:
    """Default executor: judger latency straight from the config constants."""

    def __init__(self, config: AsteriaConfig) -> None:
        self._config = config

    def run(self, sim, judged: int) -> Generator:
        if judged > 0:
            yield sim.timeout(
                self._config.judge_latency_base
                + self._config.judge_latency_per_candidate * judged
            )
        return None


def _is_correct(served_truth: str | None, fact_id: str | None) -> bool:
    """Ground truth comparison; unknown annotations count as correct."""
    if served_truth is None or fact_id is None:
        return True
    return served_truth == fact_id


class AsteriaEngine:
    """The full Asteria system behind the data client.

    Parameters
    ----------
    cache:
        The semantic cache (owns Sine and the eviction policy).
    remote:
        The remote data service used on misses and for prefetching.
    config:
        Engine tunables; the cache's thresholds are driven from here
        (``config.tau_sim/tau_lsm`` overwrite the Sine values at
        construction so one object configures the whole engine).
    prefetcher:
        Optional Markov prefetcher; created automatically when
        ``config.prefetch_enabled``.
    recalibrator:
        Optional threshold recalibrator; created automatically when
        ``config.recalibration_enabled``.
    judge_executor:
        Where judger work runs in process mode (default: fixed-latency from
        config; the serving package provides a GPU-backed executor).
    admission:
        Which fetched results enter the cache (default
        :class:`~repro.core.admission.AlwaysAdmit`).
    resilience:
        Fault-tolerance state for the miss path (circuit breaker, negative
        cache, stale store, transient-fault retries). A default
        :class:`~repro.core.resilience.ResilienceManager` is built when
        omitted; share one instance across front-ends that talk to the same
        backend.
    """

    def __init__(
        self,
        cache: AsteriaCache,
        remote: RemoteDataService,
        config: AsteriaConfig | None = None,
        prefetcher: MarkovPrefetcher | None = None,
        recalibrator: ThresholdRecalibrator | None = None,
        judge_executor: JudgeExecutor | None = None,
        admission: AdmissionPolicy | None = None,
        resilience: ResilienceManager | None = None,
        name: str = "asteria",
    ) -> None:
        self.cache = cache
        self.remote = remote
        self.config = config if config is not None else AsteriaConfig()
        self.cache.sine.tau_sim = self.config.tau_sim
        self.cache.sine.tau_lsm = self.config.tau_lsm
        self.cache.sine.max_candidates = self.config.max_candidates
        if prefetcher is None and self.config.prefetch_enabled:
            prefetcher = MarkovPrefetcher(
                confidence=self.config.prefetch_confidence,
                max_per_event=self.config.prefetch_max_per_event,
            )
        self.prefetcher = prefetcher
        if recalibrator is None and self.config.recalibration_enabled:
            recalibrator = ThresholdRecalibrator(
                target_precision=self.config.target_precision,
                sample_size=self.config.recalibration_samples,
            )
        self.recalibrator = recalibrator
        self.judge_executor = judge_executor or _ConfigLatencyExecutor(self.config)
        self.admission = admission if admission is not None else AlwaysAdmit()
        self.resilience = resilience if resilience is not None else ResilienceManager()
        #: Optional request tracing: assign a TraceLog to start recording.
        self.trace = None
        #: Optional stage tracer (span trees; see :mod:`repro.obs.trace`).
        #: Attach via :meth:`set_tracer` so the cache and Sine stages are
        #: wired too; the default None costs one branch per stage.
        self.tracer = None
        self.name = name
        self.metrics = EngineMetrics()
        self._eval_log: list[tuple[str, float, str | None, str | None]] = []
        self._last_recalibration = 0.0
        self._inflight_prefetch: set[str] = set()
        #: Semantic fingerprint -> pending fetch event (miss coalescing).
        self._inflight_fetches: dict = {}
        self._fingerprint_tokenizer = SimpleTokenizer()

    # -- observability ----------------------------------------------------------
    def set_tracer(self, tracer) -> None:
        """Attach (or detach with None) a stage tracer to the engine and,
        when the cache supports it, to the cache and Sine stages."""
        self.tracer = tracer
        set_cache_tracer = getattr(self.cache, "set_tracer", None)
        if set_cache_tracer is not None:
            set_cache_tracer(tracer)

    # -- shared internals -------------------------------------------------------
    def _is_cacheable(self, query: Query) -> bool:
        tools = self.config.cacheable_tools
        return tools is None or query.tool in tools

    def _should_admit(self, query: Query, fetch: FetchResult, now: float) -> bool:
        return self.config.admit_on_miss and self.admission.admit(query, fetch, now)

    # -- fault tolerance ---------------------------------------------------------
    def _resilience_key(self, query: Query) -> tuple[str, str]:
        """Stale-store / negative-cache identity: tool + canonical text."""
        return (query.tool, canonical_text(query.text))

    def _account_failure(self, key: tuple, exc: Exception, now: float) -> None:
        """Record one failed flight exactly once.

        The same exception object reaches every coalesced follower of a
        failed leader flight, so the marker keeps breaker windows and
        ``fetch_failures`` counting *flights*, not disappointed callers.
        """
        if getattr(exc, "_accounted", False):
            return
        exc._accounted = True  # type: ignore[attr-defined]
        self.metrics.fetch_failures += 1
        self.resilience.on_failure(key, now)

    def _record_degraded(
        self, response: EngineResponse, query: Query, now: float = 0.0
    ) -> None:
        """Degraded outcomes bypass ``record_lookup`` entirely — like PR 3's
        ``overloaded``/``deadline_exceeded``, they never touch the hit/miss
        counters, accuracy, or the total-latency reservoir, so stats stay
        comparable across fault configurations."""
        if self.trace is not None:
            self.trace.record(now, query, response)
        self.metrics.degraded_latency.add(response.latency)

    def _degrade_analytic(
        self,
        query: Query,
        lookup: CacheLookup,
        key: tuple,
        at: float,
        wasted: float = 0.0,
        refresh: bool = False,
    ) -> EngineResponse:
        """Build the degraded response for a refused or failed miss flight.

        Serves the last-known-good result as an explicit ``stale_hit`` when
        one exists (scheduling a stale-while-revalidate refresh when
        ``refresh`` is set and the breaker grants a probe), else an explicit
        ``failed`` response. ``wasted`` is the simulated time the failed
        flight burned; the caller records the response.
        """
        entry = self.resilience.stale_for(key, at + wasted)
        if entry is not None:
            self.metrics.stale_hits += 1
            response = EngineResponse(
                result=entry.fetch.result,
                latency=lookup.latency + wasted,
                lookup=lookup,
                degraded="stale_hit",
            )
            if refresh and self.resilience.allow_probe(at + wasted):
                self._background_refresh_analytic(query, key, at + wasted)
        else:
            self.metrics.failed_requests += 1
            response = EngineResponse(
                result="",
                latency=lookup.latency + wasted,
                lookup=lookup,
                degraded="failed",
            )
        return response

    def _background_refresh_analytic(
        self, query: Query, key: tuple, now: float
    ) -> None:
        """Stale-while-revalidate, analytic mode: the refresh flight runs
        inline (there is no background to run it in) but charges nothing to
        the request being served stale."""
        self.metrics.background_refreshes += 1
        tracer = self.tracer
        if tracer is None or not tracer.live:
            self._refresh_analytic(query, key, now)
            return
        with tracer.span("stale_refresh"):
            self._refresh_analytic(query, key, now)

    def _refresh_analytic(self, query: Query, key: tuple, now: float) -> None:
        try:
            fetch = self.remote.fetch_at(query, now)
        except RemoteFetchError as exc:
            self._account_failure(key, exc, now + exc.latency)
            return
        arrival = now + fetch.latency
        self.resilience.on_success(key, fetch, arrival)
        if self._should_admit(query, fetch, arrival):
            self.cache.insert(query, fetch, arrival)

    def _fingerprint(self, query: Query):
        """Semantic identity proxy for coalescing (content stems + tool)."""
        return (
            query.tool,
            frozenset(self._fingerprint_tokenizer.content_tokens(query.text)),
        )

    def _fetch_coalesced(self, sim, query: Query):
        """Fetch with thundering-herd suppression (process mode only).

        Returns ``(fetch, coalesced)``: followers wait on the leader's
        in-flight fetch and reuse its result without a remote call.
        """
        key = self._fingerprint(query)
        pending = self._inflight_fetches.get(key)
        if pending is not None:
            fetch = yield pending
            self.metrics.coalesced_misses += 1
            return fetch, True
        event = sim.event()
        self._inflight_fetches[key] = event
        try:
            fetch = yield from self.remote.fetch(sim, query)
        except BaseException as exc:
            del self._inflight_fetches[key]
            event.defused = True
            event.fail(exc)
            raise
        del self._inflight_fetches[key]
        event.succeed(fetch)
        return fetch, False

    def _bypass_response(self, fetch: FetchResult, latency: float) -> EngineResponse:
        lookup = CacheLookup(status="bypass", result=None, latency=0.0)
        return EngineResponse(
            result=fetch.result, latency=latency, lookup=lookup, fetch=fetch
        )

    def _lookup(self, query: Query, now: float) -> tuple[CacheLookup, object]:
        """Run the two-stage lookup; returns (public lookup record, element)."""
        sine_result = self.cache.lookup(query, now, ann_only=self.config.ann_only)
        return self._lookup_record(query, sine_result)

    def _lookup_record(self, query: Query, sine_result) -> tuple[CacheLookup, object]:
        """Turn a SineResult into the public lookup record + eval-log entry.

        Shared verbatim by the scalar and batch paths so latency attribution
        and accuracy accounting cannot drift between them.
        """
        judged = sine_result.judged
        check_latency = self.config.cache_check_latency(judged)
        element = sine_result.match
        if element is not None:
            truth_match = _is_correct(element.truth_key, query.fact_id)
            if sine_result.verdicts:
                accepted = sine_result.verdicts[-1]
                self._eval_log.append(
                    (query.text, accepted.score, element.truth_key, query.fact_id)
                )
            lookup = CacheLookup(
                status="hit",
                result=element.value,
                latency=check_latency,
                ann_latency=self.config.ann_latency,
                judge_latency=check_latency - self.config.ann_latency,
                candidates=len(sine_result.candidates),
                judged=judged,
                element_id=element.element_id,
                truth_match=truth_match,
            )
            if element.prefetched and element.frequency == 1:
                self.metrics.prefetch_hits += 1
        else:
            lookup = CacheLookup(
                status="miss",
                result=None,
                latency=check_latency,
                ann_latency=self.config.ann_latency,
                judge_latency=check_latency - self.config.ann_latency,
                candidates=len(sine_result.candidates),
                judged=judged,
            )
        return lookup, element

    def _record_response(
        self, response: EngineResponse, query: Query, now: float = 0.0
    ) -> None:
        if self.trace is not None:
            self.trace.record(now, query, response)
        metrics = self.metrics
        metrics.record_lookup(response.lookup.status)
        metrics.total_latency.add(response.latency)
        if response.lookup.status == "bypass":
            if response.fetch is not None:
                metrics.remote_latency.add(response.fetch.latency)
            return
        metrics.cache_check_latency.add(response.lookup.latency)
        if response.lookup.is_hit:
            metrics.hit_latency.add(response.latency)
            if response.lookup.truth_match:
                metrics.served_correct += 1
            else:
                metrics.served_incorrect += 1
        else:
            metrics.miss_latency.add(response.latency)
            metrics.served_correct += 1  # Remote fetches are authoritative.
            if response.fetch is not None:
                metrics.remote_latency.add(response.fetch.latency)
        # Keep the eviction/expiration counters in sync with the cache.
        metrics.evictions = self.cache.stats.evictions
        metrics.expirations = self.cache.stats.expirations

    def _maybe_recalibrate(self, now: float) -> None:
        if self.recalibrator is None:
            return
        if now - self._last_recalibration < self.config.recalibration_interval:
            return
        self._last_recalibration = now
        recent = self._eval_log[-200:]
        labelled = self.recalibrator.ingest(recent)
        if labelled:
            # Ground-truth fetches are real remote calls (Algorithm 1 line 4).
            for _ in range(labelled):
                self.remote.cost_meter.charge_api_call(
                    self.remote.cost_per_call, tool="ground-truth"
                )
        new_threshold = self.recalibrator.recalibrate(self.cache.sine.tau_lsm)
        if new_threshold != self.cache.sine.tau_lsm:
            self.cache.sine.tau_lsm = new_threshold
        if self.config.finetune_enabled:
            self.recalibrator.fine_tune(self.cache.sine.judger)
        self.metrics.recalibrations += 1

    # -- analytic execution ----------------------------------------------------------
    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Resolve one query analytically starting at simulated time ``now``.

        Never raises on remote failure: faults, exhausted retries, and an
        open breaker all degrade into an explicit ``stale_hit``/``failed``
        response instead of escaping the serve loop.
        """
        tracer = self.tracer
        if tracer is None or not tracer.sample():
            return self._handle_analytic(query, now)
        with tracer.request() as span:
            response = self._handle_analytic(query, now)
            # One dict literal instead of request(tool=...) + set(outcome=...):
            # two kwargs allocations per request add up at tracing's budget.
            span.attrs = {
                "tool": query.tool,
                "outcome": response.degraded or response.lookup.status,
            }
            return response

    def _handle_analytic(self, query: Query, now: float) -> EngineResponse:
        self._maybe_recalibrate(now)
        if not self._is_cacheable(query):
            return self._bypass_analytic(query, now)
        lookup, element = self._lookup(query, now)
        return self._complete_analytic(query, now, lookup, element)

    def _bypass_analytic(self, query: Query, now: float) -> EngineResponse:
        key = self._resilience_key(query)
        try:
            fetch = self.remote.fetch_at(query, now)
        except RemoteFetchError as exc:
            self._account_failure(key, exc, now + exc.latency)
            lookup = CacheLookup(status="bypass", result=None, latency=0.0)
            response = self._degrade_analytic(
                query, lookup, key, now, wasted=exc.latency
            )
            self._record_degraded(response, query, now)
            return response
        self.resilience.on_success(key, fetch, now + fetch.latency)
        response = self._bypass_response(fetch, fetch.latency)
        self._record_response(response, query, now)
        return response

    def _complete_analytic(
        self, query: Query, now: float, lookup: CacheLookup, element
    ) -> EngineResponse:
        """Everything after the lookup: remote fetch, admission, metrics,
        prefetch — shared by :meth:`handle` and :meth:`handle_batch`."""
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=lookup.latency, lookup=lookup
            )
        else:
            response = self._resolve_miss_analytic(query, now, lookup)
            if response.degraded is not None:
                self._record_degraded(response, query, now)
                return response
        self._record_response(response, query, now)
        canonical = element.key if element is not None else query.text
        self._run_prefetch_analytic(query, now, canonical)
        return response

    def _resolve_miss_analytic(
        self, query: Query, now: float, lookup: CacheLookup
    ) -> EngineResponse:
        """The guarded miss path: breaker/negative-cache gate, then a remote
        flight with transient-fault retries, degrading on refusal/failure."""
        key = self._resilience_key(query)
        start = now + lookup.latency
        verdict = self.resilience.admit(key, start)
        if verdict != "allow":
            if verdict == "negative":
                self.metrics.negative_cache_hits += 1
            else:
                self.metrics.breaker_open_rejects += 1
            return self._degrade_analytic(query, lookup, key, start, refresh=True)
        tracer = self.tracer
        try:
            if tracer is None or not tracer.live or not tracer.active():
                fetch, overhead = self.resilience.fetch_with_retries(
                    lambda t: self.remote.fetch_at(query, t), start
                )
            else:
                t0 = tracer.clock()
                fetch, overhead = self.resilience.fetch_with_retries(
                    lambda t: self.remote.fetch_at(query, t), start
                )
                tracer.record_leaf(
                    "remote_fetch", t0, {"retries": fetch.retries, "cost": fetch.cost}
                )
        except FetchFailed as exc:
            self._account_failure(key, exc, start + exc.latency)
            return self._degrade_analytic(
                query, lookup, key, start, wasted=exc.latency
            )
        arrival = start + overhead + fetch.latency
        self.resilience.on_success(key, fetch, arrival)
        if self._should_admit(query, fetch, arrival):
            if tracer is None or not tracer.live:
                self.cache.insert(query, fetch, arrival)
            else:
                with tracer.span("admit"):
                    self.cache.insert(query, fetch, arrival)
        return EngineResponse(
            result=fetch.result,
            latency=lookup.latency + overhead + fetch.latency,
            lookup=lookup,
            fetch=fetch,
        )

    def handle_batch(
        self, queries: Sequence[Query], now: float = 0.0
    ) -> list[EngineResponse]:
        """Resolve many queries at one simulated time with shared stage-1 work.

        The batch runs one ``embed_batch`` and one ANN ``search_batch`` over
        the cacheable queries, then completes each query *in input order*
        through exactly the scalar code path (judging, admission, metrics,
        prefetch), so responses and metric deltas equal N :meth:`handle`
        calls at the same ``now``.

        If the cache mutates mid-batch (a miss admits an element, a prefetch
        lands, an eviction or expiry runs), the ANN snapshot may be stale for
        the remaining queries; those fall back to the scalar lookup, keeping
        results exact. Hit-heavy batches — the steady state the paper's
        latency argument rests on — keep the fully shared fast path.
        """
        queries = list(queries)
        if not queries:
            return []
        embed_rows: dict[int, int] = {}
        texts: list[str] = []
        for position, query in enumerate(queries):
            if self._is_cacheable(query):
                embed_rows[position] = len(texts)
                texts.append(query.text)
        batch_hits: list[list] = []
        snapshot_stamp = None
        if texts:
            self.cache.remove_expired(now)
            # The cache owns the stage-1 batching (a sharded cache groups the
            # texts so each shard still gets one embed+ANN pass).
            batch_hits = self.cache.prepare_batch(texts)
            snapshot_stamp = self._mutation_stamp()
        responses: list[EngineResponse] = []
        tracer = self.tracer
        for position, query in enumerate(queries):
            row = embed_rows.get(position)
            if tracer is None or not tracer.sample():
                responses.append(
                    self._batch_one(query, now, row, batch_hits, snapshot_stamp)
                )
                continue
            with tracer.request() as span:
                response = self._batch_one(
                    query, now, row, batch_hits, snapshot_stamp
                )
                span.attrs = {
                    "tool": query.tool,
                    "batched": True,
                    "outcome": response.degraded or response.lookup.status,
                }
                responses.append(response)
        return responses

    def _batch_one(
        self,
        query: Query,
        now: float,
        row: int | None,
        batch_hits: list,
        snapshot_stamp,
    ) -> EngineResponse:
        """Complete one batched query through the scalar code path."""
        self._maybe_recalibrate(now)
        if row is None:
            return self._bypass_analytic(query, now)
        if self._mutation_stamp() != snapshot_stamp:
            sine_result = self.cache.lookup(
                query, now, ann_only=self.config.ann_only
            )
        else:
            sine_result = self.cache.lookup_prepared(
                query, batch_hits[row], now, ann_only=self.config.ann_only
            )
        lookup, element = self._lookup_record(query, sine_result)
        return self._complete_analytic(query, now, lookup, element)

    def _mutation_stamp(self) -> tuple[int, int, int]:
        """Cache-population fingerprint for batch snapshot invalidation."""
        stats = self.cache.stats
        return (stats.inserts, stats.evictions, stats.expirations)

    def _run_prefetch_analytic(
        self, query: Query, now: float, canonical: str
    ) -> None:
        if self.prefetcher is None:
            return
        for signature in self.prefetcher.observe(query, canonical):
            target = signature.to_query()
            if self.cache.contains_semantic(target):
                continue
            try:
                fetch = self.remote.fetch_at(target, now)
            except RemoteFetchError as exc:
                # Prefetches are speculative: a failed one is dropped, but
                # the breaker still learns about the backend.
                self._account_failure(
                    self._resilience_key(target), exc, now + exc.latency
                )
                continue
            self.cache.insert(
                target, fetch, now + fetch.latency, prefetched=True
            )
            self.metrics.prefetches_issued += 1

    # -- discrete-event execution --------------------------------------------------------
    def process(self, sim, query: Query) -> Generator:
        """Resolve one query on the simulator; returns an EngineResponse.

        Like :meth:`handle`, remote failures degrade instead of escaping;
        the DES path skips the engine-level retry loop (the remote's own
        throttle loop already retries on the simulator clock) and maps a
        failed flight straight to the stale/failed fallback.
        """
        start = sim.now
        self._maybe_recalibrate(sim.now)
        if not self._is_cacheable(query):
            key = self._resilience_key(query)
            try:
                fetch = yield from self.remote.fetch(sim, query)
            except RemoteFetchError as exc:
                self._account_failure(key, exc, sim.now)
                lookup = CacheLookup(status="bypass", result=None, latency=0.0)
                return self._degrade_process(sim, query, lookup, key, start)
            self.resilience.on_success(key, fetch, sim.now)
            response = self._bypass_response(fetch, sim.now - start)
            self._record_response(response, query, sim.now)
            return response
        yield sim.timeout(self.config.ann_latency)
        lookup, element = self._lookup(query, sim.now)
        if lookup.judged > 0 and not self.config.ann_only:
            yield from self.judge_executor.run(sim, lookup.judged)
        # Recompute the check latency from real elapsed time (the executor
        # may have queued behind agent work on a shared GPU).
        check_latency = sim.now - start
        lookup = CacheLookup(
            status=lookup.status,
            result=lookup.result,
            latency=check_latency,
            ann_latency=self.config.ann_latency,
            judge_latency=check_latency - self.config.ann_latency,
            candidates=lookup.candidates,
            judged=lookup.judged,
            element_id=lookup.element_id,
            truth_match=lookup.truth_match,
        )
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=sim.now - start, lookup=lookup
            )
        else:
            key = self._resilience_key(query)
            verdict = self.resilience.admit(key, sim.now)
            if verdict != "allow":
                if verdict == "negative":
                    self.metrics.negative_cache_hits += 1
                else:
                    self.metrics.breaker_open_rejects += 1
                return self._degrade_process(
                    sim, query, lookup, key, start, refresh=True
                )
            try:
                if self.config.coalesce_misses:
                    fetch, coalesced = yield from self._fetch_coalesced(sim, query)
                else:
                    fetch = yield from self.remote.fetch(sim, query)
                    coalesced = False
            except RemoteFetchError as exc:
                self._account_failure(key, exc, sim.now)
                return self._degrade_process(sim, query, lookup, key, start)
            # The coalescing leader admits; followers reuse its entry.
            if not coalesced:
                self.resilience.on_success(key, fetch, sim.now)
                if self._should_admit(query, fetch, sim.now):
                    self.cache.insert(query, fetch, sim.now)
            response = EngineResponse(
                result=fetch.result,
                latency=sim.now - start,
                lookup=lookup,
                fetch=fetch,
            )
        self._record_response(response, query, sim.now)
        canonical = element.key if element is not None else query.text
        self._spawn_prefetches(sim, query, canonical)
        return response

    def _degrade_process(
        self, sim, query: Query, lookup: CacheLookup, key: tuple, start: float,
        refresh: bool = False,
    ) -> EngineResponse:
        """DES degradation: stale/failed response plus an optional
        background refresh process (the DES twin of the analytic inline
        refresh). Records the response itself; callers just return it."""
        at = sim.now
        entry = self.resilience.stale_for(key, at)
        if entry is not None:
            self.metrics.stale_hits += 1
            response = EngineResponse(
                result=entry.fetch.result,
                latency=at - start,
                lookup=lookup,
                degraded="stale_hit",
            )
            if refresh and self.resilience.allow_probe(at):
                self.metrics.background_refreshes += 1
                sim.process(
                    self._refresh_process(sim, query, key), name="stale-refresh"
                )
        else:
            self.metrics.failed_requests += 1
            response = EngineResponse(
                result="", latency=at - start, lookup=lookup, degraded="failed"
            )
        self._record_degraded(response, query, at)
        return response

    def _refresh_process(self, sim, query: Query, key: tuple) -> Generator:
        try:
            fetch = yield from self.remote.fetch(sim, query)
        except RemoteFetchError as exc:
            self._account_failure(key, exc, sim.now)
            return
        self.resilience.on_success(key, fetch, sim.now)
        if self._should_admit(query, fetch, sim.now):
            self.cache.insert(query, fetch, sim.now)

    def _spawn_prefetches(self, sim, query: Query, canonical: str) -> None:
        if self.prefetcher is None:
            return
        for signature in self.prefetcher.observe(query, canonical):
            if signature.text in self._inflight_prefetch:
                continue
            target = signature.to_query()
            if self.cache.contains_semantic(target):
                continue
            self._inflight_prefetch.add(signature.text)
            sim.process(self._prefetch_process(sim, target), name="prefetch")
            self.metrics.prefetches_issued += 1

    def _prefetch_process(self, sim, target: Query) -> Generator:
        try:
            fetch = yield from self.remote.fetch(sim, target)
            # The world may have cached it meanwhile; keep the fresher copy out.
            if not self.cache.contains_semantic(target):
                self.cache.insert(target, fetch, sim.now, prefetched=True)
        except RemoteFetchError as exc:
            # Speculative flight: drop it, but feed the breaker.
            self._account_failure(self._resilience_key(target), exc, sim.now)
        finally:
            self._inflight_prefetch.discard(target.text)

    def __repr__(self) -> str:
        return (
            f"AsteriaEngine(name={self.name!r}, items={len(self.cache)}, "
            f"hit_rate={self.metrics.hit_rate:.3f})"
        )


class ExactEngine:
    """Agent_exact: a traditional exact-match cache at the tool boundary.

    ``lookup_latency`` models the (tiny) local KV lookup cost.
    """

    def __init__(
        self,
        cache: ExactCache,
        remote: RemoteDataService,
        lookup_latency: float = 0.002,
        name: str = "exact",
    ) -> None:
        if lookup_latency < 0:
            raise ValueError("lookup_latency must be >= 0")
        self.cache = cache
        self.remote = remote
        self.lookup_latency = lookup_latency
        self.name = name
        self.metrics = EngineMetrics()

    def _lookup(self, query: Query, now: float) -> CacheLookup:
        element = self.cache.lookup(query, now)
        if element is not None:
            return CacheLookup(
                status="hit",
                result=element.value,
                latency=self.lookup_latency,
                element_id=element.element_id,
                truth_match=_is_correct(element.truth_key, query.fact_id),
            )
        return CacheLookup(status="miss", result=None, latency=self.lookup_latency)

    def _record(self, response: EngineResponse) -> None:
        self.metrics.record_lookup(response.lookup.status)
        self.metrics.total_latency.add(response.latency)
        self.metrics.cache_check_latency.add(response.lookup.latency)
        if response.lookup.is_hit:
            self.metrics.hit_latency.add(response.latency)
            if response.lookup.truth_match:
                self.metrics.served_correct += 1
            else:
                self.metrics.served_incorrect += 1
        else:
            self.metrics.miss_latency.add(response.latency)
            self.metrics.served_correct += 1
            if response.fetch is not None:
                self.metrics.remote_latency.add(response.fetch.latency)
        self.metrics.evictions = self.cache.stats.evictions
        self.metrics.expirations = self.cache.stats.expirations

    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Resolve one query: exact-key lookup, else remote fetch."""
        lookup = self._lookup(query, now)
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=lookup.latency, lookup=lookup
            )
        else:
            fetch = self.remote.fetch_at(query, now + lookup.latency)
            self.cache.insert(query, fetch, now + lookup.latency + fetch.latency)
            response = EngineResponse(
                result=fetch.result,
                latency=lookup.latency + fetch.latency,
                lookup=lookup,
                fetch=fetch,
            )
        self._record(response)
        return response

    def process(self, sim, query: Query) -> Generator:
        """DES variant of :meth:`handle`."""
        start = sim.now
        yield sim.timeout(self.lookup_latency)
        lookup = self._lookup(query, sim.now)
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=sim.now - start, lookup=lookup
            )
        else:
            fetch = yield from self.remote.fetch(sim, query)
            self.cache.insert(query, fetch, sim.now)
            response = EngineResponse(
                result=fetch.result,
                latency=sim.now - start,
                lookup=lookup,
                fetch=fetch,
            )
        self._record(response)
        return response

    def __repr__(self) -> str:
        return f"ExactEngine(items={len(self.cache)}, hit_rate={self.metrics.hit_rate:.3f})"


class VanillaEngine:
    """Agent_vanilla: no cache — every request is a remote call."""

    def __init__(self, remote: RemoteDataService, name: str = "vanilla") -> None:
        self.remote = remote
        self.name = name
        self.metrics = EngineMetrics()

    def _record(self, response: EngineResponse) -> None:
        self.metrics.record_lookup("miss")
        self.metrics.total_latency.add(response.latency)
        self.metrics.miss_latency.add(response.latency)
        self.metrics.served_correct += 1
        if response.fetch is not None:
            self.metrics.remote_latency.add(response.fetch.latency)

    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Every request is a remote call."""
        fetch = self.remote.fetch_at(query, now)
        response = EngineResponse(
            result=fetch.result,
            latency=fetch.latency,
            lookup=CacheLookup(status="miss", result=None, latency=0.0),
            fetch=fetch,
        )
        self._record(response)
        return response

    def process(self, sim, query: Query) -> Generator:
        """DES variant of :meth:`handle`."""
        start = sim.now
        fetch = yield from self.remote.fetch(sim, query)
        response = EngineResponse(
            result=fetch.result,
            latency=sim.now - start,
            lookup=CacheLookup(status="miss", result=None, latency=0.0),
            fetch=fetch,
        )
        self._record(response)
        return response

    def __repr__(self) -> str:
        return f"VanillaEngine(calls={self.remote.calls})"
