"""Windowed metric time series — observability for live cache behaviour.

The aggregate counters in :class:`~repro.core.metrics.EngineMetrics` hide
dynamics: a trend burst's hit-rate dip, an eviction storm, a drifting
judger. A :class:`MetricsTimeline` buckets per-request observations into
fixed windows and exposes the series a dashboard (or the trend analysis)
would plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WindowStats:
    """Aggregates for one time window."""

    start: float
    requests: int = 0
    hits: int = 0
    latency_sum: float = 0.0
    api_calls: int = 0
    _latencies: list = field(default_factory=list, repr=False)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.requests if self.requests else 0.0

    @property
    def p95_latency(self) -> float:
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


class MetricsTimeline:
    """Per-window request observations.

    Parameters
    ----------
    window:
        Bucket width in simulated seconds (default 60).

    Use :meth:`observe` per request (the engine response has everything
    needed), then read :meth:`series` / :meth:`windows`.

    >>> timeline = MetricsTimeline(window=60.0)
    >>> timeline.observe(now=10.0, hit=True, latency=0.05)
    >>> timeline.observe(now=70.0, hit=False, latency=0.45, api_call=True)
    >>> [round(rate, 2) for _, rate in timeline.series("hit_rate")]
    [1.0, 0.0]
    """

    def __init__(self, window: float = 60.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window
        self._windows: dict[int, WindowStats] = {}

    def observe(
        self,
        now: float,
        hit: bool,
        latency: float,
        api_call: bool = False,
    ) -> None:
        """Record one request finishing at time ``now``."""
        if now < 0:
            raise ValueError("now must be >= 0")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        index = int(now // self.window)
        stats = self._windows.get(index)
        if stats is None:
            stats = WindowStats(start=index * self.window)
            self._windows[index] = stats
        stats.requests += 1
        if hit:
            stats.hits += 1
        stats.latency_sum += latency
        stats._latencies.append(latency)
        if api_call:
            stats.api_calls += 1

    def observe_response(self, now: float, response) -> None:
        """Convenience: record an :class:`EngineResponse` at time ``now``."""
        self.observe(
            now=now,
            hit=response.served_from_cache,
            latency=response.latency,
            api_call=response.fetch is not None,
        )

    def windows(self) -> list[WindowStats]:
        """All non-empty windows in time order."""
        return [self._windows[i] for i in sorted(self._windows)]

    def series(self, metric: str) -> list[tuple[float, float]]:
        """(window_start, value) pairs for ``metric``.

        Metrics: ``hit_rate``, ``mean_latency``, ``p95_latency``,
        ``requests``, ``api_calls``.
        """
        valid = ("hit_rate", "mean_latency", "p95_latency", "requests", "api_calls")
        if metric not in valid:
            raise ValueError(f"unknown metric {metric!r}; expected one of {valid}")
        return [
            (stats.start, float(getattr(stats, metric)))
            for stats in self.windows()
        ]

    def sparkline(self, metric: str = "hit_rate", width: int = 8) -> str:
        """A terminal sparkline of ``metric`` (one block char per window)."""
        blocks = " ▁▂▃▄▅▆▇█"
        values = [value for _, value in self.series(metric)]
        if not values:
            return ""
        top = max(values) or 1.0
        return "".join(
            blocks[min(len(blocks) - 1, int(value / top * (len(blocks) - 1)))]
            for value in values
        )

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        return f"MetricsTimeline(window={self.window}, windows={len(self)})"
