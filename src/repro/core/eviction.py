"""Eviction policies, including the paper's LCFU (Algorithm 2).

A policy assigns every semantic element a retention score at eviction time;
the cache removes the lowest-scoring elements first. Scoring-based policies
keep the cache implementation policy-agnostic and make the Table 6
comparison (LCFU vs LRU vs LFU) a one-line swap.

LCFU — *Least Cost-efficient and Frequently Used* — is the paper's composite:

    score = log(freq + 1) * log(cost * 1e3 + 1) * log(lat + 1) * log(stat + 1)
            ----------------------------------------------------------------
                                    size_tokens

Expired or zero-size elements score 0 (evicted first); the ``cost * 1e3``
shift keeps sub-dollar fees from going negative under the logarithm, exactly
as the paper motivates.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

from repro.core.element import SemanticElement


@runtime_checkable
class EvictionPolicy(Protocol):
    """Retention scoring: higher scores survive longer."""

    name: str

    def score(self, element: SemanticElement, now: float) -> float:
        """Retention value of ``element`` at time ``now``."""
        ...


class LCFUPolicy:
    """The paper's cost-efficiency-aware policy (Algorithm 2)."""

    name = "lcfu"

    def score(self, element: SemanticElement, now: float) -> float:
        """Algorithm 2's value_score (0 for expired/empty elements)."""
        if element.size_tokens == 0 or element.ttl_remaining(now) <= 0:
            return 0.0
        value = (
            math.log(element.frequency + 1.0)
            * math.log(element.retrieval_cost * 1e3 + 1.0)
            * math.log(element.retrieval_latency + 1.0)
            * math.log(element.staticity + 1.0)
        )
        return value / element.size_tokens


class LRUPolicy:
    """Least recently used: score is the last access time."""

    name = "lru"

    def score(self, element: SemanticElement, now: float) -> float:
        """Recency of last access."""
        return element.last_accessed_at


class LFUPolicy:
    """Least frequently used, with recency as a tiebreaker.

    The recency term is scaled so it never outweighs one frequency step
    (assuming experiment horizons < ~11 days of simulated time).
    """

    name = "lfu"

    def score(self, element: SemanticElement, now: float) -> float:
        """Hit count, with sub-unit recency tiebreak."""
        return element.frequency + element.last_accessed_at * 1e-6


class FIFOPolicy:
    """First in, first out: score is the creation time."""

    name = "fifo"

    def score(self, element: SemanticElement, now: float) -> float:
        """Creation time (oldest evicted first)."""
        return element.created_at


class SizeAwareLFUPolicy:
    """GreedyDual-style frequency-per-token policy (an extra ablation point)."""

    name = "size-lfu"

    def score(self, element: SemanticElement, now: float) -> float:
        """Frequency per token."""
        if element.size_tokens == 0:
            return 0.0
        return (element.frequency + 1.0) / element.size_tokens


_POLICIES = {
    policy.name: policy
    for policy in (
        LCFUPolicy,
        LRUPolicy,
        LFUPolicy,
        FIFOPolicy,
        SizeAwareLFUPolicy,
    )
}


def policy_by_name(name: str) -> EvictionPolicy:
    """Instantiate a policy from its registry name (``lcfu``, ``lru``, ...)."""
    policy_cls = _POLICIES.get(name)
    if policy_cls is None:
        raise ValueError(f"unknown eviction policy {name!r}; known: {sorted(_POLICIES)}")
    return policy_cls()
