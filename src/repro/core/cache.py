"""Cache semantics atop Sine (§4.3): hit definition, admission, eviction, TTL.

:class:`AsteriaCache` turns the Sine retrieval pipeline into a real cache:

* **Semantic-aware hit** — a lookup is a hit only after the full two-stage
  validation; a hit increments the element's frequency.
* **Admission** — misses (and prefetches) become new semantic elements with
  metadata captured from the actual remote fetch.
* **Eviction** — TTL purge first (Algorithm 2 line 6), then lowest retention
  score under the configured policy until usage fits capacity.

:class:`ExactCache` is the traditional exact-match baseline (Agent_exact)
with the same capacity/TTL machinery but a plain text-keyed dict.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ann.base import SearchHit, search_batch_fallback
from repro.core.element import SemanticElement
from repro.core.eviction import EvictionPolicy, LCFUPolicy, LRUPolicy
from repro.core.sine import Sine, SineResult
from repro.core.types import FetchResult, Query
from repro.judger.staticity import StaticityScorer
from repro.store.backend import CacheBackend, InProcessBackend


def canonical_text(text: str) -> str:
    """Normalisation used for exact-match and shard-routing keys
    (case/whitespace-insensitive)."""
    return " ".join(text.lower().split())


#: Backwards-compatible private alias (pre-sharding name).
_canonical = canonical_text


@dataclass
class CacheStats:
    """Book-keeping counters shared by both cache flavours."""

    inserts: int = 0
    evictions: int = 0
    expirations: int = 0
    rejected_duplicates: int = 0
    prefetch_inserts: int = 0


class AsteriaCache:
    """Semantic knowledge cache over a Sine index.

    Parameters
    ----------
    sine:
        The retrieval pipeline (owns the embedder, ANN index, and judger).
    capacity_items:
        Maximum live elements; None = unbounded.
    default_ttl:
        Seconds of life per element; None = immortal entries.
    policy:
        Eviction policy (default :class:`LCFUPolicy`).
    staticity_scorer:
        Scores new elements' staticity; a default noisy scorer is created
        when omitted.
    staticity_ttl_scaling:
        Scale each element's TTL by ``staticity / 10`` (a stable fact lives
        the full TTL, ephemeral content expires early). Off by default —
        the paper uses a single user-defined TTL; this is the natural
        extension its aging discussion suggests.
    arena:
        Optional contiguous embedding storage (see :mod:`repro.core.arena`).
        When set, admission allocates one arena row per element
        (``element.embedding`` becomes a view of it, ``element.arena_slot``
        the handle), removal recycles the row, and the Sine index scores
        the same rows in place via ``add_slot``. Share one arena between
        the cache and its index; the float32 tier replays per-element
        decisions exactly. Shorthand for
        ``backend=InProcessBackend(arena=arena)``.
    backend:
        Element storage (see :mod:`repro.store.backend`). Defaults to an
        :class:`~repro.store.backend.InProcessBackend` holding ``arena``;
        every mutation (admit, touch, delete-with-reason) routes through
        it, which is how the journal and replication layers observe the
        cache without touching its decision logic.
    """

    def __init__(
        self,
        sine: Sine,
        capacity_items: int | None = None,
        default_ttl: float | None = 3600.0,
        policy: EvictionPolicy | None = None,
        staticity_scorer: StaticityScorer | None = None,
        staticity_ttl_scaling: bool = False,
        arena=None,
        backend: CacheBackend | None = None,
    ) -> None:
        if capacity_items is not None and capacity_items < 1:
            raise ValueError("capacity_items must be >= 1 or None")
        if default_ttl is not None and default_ttl <= 0:
            raise ValueError("default_ttl must be > 0 or None")
        if backend is not None and arena is not None:
            raise ValueError("pass the arena to the backend, not the cache")
        self.sine = sine
        self.capacity_items = capacity_items
        self.default_ttl = default_ttl
        self.policy = policy if policy is not None else LCFUPolicy()
        self.staticity_scorer = staticity_scorer or StaticityScorer()
        self.staticity_ttl_scaling = staticity_ttl_scaling
        self._backend: CacheBackend = (
            backend if backend is not None else InProcessBackend(arena=arena)
        )
        self._next_id = 1
        self.stats = CacheStats()
        #: Lazy min-heap of (retention score, element_id, version) used by
        #: capacity eviction. Entries whose version no longer matches
        #: ``_score_version`` are garbage and skipped on pop, so score
        #: updates (hits, TTL changes) are O(log n) pushes instead of
        #: full-population rescans.
        self._heap: list[tuple[float, int, int]] = []
        self._score_version: dict[int, int] = {}
        #: Optional stage tracer (see :mod:`repro.obs.trace`); cascades to
        #: the Sine pipeline via :meth:`set_tracer`.
        self.tracer = None

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with None) a stage tracer to the cache and its
        Sine pipeline."""
        self.tracer = tracer
        self.sine.tracer = tracer

    # -- identity / storage ----------------------------------------------------
    def _take_id(self) -> int:
        """Allocate the next element id (monotonic; restorable, unlike the
        ``itertools.count`` it replaced — warm restarts must continue the
        same id sequence so heap tie-breaks replay exactly)."""
        element_id = self._next_id
        self._next_id += 1
        return element_id

    def reserve_id(self, element_id: int) -> None:
        """Ensure future :meth:`_take_id` calls never re-issue ``element_id``
        (restore paths admit elements with their historical ids)."""
        if element_id >= self._next_id:
            self._next_id = element_id + 1

    @property
    def backend(self) -> CacheBackend:
        """The element storage backend (see :mod:`repro.store.backend`)."""
        return self._backend

    def wrap_backend(self, wrapper) -> CacheBackend:
        """Swap in ``wrapper(current_backend)`` as the active backend.

        The wrapper must share the inner backend's element mapping (see
        :class:`~repro.store.backend.WrappingBackend`), so wrapping is safe
        mid-life: the journal and replication layers attach this way after
        a restore completes.
        """
        self._backend = wrapper(self._backend)
        return self._backend

    # -- introspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._backend.elements)

    def __bool__(self) -> bool:
        """A cache is a service, not a container: always truthy.

        Without this, an *empty* cache is falsy via ``__len__`` and
        ``shared_cache or build_new()`` silently un-shares it.
        """
        return True

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._backend.elements

    @property
    def elements(self):
        """Live elements keyed by id (treat as read-only)."""
        return self._backend.elements

    @property
    def arena(self):
        """The backend's embedding arena (None for plain dict storage)."""
        return self._backend.arena

    def usage(self) -> int:
        """Current occupancy in elements (the capacity unit)."""
        return len(self._backend.elements)

    # -- lookup -----------------------------------------------------------------
    def lookup(self, query: Query, now: float, ann_only: bool = False) -> SineResult:
        """Two-stage lookup; a validated match is a *hit* and bumps frequency.

        Expired elements are purged lazily before retrieval so a dead entry
        can never be served.
        """
        self.remove_expired(now)
        result = self.sine.retrieve(query, self._backend.elements, ann_only=ann_only)
        self._note_hit(result, now)
        return result

    def lookup_prepared(
        self,
        query: Query,
        raw_hits: list[SearchHit],
        now: float,
        ann_only: bool = False,
    ) -> SineResult:
        """Lookup over pre-computed ANN hits (no expiry purge — the batch
        caller runs :meth:`remove_expired` once for the whole batch).

        Hit bookkeeping (frequency, prefetch confirmation) is identical to
        :meth:`lookup`.
        """
        result = self.sine.retrieve_prepared(
            query, raw_hits, self._backend.elements, ann_only=ann_only
        )
        self._note_hit(result, now)
        return result

    def lookup_batch(
        self, queries: Sequence[Query], now: float, ann_only: bool = False
    ) -> list[SineResult]:
        """Batched lookups sharing one embed-batch and one ANN-batch call.

        Equivalent to N :meth:`lookup` calls at the same ``now``: the expiry
        purge runs once (repeat purges at one timestamp are no-ops), retrieval
        reads no per-element hit state, and hit bookkeeping replays in query
        order.
        """
        self.remove_expired(now)
        results = self.sine.lookup_batch(
            queries, self._backend.elements, ann_only=ann_only
        )
        for result in results:
            self._note_hit(result, now)
        return results

    def prepare_batch(self, texts: Sequence[str]) -> list[list[SearchHit]]:
        """Stage-1 work for a batch: one embed-batch + one ANN-batch call.

        Returns raw (unthresholded) ANN hits per text, suitable for
        :meth:`lookup_prepared`. Factored out of the engine's batch path so a
        sharded cache can supply its own per-shard grouping.
        """
        if not texts:
            return []
        tracer = self.tracer
        if tracer is not None and not (tracer.live and tracer.active()):
            tracer = None
        if tracer is None:
            embeddings = self.sine.embedder.embed_batch(texts)
        else:
            t0 = tracer.clock()
            embeddings = self.sine.embedder.embed_batch(texts)
            tracer.record_leaf("embed", t0, {"batch": len(texts)})
        index = self.sine.index
        search_batch = getattr(index, "search_batch", None)
        k = self.sine.max_candidates
        if tracer is None:
            if search_batch is not None:
                return search_batch(embeddings, k)
            return search_batch_fallback(index, embeddings, k)
        t0 = tracer.clock()
        if search_batch is not None:
            hits = search_batch(embeddings, k)
        else:
            hits = search_batch_fallback(index, embeddings, k)
        tracer.record_leaf("ann_search", t0, {"batch": len(texts)})
        return hits

    def _note_hit(self, result: SineResult, now: float) -> None:
        if result.match is None:
            return
        result.match.record_hit(now)
        if result.match.prefetched and result.match.frequency == 1:
            # First validated use of a speculative entry.
            result.match.metadata["prefetch_confirmed_at"] = now
        self._backend.touch(result.match)
        self._heap_update(result.match, now)

    def contains_semantic(self, query: Query) -> bool:
        """Stage-1-only membership probe (used by the prefetcher's guard)."""
        return bool(self.sine.candidates_for(query))

    # -- admission ---------------------------------------------------------------
    def insert(
        self,
        query: Query,
        fetch: FetchResult,
        now: float,
        prefetched: bool = False,
        ttl: float | None = None,
    ) -> SemanticElement:
        """Store a fetched result as a new semantic element.

        ``ttl`` overrides the cache default for this element. Returns the
        new element (after making room under the capacity limit).
        """
        element_id = self._take_id()
        staticity = self.staticity_scorer.score(query.text, query.staticity)
        effective_ttl = ttl if ttl is not None else self.default_ttl
        if effective_ttl is not None and self.staticity_ttl_scaling:
            effective_ttl *= staticity / 10.0
        expires_at = now + effective_ttl if effective_ttl is not None else float("inf")
        embedding = self.sine.embedder.embed(query.text)
        embedding, arena_slot = self._backend.bind_embedding(embedding)
        element = SemanticElement(
            element_id=element_id,
            key=query.text,
            value=fetch.result,
            embedding=embedding,
            tool=query.tool,
            truth_key=query.fact_id,
            staticity=staticity,
            frequency=0,
            retrieval_latency=fetch.service_latency,
            retrieval_cost=fetch.cost,
            size_tokens=max(1, fetch.size_tokens),
            created_at=now,
            last_accessed_at=now,
            expires_at=expires_at,
            prefetched=prefetched,
            arena_slot=arena_slot,
        )
        self._backend.put(element)
        self.sine.insert(element)
        self.stats.inserts += 1
        if prefetched:
            self.stats.prefetch_inserts += 1
        if self.capacity_items is not None:
            self._score_version[element_id] = 0
            heapq.heappush(
                self._heap, (self.policy.score(element, now), element_id, 0)
            )
        self._enforce_capacity(now, protect=element.element_id)
        return element

    def admit_restored(
        self,
        record: dict,
        element_id: int | None = None,
        shift: float = 0.0,
        now: float | None = None,
        drop_expired: bool = True,
    ) -> SemanticElement | None:
        """Re-admit one persisted element record (snapshot or journal replay).

        Unlike :meth:`insert` this preserves the element's historical
        identity and state: the stored ``element_id`` (heap tie-breaks
        replay exactly), frequency, timestamps (shifted by ``shift``), and
        staticity are taken from ``record`` rather than recomputed, no
        stats counters move, and capacity is *not* enforced — a journal's
        own evict records reproduce the membership trajectory, so replay
        must not race them. Keys are re-embedded through the cache's own
        Sine (snapshots stay model-agnostic). Returns the element, or None
        when it was skipped (already present, or expired and
        ``drop_expired``).
        """
        eid = element_id if element_id is not None else record.get("element_id")
        if eid is None:
            eid = self._take_id()
        elif eid in self._backend.elements:
            return None
        expires_at = record["expires_at"]
        expires_at = math.inf if expires_at is None else expires_at + shift
        if now is None:
            now = record["last_accessed_at"] + shift
        if drop_expired and expires_at <= now:
            self.reserve_id(eid)
            return None
        embedding = self.sine.embedder.embed(record["key"])
        embedding, arena_slot = self._backend.bind_embedding(embedding)
        element = SemanticElement(
            element_id=eid,
            key=record["key"],
            value=record["value"],
            embedding=embedding,
            tool=record["tool"],
            truth_key=record["truth_key"],
            staticity=record["staticity"],
            frequency=record["frequency"],
            retrieval_latency=record["retrieval_latency"],
            retrieval_cost=record["retrieval_cost"],
            size_tokens=record["size_tokens"],
            created_at=record["created_at"] + shift,
            last_accessed_at=record["last_accessed_at"] + shift,
            expires_at=expires_at,
            prefetched=record["prefetched"],
            arena_slot=arena_slot,
            metadata=dict(record.get("metadata") or {}),
        )
        self._backend.put(element)
        self.sine.insert(element)
        self.reserve_id(eid)
        if self.capacity_items is not None:
            self._score_version[eid] = 0
            heapq.heappush(self._heap, (self.policy.score(element, now), eid, 0))
        return element

    def remove(self, element_id: int, reason: str = "delete") -> SemanticElement:
        """Forcibly remove one element (eviction, invalidation).

        ``reason`` ("delete"/"evict"/"expire"/"invalidate") is passed to the
        backend so decorator backends (journal, replication) can tell the
        mutation kinds apart.
        """
        element = self._backend.elements.get(element_id)
        if element is None:
            raise KeyError(f"element {element_id} not in cache")
        # Index first, arena second: HNSW tombstones snapshot external rows
        # on remove, so the slot must still hold the vector at that point.
        # The backend releases the arena slot inside delete().
        self.sine.remove(element_id)
        self._backend.delete(element_id, reason=reason)
        # Heap entries for this id become garbage (version map is the truth).
        self._score_version.pop(element_id, None)
        return element

    def compact_arena(self) -> dict[int, int]:
        """Compact the embedding arena and rewire every live handle.

        Moves live rows to the front of the arena matrix, then propagates
        the resulting ``{old_slot: new_slot}`` remap to the index (via its
        ``remap_slots``) and to each element's slot handle and embedding
        view. Rows are overwritten in place during compaction, so stale
        views must not survive — callers only ever see refreshed ones.
        Returns the remap (empty when nothing moved or no arena is set).
        """
        if self.arena is None:
            return {}
        remap = self.arena.compact()
        if not remap:
            return {}
        remap_slots = getattr(self.sine.index, "remap_slots", None)
        if remap_slots is not None:
            remap_slots(remap)
        for element in self._backend.elements.values():
            slot = element.arena_slot
            if slot is None:
                continue
            slot = remap.get(slot, slot)
            element.arena_slot = slot
            element.embedding = self.arena.get(slot)
        return remap

    def invalidate(self, predicate) -> int:
        """Remove every element for which ``predicate(element)`` is true.

        The operational escape hatch: purge a tool's entries after a backend
        migration, drop a topic after a breaking news correction, etc.
        Returns the number of elements removed.
        """
        victims = [
            element_id
            for element_id, element in self._backend.elements.items()
            if predicate(element)
        ]
        for element_id in victims:
            self.remove(element_id, reason="invalidate")
        return len(victims)

    # -- lifecycle ----------------------------------------------------------------
    def remove_expired(self, now: float) -> int:
        """TTL purge (Algorithm 2 runs this before capacity eviction)."""
        expired = [
            element_id
            for element_id, element in self._backend.elements.items()
            if element.is_expired(now)
        ]
        for element_id in expired:
            self.remove(element_id, reason="expire")
        self.stats.expirations += len(expired)
        return len(expired)

    # -- capacity eviction (lazy min-heap) -----------------------------------
    def _heap_update(self, element: SemanticElement, now: float) -> None:
        """Re-score ``element`` after a state change (hit, TTL refresh).

        The old heap entry is invalidated by bumping the element's version;
        a fresh ``(score, id, version)`` entry is pushed. O(log n), vs the
        O(n) full rescan the heap replaces.
        """
        if self.capacity_items is None:
            return
        version = self._score_version.get(element.element_id)
        if version is None:
            return
        version += 1
        self._score_version[element.element_id] = version
        heapq.heappush(
            self._heap,
            (self.policy.score(element, now), element.element_id, version),
        )

    def _rebuild_heap(self, now: float) -> None:
        """Re-score the whole population (restores after out-of-band changes:
        persistence restore, policy swap, direct element mutation)."""
        elements = self._backend.elements
        self._score_version = {element_id: 0 for element_id in elements}
        self._heap = [
            (self.policy.score(element, now), element_id, 0)
            for element_id, element in elements.items()
        ]
        heapq.heapify(self._heap)

    def _enforce_capacity(self, now: float, protect: int | None = None) -> None:
        if self.capacity_items is None or self.usage() <= self.capacity_items:
            return
        tracer = self.tracer
        if tracer is None or not tracer.live or not tracer.active():
            self._evict_to_capacity(now, protect)
            return
        before = self.stats.evictions
        t0 = tracer.clock()
        self._evict_to_capacity(now, protect)
        tracer.record_leaf("evict", t0, {"evicted": self.stats.evictions - before})

    def _evict_to_capacity(self, now: float, protect: int | None) -> None:
        self.remove_expired(now)
        if self.usage() <= self.capacity_items:
            return
        # Re-sync if elements arrived outside insert() (persistence restore)
        # or the heap has accumulated too much garbage.
        population = len(self._backend.elements)
        if len(self._score_version) != population or len(self._heap) > 2 * population + 64:
            self._rebuild_heap(now)
        rebuilt = False
        deferred: list[tuple[float, int, int]] = []
        while self.usage() > self.capacity_items:
            if not self._heap:
                if rebuilt:
                    break
                self._rebuild_heap(now)
                rebuilt = True
                deferred.clear()
                continue
            score, element_id, version = heapq.heappop(self._heap)
            if self._score_version.get(element_id) != version:
                continue  # garbage from an invalidated score
            element = self._backend.elements.get(element_id)
            if element is None:
                continue
            fresh = self.policy.score(element, now)
            if fresh != score and not rebuilt:
                # A score changed without notice (policy swapped, element
                # mutated directly): rebuild once so pop order matches a
                # full rescan exactly, then resume.
                self._rebuild_heap(now)
                rebuilt = True
                deferred.clear()
                continue
            if element_id == protect:
                deferred.append((score, element_id, version))
                continue
            self.remove(element_id, reason="evict")
            self.stats.evictions += 1
        for entry in deferred:
            heapq.heappush(self._heap, entry)

    def __repr__(self) -> str:
        return (
            f"AsteriaCache(items={len(self)}, capacity={self.capacity_items}, "
            f"policy={self.policy.name})"
        )


class ExactCache:
    """Traditional exact-match cache (the Agent_exact baseline).

    Keys are canonicalised query text; a hit requires the same text (so any
    paraphrase misses — the failure mode §6.2 attributes to exact caching).
    Reuses :class:`SemanticElement` for storage so metrics and eviction
    policies are directly comparable; the default policy is LRU, the classic
    choice for KV caches.
    """

    def __init__(
        self,
        capacity_items: int | None = None,
        default_ttl: float | None = 3600.0,
        policy: EvictionPolicy | None = None,
        staticity_scorer: StaticityScorer | None = None,
    ) -> None:
        if capacity_items is not None and capacity_items < 1:
            raise ValueError("capacity_items must be >= 1 or None")
        self.capacity_items = capacity_items
        self.default_ttl = default_ttl
        self.policy = policy if policy is not None else LRUPolicy()
        self.staticity_scorer = staticity_scorer or StaticityScorer()
        self._by_key: dict[str, SemanticElement] = {}
        self._ids = itertools.count(1)
        self.stats = CacheStats()
        self._empty_embedding = np.zeros(1, dtype=np.float32)

    def __len__(self) -> int:
        return len(self._by_key)

    def __bool__(self) -> bool:
        """Always truthy; see :meth:`AsteriaCache.__bool__`."""
        return True

    def usage(self) -> int:
        """Current occupancy in entries."""
        return len(self._by_key)

    def lookup(self, query: Query, now: float) -> SemanticElement | None:
        """Exact-match lookup; hits bump frequency."""
        key = _canonical(query.text)
        element = self._by_key.get(key)
        if element is None:
            return None
        if element.is_expired(now):
            del self._by_key[key]
            self.stats.expirations += 1
            return None
        element.record_hit(now)
        return element

    def insert(
        self,
        query: Query,
        fetch: FetchResult,
        now: float,
        ttl: float | None = None,
    ) -> SemanticElement:
        """Store a fetched result under its canonical text key."""
        key = _canonical(query.text)
        if key in self._by_key:
            # Refresh in place (same exact query fetched twice, e.g. expiry race).
            self.stats.rejected_duplicates += 1
            del self._by_key[key]
        effective_ttl = ttl if ttl is not None else self.default_ttl
        expires_at = now + effective_ttl if effective_ttl is not None else float("inf")
        element = SemanticElement(
            element_id=next(self._ids),
            key=query.text,
            value=fetch.result,
            embedding=self._empty_embedding,
            tool=query.tool,
            truth_key=query.fact_id,
            staticity=self.staticity_scorer.score(query.text, query.staticity),
            retrieval_latency=fetch.service_latency,
            retrieval_cost=fetch.cost,
            size_tokens=max(1, fetch.size_tokens),
            created_at=now,
            last_accessed_at=now,
            expires_at=expires_at,
        )
        self._by_key[key] = element
        self.stats.inserts += 1
        self._enforce_capacity(now, protect=key)
        return element

    def _enforce_capacity(self, now: float, protect: str | None = None) -> None:
        if self.capacity_items is None or len(self._by_key) <= self.capacity_items:
            return
        expired_keys = [
            key for key, element in self._by_key.items() if element.is_expired(now)
        ]
        for key in expired_keys:
            del self._by_key[key]
        self.stats.expirations += len(expired_keys)
        if len(self._by_key) <= self.capacity_items:
            return
        scored = sorted(
            (self.policy.score(element, now), key)
            for key, element in self._by_key.items()
            if key != protect
        )
        for _, key in scored:
            if len(self._by_key) <= self.capacity_items:
                break
            del self._by_key[key]
            self.stats.evictions += 1

    def __repr__(self) -> str:
        return f"ExactCache(items={len(self)}, capacity={self.capacity_items})"
