"""Two-tier semantic caching: per-node L1 + shared regional L2.

The paper deploys one cache per serving cluster. At fleet scale the natural
next step (cf. its multi-cloud related work — Macaron, EVCache) is a
hierarchy: every agent node keeps a small private L1, and nodes in a region
share a larger L2 so one node's remote fetch warms the whole fleet.

:class:`TieredEngine` implements the classic lookup path with semantic
matching at both levels:

1. L1 two-stage lookup (local, the usual ~0.05 s);
2. on L1 miss, L2 two-stage lookup (one intra-metro RTT away);
3. on L2 hit, the element is *promoted* into L1;
4. on full miss, the remote fetch populates both tiers.

Each node gets its own engine view (`node()`) over the shared L2, so
experiments can measure how fleet hit rates scale with node count.
"""

from __future__ import annotations

from typing import Generator

from repro.core.cache import AsteriaCache
from repro.core.config import AsteriaConfig
from repro.core.engine import EngineResponse, _is_correct
from repro.core.metrics import EngineMetrics
from repro.core.types import CacheLookup, FetchResult, Query
from repro.network.remote import RemoteDataService


class TieredEngine:
    """One node's engine over a private L1 and a shared L2.

    Parameters
    ----------
    l1 / l2:
        The node-private and region-shared semantic caches. Several
        TieredEngine instances may (and should) share one ``l2``.
    remote:
        The cross-region data service (shared across nodes).
    config:
        Latency constants and thresholds; applied to both tiers' Sine.
    l2_latency:
        One-way cost of consulting the shared tier (default 5 ms — an
        intra-metro hop, per the topology's ``local-dc`` link).
    name:
        Node label for metrics.
    """

    def __init__(
        self,
        l1: AsteriaCache,
        l2: AsteriaCache,
        remote: RemoteDataService,
        config: AsteriaConfig | None = None,
        l2_latency: float = 0.005,
        name: str = "tiered",
    ) -> None:
        if l2_latency < 0:
            raise ValueError("l2_latency must be >= 0")
        self.l1 = l1
        self.l2 = l2
        self.remote = remote
        self.config = config if config is not None else AsteriaConfig()
        for cache in (self.l1, self.l2):
            cache.sine.tau_sim = self.config.tau_sim
            cache.sine.tau_lsm = self.config.tau_lsm
            cache.sine.max_candidates = self.config.max_candidates
        self.l2_latency = l2_latency
        self.name = name
        self.metrics = EngineMetrics()
        #: Hits served by each tier (L1 vs promoted-from-L2).
        self.l1_hits = 0
        self.l2_hits = 0

    # -- shared pieces ------------------------------------------------------
    def _tier_lookup(self, cache: AsteriaCache, query: Query, now: float):
        sine_result = cache.lookup(query, now, ann_only=self.config.ann_only)
        return sine_result.match, sine_result.judged

    def _promote(self, element, now: float) -> None:
        """Copy an L2 element into L1 (keeps the L2 copy)."""
        fetch = FetchResult(
            result=element.value,
            latency=0.0,
            service_latency=element.retrieval_latency,
            cost=element.retrieval_cost,
            size_tokens=element.size_tokens,
        )
        query = Query(
            text=element.key,
            tool=element.tool,
            fact_id=element.truth_key,
            staticity=element.staticity,
        )
        self.l1.insert(query, fetch, now)

    def _record(self, response: EngineResponse) -> None:
        self.metrics.record_lookup(response.lookup.status)
        self.metrics.total_latency.add(response.latency)
        self.metrics.cache_check_latency.add(response.lookup.latency)
        if response.lookup.is_hit:
            self.metrics.hit_latency.add(response.latency)
            if response.lookup.truth_match:
                self.metrics.served_correct += 1
            else:
                self.metrics.served_incorrect += 1
        else:
            self.metrics.miss_latency.add(response.latency)
            self.metrics.served_correct += 1
            if response.fetch is not None:
                self.metrics.remote_latency.add(response.fetch.latency)

    def _hit_response(self, element, check_latency: float, query: Query) -> EngineResponse:
        lookup = CacheLookup(
            status="hit",
            result=element.value,
            latency=check_latency,
            element_id=element.element_id,
            truth_match=_is_correct(element.truth_key, query.fact_id),
        )
        return EngineResponse(
            result=element.value, latency=check_latency, lookup=lookup
        )

    # -- analytic execution --------------------------------------------------------
    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Resolve one query through L1 -> L2 -> remote."""
        l1_match, l1_judged = self._tier_lookup(self.l1, query, now)
        check = self.config.cache_check_latency(l1_judged)
        if l1_match is not None:
            self.l1_hits += 1
            response = self._hit_response(l1_match, check, query)
            self._record(response)
            return response
        l2_match, l2_judged = self._tier_lookup(
            self.l2, query, now + check + self.l2_latency
        )
        check += self.l2_latency + self.config.cache_check_latency(l2_judged)
        if l2_match is not None:
            self.l2_hits += 1
            self._promote(l2_match, now + check)
            response = self._hit_response(l2_match, check, query)
            self._record(response)
            return response
        fetch = self.remote.fetch_at(query, now + check)
        arrival = now + check + fetch.latency
        if self.config.admit_on_miss:
            self.l1.insert(query, fetch, arrival)
            if not self.l2.contains_semantic(query):
                self.l2.insert(query, fetch, arrival)
        lookup = CacheLookup(status="miss", result=None, latency=check)
        response = EngineResponse(
            result=fetch.result, latency=check + fetch.latency,
            lookup=lookup, fetch=fetch,
        )
        self._record(response)
        return response

    # -- discrete-event execution ------------------------------------------------------
    def process(self, sim, query: Query) -> Generator:
        """DES variant of :meth:`handle`."""
        start = sim.now
        l1_match, l1_judged = self._tier_lookup(self.l1, query, sim.now)
        yield sim.timeout(self.config.cache_check_latency(l1_judged))
        if l1_match is not None:
            self.l1_hits += 1
            response = self._hit_response(l1_match, sim.now - start, query)
            self._record(response)
            return response
        yield sim.timeout(self.l2_latency)
        l2_match, l2_judged = self._tier_lookup(self.l2, query, sim.now)
        yield sim.timeout(self.config.cache_check_latency(l2_judged))
        if l2_match is not None:
            self.l2_hits += 1
            self._promote(l2_match, sim.now)
            response = self._hit_response(l2_match, sim.now - start, query)
            self._record(response)
            return response
        fetch = yield from self.remote.fetch(sim, query)
        if self.config.admit_on_miss:
            self.l1.insert(query, fetch, sim.now)
            if not self.l2.contains_semantic(query):
                self.l2.insert(query, fetch, sim.now)
        lookup = CacheLookup(status="miss", result=None, latency=sim.now - start)
        response = EngineResponse(
            result=fetch.result, latency=sim.now - start, lookup=lookup,
            fetch=fetch,
        )
        self._record(response)
        return response

    def __repr__(self) -> str:
        return (
            f"TieredEngine({self.name!r}, l1={len(self.l1)}, l2={len(self.l2)}, "
            f"l1_hits={self.l1_hits}, l2_hits={self.l2_hits})"
        )
