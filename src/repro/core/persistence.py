"""Cache persistence: snapshot, save, and warm-restore.

A production knowledge cache survives process restarts — losing it means a
full cold-start storm against rate-limited remote APIs. A
:class:`CacheSnapshot` captures every semantic element's key/value and
metadata as plain JSON (embeddings are *not* stored: keys are re-embedded on
restore, which keeps snapshots model-agnostic — upgrade the embedder and the
old snapshot still loads).

>>> snapshot = CacheSnapshot.of(cache)
>>> snapshot.save("cache.json")
>>> restored = CacheSnapshot.load("cache.json")
>>> restored.restore_into(fresh_cache, now=clock.now)
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cache import AsteriaCache
from repro.core.element import SemanticElement

#: Snapshot format version; bump on breaking layout changes.
SNAPSHOT_VERSION = 1


def _element_record(element: SemanticElement) -> dict:
    return {
        "key": element.key,
        "value": element.value,
        "tool": element.tool,
        "truth_key": element.truth_key,
        "staticity": element.staticity,
        "frequency": element.frequency,
        "retrieval_latency": element.retrieval_latency,
        "retrieval_cost": element.retrieval_cost,
        "size_tokens": element.size_tokens,
        "created_at": element.created_at,
        "last_accessed_at": element.last_accessed_at,
        # JSON has no Infinity in strict mode; None encodes "never expires".
        "expires_at": None if math.isinf(element.expires_at) else element.expires_at,
        "prefetched": element.prefetched,
    }


@dataclass
class CacheSnapshot:
    """A serialisable image of one cache's contents."""

    taken_at: float
    records: list[dict] = field(default_factory=list)
    version: int = SNAPSHOT_VERSION

    @classmethod
    def of(cls, cache: AsteriaCache, now: float | None = None) -> "CacheSnapshot":
        """Capture ``cache``'s live elements.

        ``now`` (defaulting to the newest access time) is stored so restores
        can age entries relative to the snapshot moment.
        """
        elements = list(cache.elements.values())
        if now is None:
            now = max(
                (element.last_accessed_at for element in elements), default=0.0
            )
        return cls(
            taken_at=now,
            records=[_element_record(element) for element in elements],
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- (de)serialisation -------------------------------------------------
    def to_json(self) -> str:
        """Strict-JSON encoding of the snapshot."""
        return json.dumps(
            {
                "version": self.version,
                "taken_at": self.taken_at,
                "records": self.records,
            },
            allow_nan=False,
        )

    @classmethod
    def from_json(cls, payload: str) -> "CacheSnapshot":
        """Parse a snapshot; rejects unknown versions."""
        data = json.loads(payload)
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        return cls(
            taken_at=float(data["taken_at"]),
            records=list(data["records"]),
            version=version,
        )

    def save(self, path: "str | Path") -> None:
        """Write the snapshot to ``path``."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: "str | Path") -> "CacheSnapshot":
        """Read a snapshot from ``path``."""
        return cls.from_json(Path(path).read_text())

    # -- restore -------------------------------------------------------------
    def restore_into(
        self,
        cache: AsteriaCache,
        now: float = 0.0,
        drop_expired: bool = True,
    ) -> int:
        """Re-populate ``cache`` from this snapshot; returns elements restored.

        Keys are re-embedded through the cache's own Sine, timestamps are
        shifted so ages are preserved relative to ``now`` (an entry 100 s
        old at snapshot time is 100 s old after restore), and entries whose
        TTL already lapsed are skipped when ``drop_expired``.
        """
        if len(cache):
            raise ValueError("restore_into requires an empty cache")
        shift = now - self.taken_at
        restored = 0
        for record in self.records:
            expires_at = record["expires_at"]
            expires_at = (
                float("inf") if expires_at is None else expires_at + shift
            )
            if drop_expired and expires_at <= now:
                continue
            element = SemanticElement(
                element_id=next(cache._ids),
                key=record["key"],
                value=record["value"],
                embedding=cache.sine.embedder.embed(record["key"]),
                tool=record["tool"],
                truth_key=record["truth_key"],
                staticity=record["staticity"],
                frequency=record["frequency"],
                retrieval_latency=record["retrieval_latency"],
                retrieval_cost=record["retrieval_cost"],
                size_tokens=record["size_tokens"],
                created_at=record["created_at"] + shift,
                last_accessed_at=record["last_accessed_at"] + shift,
                expires_at=expires_at,
                prefetched=record["prefetched"],
            )
            cache.elements[element.element_id] = element
            cache.sine.insert(element)
            restored += 1
        cache._enforce_capacity(now)
        return restored

    def __repr__(self) -> str:
        return f"CacheSnapshot(elements={len(self)}, taken_at={self.taken_at})"
