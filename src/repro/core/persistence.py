"""Cache persistence: snapshot, save, and warm-restore.

A production knowledge cache survives process restarts — losing it means a
full cold-start storm against rate-limited remote APIs. A
:class:`CacheSnapshot` captures every semantic element's key/value and
metadata as plain JSON (embeddings are *not* stored: keys are re-embedded on
restore, which keeps snapshots model-agnostic — upgrade the embedder and the
old snapshot still loads).

Format history:

* **v1** — element records without identity; restore re-issued ids.
* **v2** — records carry ``element_id``, the snapshot carries the cache's
  ``next_id`` counter and its :class:`~repro.core.cache.CacheStats`, so a
  restored cache continues the *exact* id sequence and stat history of the
  original — the property the warm-restart equivalence tests rely on, and
  the property the journal needs (its records reference element ids).

v1 payloads still load: records are migrated by assigning sequential ids in
snapshot order. Unknown versions raise :class:`SnapshotVersionError` with a
message naming the supported range instead of a raw ``KeyError`` from a
missing field.

>>> snapshot = CacheSnapshot.of(cache)
>>> snapshot.save("cache.json")
>>> restored = CacheSnapshot.load("cache.json")
>>> restored.restore_into(fresh_cache, now=clock.now)
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cache import AsteriaCache, CacheStats
from repro.core.element import SemanticElement

#: Snapshot format version; bump on breaking layout changes.
SNAPSHOT_VERSION = 2

#: Versions :meth:`CacheSnapshot.from_json` can load (older ones migrate).
SUPPORTED_VERSIONS = (1, 2)


class SnapshotVersionError(ValueError):
    """A snapshot payload declares a version this build cannot load."""

    def __init__(self, version) -> None:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        super().__init__(
            f"unsupported snapshot version {version!r}: this build reads "
            f"versions {{{supported}}} (current {SNAPSHOT_VERSION}); "
            f"re-snapshot with a matching build or migrate the payload"
        )
        self.version = version


def element_record(element: SemanticElement) -> dict:
    """The JSON-safe persisted form of one element (shared by snapshots,
    the journal, and the replication diff schema)."""
    return {
        "element_id": element.element_id,
        "key": element.key,
        "value": element.value,
        "tool": element.tool,
        "truth_key": element.truth_key,
        "staticity": element.staticity,
        "frequency": element.frequency,
        "retrieval_latency": element.retrieval_latency,
        "retrieval_cost": element.retrieval_cost,
        "size_tokens": element.size_tokens,
        "created_at": element.created_at,
        "last_accessed_at": element.last_accessed_at,
        # JSON has no Infinity in strict mode; None encodes "never expires".
        "expires_at": None if math.isinf(element.expires_at) else element.expires_at,
        "prefetched": element.prefetched,
        "metadata": dict(element.metadata),
    }


#: Backwards-compatible private alias (pre-store name).
_element_record = element_record


def _stats_record(stats: CacheStats) -> dict:
    return {
        "inserts": stats.inserts,
        "evictions": stats.evictions,
        "expirations": stats.expirations,
        "rejected_duplicates": stats.rejected_duplicates,
        "prefetch_inserts": stats.prefetch_inserts,
    }


@dataclass
class CacheSnapshot:
    """A serialisable image of one cache's contents."""

    taken_at: float
    records: list[dict] = field(default_factory=list)
    version: int = SNAPSHOT_VERSION
    next_id: int | None = None
    stats: dict | None = None

    @classmethod
    def of(cls, cache: AsteriaCache, now: float | None = None) -> "CacheSnapshot":
        """Capture ``cache``'s live elements.

        ``now`` (defaulting to the newest access time) is stored so restores
        can age entries relative to the snapshot moment.
        """
        elements = list(cache.elements.values())
        if now is None:
            now = max(
                (element.last_accessed_at for element in elements), default=0.0
            )
        return cls(
            taken_at=now,
            records=[element_record(element) for element in elements],
            next_id=cache._next_id,
            stats=_stats_record(cache.stats),
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- (de)serialisation -------------------------------------------------
    def to_json(self) -> str:
        """Strict-JSON encoding of the snapshot."""
        return json.dumps(
            {
                "version": self.version,
                "taken_at": self.taken_at,
                "next_id": self.next_id,
                "stats": self.stats,
                "records": self.records,
            },
            allow_nan=False,
        )

    @classmethod
    def from_json(cls, payload: str) -> "CacheSnapshot":
        """Parse a snapshot; migrates v1 payloads, rejects unknown versions."""
        data = json.loads(payload)
        version = data.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise SnapshotVersionError(version)
        records = list(data["records"])
        next_id = data.get("next_id")
        stats = data.get("stats")
        if version == 1:
            # v1 records carried no identity: assign sequential ids in
            # snapshot order, exactly what the old restore path produced.
            for position, record in enumerate(records, start=1):
                record.setdefault("element_id", position)
            next_id = len(records) + 1
        return cls(
            taken_at=float(data["taken_at"]),
            records=records,
            version=SNAPSHOT_VERSION,
            next_id=next_id,
            stats=stats,
        )

    def save(self, path: "str | Path") -> None:
        """Write the snapshot to ``path`` atomically (write-tmp-rename, so a
        crash mid-save can never leave a torn snapshot)."""
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(self.to_json())
        tmp.replace(target)

    @classmethod
    def load(cls, path: "str | Path") -> "CacheSnapshot":
        """Read a snapshot from ``path``."""
        return cls.from_json(Path(path).read_text())

    # -- restore -------------------------------------------------------------
    def restore_into(
        self,
        cache: AsteriaCache,
        now: float | None = 0.0,
        drop_expired: bool = True,
        restore_stats: bool = False,
    ) -> int:
        """Re-populate ``cache`` from this snapshot; returns elements restored.

        Keys are re-embedded through the cache's own Sine, timestamps are
        shifted so ages are preserved relative to ``now`` (an entry 100 s
        old at snapshot time is 100 s old after restore), and entries whose
        TTL already lapsed are skipped when ``drop_expired``. Pass
        ``now=None`` (or ``taken_at``) to restore on the *same* clock with
        zero shift — the warm-restart mode, where a restarted process
        continues the original timeline. Element ids are preserved, and the
        cache's id counter resumes past the snapshot's ``next_id`` so heap
        tie-breaks and journal references replay exactly.
        ``restore_stats`` additionally restores the cumulative
        :class:`CacheStats` counters captured at snapshot time.
        """
        if len(cache):
            raise ValueError("restore_into requires an empty cache")
        if now is None:
            now = self.taken_at
        shift = now - self.taken_at
        restored = 0
        for record in self.records:
            element = cache.admit_restored(
                record, shift=shift, now=now, drop_expired=drop_expired
            )
            if element is not None:
                restored += 1
        if self.next_id is not None:
            cache.reserve_id(self.next_id - 1)
        if restore_stats and self.stats is not None:
            for name, value in self.stats.items():
                setattr(cache.stats, name, value)
        cache._enforce_capacity(now)
        return restored

    def __repr__(self) -> str:
        return f"CacheSnapshot(elements={len(self)}, taken_at={self.taken_at})"
