"""Asteria's core: semantic elements, Sine retrieval, cache, and engines.

This package is the paper's primary contribution. The pieces compose
bottom-up:

``SemanticElement`` (§4.1)
    The cache unit — query/result plus performance-aware metadata.
``Sine`` (§4.2)
    Two-stage retrieval: ANN coarse filter + LLM judger validation.
``AsteriaCache`` (§4.3)
    Cache semantics atop Sine: semantic-aware hits, LCFU eviction, TTL.
``MarkovPrefetcher`` (§4.3, Algorithm 3)
    History-based predictive prefetching.
``ThresholdRecalibrator`` (§4.2, Algorithm 1)
    Periodic offline τ_lsm recalibration against a target precision.
``AsteriaEngine`` / ``ExactEngine`` / ``VanillaEngine`` (§3.3, §6.1)
    The full system and the paper's two baselines behind one interface.

See :func:`repro.factory.build_asteria_engine` for one-call construction.
"""

from repro.core.admission import (
    AdmissionPolicy,
    AlwaysAdmit,
    DoorkeeperAdmission,
    SizeThresholdAdmission,
)
from repro.core.cache import AsteriaCache, CacheStats, ExactCache, canonical_text
from repro.core.config import (
    AsteriaConfig,
    CacheConfig,
    DEFAULT_TAU_LSM,
    DEFAULT_TAU_SIM,
)
from repro.core.element import SemanticElement
from repro.core.engine import (
    AsteriaEngine,
    EngineResponse,
    ExactEngine,
    JudgeExecutor,
    KnowledgeEngine,
    VanillaEngine,
)
from repro.core.eviction import (
    EvictionPolicy,
    FIFOPolicy,
    LCFUPolicy,
    LFUPolicy,
    LRUPolicy,
    SizeAwareLFUPolicy,
    policy_by_name,
)
from repro.core.metrics import EngineMetrics, LatencyStats
from repro.core.persistence import CacheSnapshot
from repro.core.prefetch import MarkovModel, MarkovPrefetcher, QuerySignature
from repro.core.recalibration import (
    EvalRecord,
    ThresholdRecalibrator,
    find_threshold,
    precision_curve,
)
from repro.core.resilience import (
    CircuitBreaker,
    FetchFailed,
    NegativeCache,
    ResilienceManager,
    StaleEntry,
    StaleStore,
)
from repro.core.sharding import ShardedAsteriaCache, shard_index_for
from repro.core.sine import Sine, SineResult
from repro.core.tiered import TieredEngine
from repro.core.tracelog import TraceLog
from repro.core.timeline import MetricsTimeline, WindowStats
from repro.core.types import CacheLookup, FetchResult, Query, estimate_tokens

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "AsteriaCache",
    "AsteriaConfig",
    "AsteriaEngine",
    "CacheConfig",
    "CacheLookup",
    "CacheSnapshot",
    "CacheStats",
    "CircuitBreaker",
    "DEFAULT_TAU_LSM",
    "DEFAULT_TAU_SIM",
    "DoorkeeperAdmission",
    "EngineMetrics",
    "EngineResponse",
    "EvalRecord",
    "EvictionPolicy",
    "ExactCache",
    "ExactEngine",
    "FIFOPolicy",
    "FetchFailed",
    "FetchResult",
    "JudgeExecutor",
    "KnowledgeEngine",
    "LCFUPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "LatencyStats",
    "MarkovModel",
    "MarkovPrefetcher",
    "MetricsTimeline",
    "NegativeCache",
    "Query",
    "QuerySignature",
    "ResilienceManager",
    "SemanticElement",
    "ShardedAsteriaCache",
    "Sine",
    "SineResult",
    "StaleEntry",
    "StaleStore",
    "SizeAwareLFUPolicy",
    "SizeThresholdAdmission",
    "ThresholdRecalibrator",
    "TieredEngine",
    "TraceLog",
    "VanillaEngine",
    "WindowStats",
    "canonical_text",
    "estimate_tokens",
    "shard_index_for",
    "find_threshold",
    "policy_by_name",
    "precision_curve",
]
