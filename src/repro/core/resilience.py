"""Fault tolerance for the miss path: breaker, negative cache, stale store.

The cache's miss path talks to a wide-area service that can throttle, error,
time out, or black out entirely (exercised by
:class:`~repro.network.faults.FaultInjector`). This module holds the policy
pieces every engine consults before and after a remote flight, composed into
one :class:`ResilienceManager`:

* :class:`CircuitBreaker` — classic closed → open → half-open state machine
  over a sliding window of flight outcomes. While open, miss fetches are
  refused up-front (no wasted round-trips hammering a dead backend); after
  ``open_seconds`` a limited number of probe flights decide between closing
  and re-opening.
* :class:`NegativeCache` — per-key memory of recent failures, so a hot key
  whose backend shard is broken does not burn a retry storm on every request
  while the rest of the keyspace stays healthy.
* :class:`StaleStore` — last-known-good results keyed by semantic identity,
  *outside* the cache's TTL machinery (the cache purges expired elements on
  lookup, so a TTL-expired answer survives only here). When the breaker is
  open or retries are exhausted, engines serve from this store as an explicit
  ``stale_hit`` and schedule a background refresh (stale-while-revalidate),
  mirroring the last-known-good fallback in ``mozilla/remote-settings``.
* Retry unification — transient faults are retried on the existing
  :class:`~repro.network.remote.RetryPolicy` shape (a short, bounded budget
  by default: degraded mode should fail over to stale data quickly, not
  inherit the throttling loop's effectively unbounded patience).

Everything here is deterministic given its seed and never touches the
hit/miss counters; degraded outcomes are accounted separately by the engines
(see :class:`~repro.core.metrics.EngineMetrics`).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from threading import Lock
from typing import Callable

import numpy as np

from repro.core.types import FetchResult
from repro.network.faults import InjectedFault
from repro.network.remote import RemoteFetchError, RetryPolicy


class FetchFailed(RemoteFetchError):
    """A miss flight failed for good (retries exhausted or non-retryable).

    ``latency`` is the total simulated time the flight burned (failed
    attempts plus backoff waits); ``cause`` is the final underlying error.
    """

    def __init__(
        self, message: str, latency: float = 0.0, cause: Exception | None = None
    ) -> None:
        super().__init__(message, latency=latency)
        self.cause = cause


class CircuitBreaker:
    """Closed → open → half-open breaker over a sliding outcome window.

    * **closed** — flights flow; outcomes land in a ``window``-sized deque.
      When at least ``min_samples`` outcomes are present and the failure
      fraction reaches ``failure_threshold``, the breaker opens.
    * **open** — every :meth:`allow` is refused until ``open_seconds`` have
      passed since the trip.
    * **half-open** — up to ``half_open_probes`` flights are granted. Any
      failure re-opens immediately; ``half_open_probes`` successes close the
      breaker and clear the window.

    Every state change is appended to :attr:`transitions` as
    ``(timestamp, from_state, to_state)`` (bounded, oldest dropped) and
    forwarded to the optional :attr:`on_transition` listener — the hook the
    observability bridge uses to mirror breaker state into a gauge and a
    transition-event counter.

    Not thread-safe on its own — :class:`ResilienceManager` serialises access.
    """

    #: Breaker states in gauge-encoding order (closed=0, open=1, half_open=2).
    STATES = ("closed", "open", "half_open")

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_samples: int = 8,
        open_seconds: float = 30.0,
        half_open_probes: int = 2,
        max_transitions: int = 1024,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if window < 1 or min_samples < 1 or min_samples > window:
            raise ValueError(
                f"need 1 <= min_samples <= window, got {min_samples}/{window}"
            )
        if open_seconds <= 0 or half_open_probes < 1:
            raise ValueError("open_seconds must be > 0 and half_open_probes >= 1")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_samples = min_samples
        self.open_seconds = open_seconds
        self.half_open_probes = half_open_probes
        if max_transitions < 1:
            raise ValueError("max_transitions must be >= 1")
        self.state = "closed"
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._probes_granted = 0
        self._probe_successes = 0
        # -- statistics --
        self.opens = 0
        self.closes = 0
        self.probes = 0
        #: ``(now, from_state, to_state)`` history, oldest dropped.
        self.transitions: deque[tuple[float, str, str]] = deque(
            maxlen=max_transitions
        )
        #: Optional ``fn(now, from_state, to_state)`` called on every change
        #: (under the owning manager's lock — keep it cheap and reentrant-free).
        self.on_transition = None

    def _set_state(self, now: float, new_state: str) -> None:
        old_state = self.state
        self.state = new_state
        self.transitions.append((now, old_state, new_state))
        if self.on_transition is not None:
            self.on_transition(now, old_state, new_state)

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def allow(self, now: float) -> bool:
        """May a miss flight start at ``now``? Half-open grants count probes."""
        if self.state == "open":
            if now - self._opened_at < self.open_seconds:
                return False
            self._set_state(now, "half_open")
            self._probes_granted = 0
            self._probe_successes = 0
        if self.state == "half_open":
            if self._probes_granted >= self.half_open_probes:
                return False
            self._probes_granted += 1
            self.probes += 1
        return True

    def record_success(self, now: float) -> None:
        """Note one successful flight (half-open successes close the breaker)."""
        if self.state == "half_open":
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._set_state(now, "closed")
                self._outcomes.clear()
                self.closes += 1
        elif self.state == "closed":
            self._outcomes.append(True)

    def record_failure(self, now: float) -> None:
        """Note one failed flight (may trip the breaker open)."""
        if self.state == "half_open":
            self._trip(now)
        elif self.state == "closed":
            self._outcomes.append(False)
            if (
                len(self._outcomes) >= self.min_samples
                and self.failure_rate >= self.failure_threshold
            ):
                self._trip(now)
        # Stragglers finishing after a trip are ignored while open.

    def _trip(self, now: float) -> None:
        self._set_state(now, "open")
        self._opened_at = now
        self._outcomes.clear()
        self.opens += 1

    def reset(self, now: float) -> None:
        """Force-close with a clean window, skipping half-open probing.

        For out-of-band recovery confirmation: the proc-tier supervisor
        calls this after a shard worker has respawned and completed its
        hello handshake — the probe protocol exists to *discover* recovery,
        and here recovery is already a fact.
        """
        if self.state != "closed":
            self._set_state(now, "closed")
            self.closes += 1
        self._outcomes.clear()
        self._probes_granted = 0
        self._probe_successes = 0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failure_rate={self.failure_rate:.2f}, opens={self.opens})"
        )


class NegativeCache:
    """Remembers keys whose fetches recently failed, for ``ttl`` seconds."""

    def __init__(self, ttl: float = 5.0, capacity: int = 1024) -> None:
        if ttl <= 0 or capacity < 1:
            raise ValueError("ttl must be > 0 and capacity >= 1")
        self.ttl = ttl
        self.capacity = capacity
        self._entries: OrderedDict[object, float] = OrderedDict()

    def put(self, key: object, now: float) -> None:
        """Mark ``key`` failed as of ``now`` (evicting oldest past capacity)."""
        self._entries[key] = now + self.ttl
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def check(self, key: object, now: float) -> bool:
        """True when ``key`` failed recently (entry present and unexpired)."""
        expiry = self._entries.get(key)
        if expiry is None:
            return False
        if now >= expiry:
            del self._entries[key]
            return False
        return True

    def discard(self, key: object) -> None:
        """Forget ``key`` (a fetch for it just succeeded)."""
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True, slots=True)
class StaleEntry:
    """A last-known-good result and when it was stored."""

    fetch: FetchResult
    stored_at: float


class StaleStore:
    """LRU store of last-known-good fetch results, immune to cache TTLs.

    ``max_age=None`` means any previously seen answer is servable under
    degradation (availability over freshness — the caller marks it
    ``stale_hit`` so downstream consumers can tell).
    """

    def __init__(self, capacity: int = 4096, max_age: float | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_age is not None and max_age <= 0:
            raise ValueError(f"max_age must be > 0, got {max_age}")
        self.capacity = capacity
        self.max_age = max_age
        self._entries: OrderedDict[object, StaleEntry] = OrderedDict()

    def put(self, key: object, fetch: FetchResult, now: float) -> None:
        """Store ``fetch`` as the last-known-good result for ``key``."""
        self._entries[key] = StaleEntry(fetch=fetch, stored_at=now)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def get(self, key: object, now: float) -> StaleEntry | None:
        """The last-known-good entry for ``key``, or None (absent/too old)."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self.max_age is not None and now - entry.stored_at > self.max_age:
            del self._entries[key]
            return None
        self._entries.move_to_end(key)
        return entry

    def __len__(self) -> int:
        return len(self._entries)


class ResilienceManager:
    """One backend's fault-tolerance state, shared by every serving stack.

    Thread-safe: the engines' worker threads and the asyncio loop both funnel
    through the internal lock. The success path (breaker window append, stale
    store write) draws no randomness and bumps no engine metrics, so a
    manager attached to a fault-free run leaves its stats byte-identical.

    Parameters
    ----------
    retry_policy:
        Backoff shape for transient-fault retries. Defaults to a short
        bounded budget (two retries, 50 ms base) — degraded mode should fail
        over to stale data quickly rather than inherit the throttling loop's
        patience.
    breaker:
        The circuit breaker; a default one is built when omitted.
    negative_ttl:
        Seconds a failed key stays negative-cached.
    stale_serve:
        When False, no last-known-good results are stored or served —
        degraded requests surface as explicit failures (the chaos
        benchmark's ablation arm).
    stale_capacity / stale_max_age:
        Sizing/freshness bound of the stale store.
    seed:
        Seed for backoff jitter draws (unused with the default zero jitter).
    """

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        negative_ttl: float = 5.0,
        stale_serve: bool = True,
        stale_capacity: int = 4096,
        stale_max_age: float | None = None,
        seed: int = 0,
    ) -> None:
        self.retry_policy = retry_policy or RetryPolicy(
            base=0.05, multiplier=2.0, max_delay=1.0, max_retries=2, jitter=0.0
        )
        self.breaker = breaker or CircuitBreaker()
        self.negative = NegativeCache(ttl=negative_ttl)
        self.stale_serve = stale_serve
        self.stale = StaleStore(capacity=stale_capacity, max_age=stale_max_age)
        self.rng = np.random.default_rng(seed)
        self._lock = Lock()

    # -- admission ----------------------------------------------------------
    def admit(self, key: object, now: float) -> str:
        """Gate one miss flight: ``"allow"``, ``"negative"``, or ``"open"``."""
        with self._lock:
            if self.negative.check(key, now):
                return "negative"
            if not self.breaker.allow(now):
                return "open"
            return "allow"

    def allow_probe(self, now: float) -> bool:
        """May a background refresh flight start at ``now``?

        Refreshes ride the same breaker budget as foreground probes, so an
        open breaker also silences revalidation traffic.
        """
        with self._lock:
            return self.breaker.allow(now)

    # -- outcome accounting -------------------------------------------------
    def on_success(self, key: object, fetch: FetchResult, now: float) -> None:
        """Account a successful flight: breaker success, un-negative the key,
        and bank the result as last-known-good."""
        with self._lock:
            self.breaker.record_success(now)
            self.negative.discard(key)
            if self.stale_serve:
                self.stale.put(key, fetch, now)

    def on_failure(self, key: object, now: float) -> None:
        """Account a failed flight: breaker failure + negative-cache the key."""
        with self._lock:
            self.breaker.record_failure(now)
            self.negative.put(key, now)

    def stale_for(self, key: object, now: float) -> StaleEntry | None:
        """The servable last-known-good entry for ``key`` (None when stale
        serving is disabled or nothing fresh enough is banked)."""
        if not self.stale_serve:
            return None
        with self._lock:
            return self.stale.get(key, now)

    def next_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based); deterministic when
        the policy's jitter is zero."""
        with self._lock:
            return self.retry_policy.delay(attempt, self.rng)

    # -- analytic retry loop ------------------------------------------------
    def fetch_with_retries(
        self, fetch_fn: Callable[[float], FetchResult], start: float
    ) -> tuple[FetchResult, float]:
        """Run one flight with transient-fault retries (analytic mode).

        ``fetch_fn(now)`` performs the fetch as of simulated time ``now``.
        Injected transient faults are retried up to the policy's budget with
        backoff; anything else (e.g. ``RateLimitExceeded``) fails
        immediately. Returns ``(fetch, overhead)`` where ``overhead`` is the
        simulated time burned on failed attempts and backoff before the
        successful one; raises :class:`FetchFailed` carrying the total wasted
        time otherwise.
        """
        elapsed = 0.0
        attempt = 0
        while True:
            try:
                return fetch_fn(start + elapsed), elapsed
            except InjectedFault as exc:
                elapsed += exc.latency
                if attempt >= self.retry_policy.max_retries:
                    raise FetchFailed(
                        f"retries exhausted after {attempt + 1} attempts: {exc}",
                        latency=elapsed,
                        cause=exc,
                    ) from exc
                elapsed += self.next_delay(attempt)
                attempt += 1
            except RemoteFetchError as exc:
                raise FetchFailed(
                    f"non-retryable fetch failure: {exc}",
                    latency=elapsed + exc.latency,
                    cause=exc,
                ) from exc

    def __repr__(self) -> str:
        return (
            f"ResilienceManager(breaker={self.breaker!r}, "
            f"negative={len(self.negative)}, stale={len(self.stale)}, "
            f"stale_serve={self.stale_serve})"
        )
