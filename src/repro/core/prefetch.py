"""History-based predictive prefetching (§4.3, Algorithm 3).

A first-order Markov model learns query-to-query transitions from the stream
of resolved lookups. After each query, successors whose transition
probability exceeds a confidence threshold — and which the cache does not
already cover — are fetched asynchronously and inserted as zero-frequency
semantic elements. Unused speculative entries score minimally under LCFU and
are evicted first, giving the paper's "low-risk, self-correcting" behaviour.

States are :class:`QuerySignature` values — the canonical query text plus
the annotations needed to re-issue it. A production system would persist the
same information in its access log.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.types import Query


@dataclass(frozen=True)
class QuerySignature:
    """The replayable identity of a past query (a Markov state)."""

    text: str
    tool: str = "search"
    fact_id: str | None = None
    staticity: int | None = None
    cost: float | None = None

    @classmethod
    def of(cls, query: Query) -> "QuerySignature":
        """The signature of a live query."""
        return cls(
            text=query.text,
            tool=query.tool,
            fact_id=query.fact_id,
            staticity=query.staticity,
            cost=query.cost,
        )

    def to_query(self) -> Query:
        """Reconstruct an issuable :class:`Query`."""
        return Query(
            text=self.text,
            tool=self.tool,
            fact_id=self.fact_id,
            staticity=self.staticity,
            cost=self.cost,
        )


class MarkovModel:
    """First-order transition counts over query signatures.

    ``predict`` returns successors ordered by probability. ``min_support``
    transitions must be observed from a state before predictions are made
    for it, preventing one-off coincidences from triggering fetches.
    """

    def __init__(self, min_support: int = 2) -> None:
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self.min_support = min_support
        self._transitions: dict[QuerySignature, Counter] = defaultdict(Counter)
        self._outgoing_totals: Counter = Counter()

    def record(self, previous: QuerySignature, current: QuerySignature) -> None:
        """Observe the transition ``previous -> current``."""
        if previous == current:
            return  # Self-loops carry no prefetch signal.
        self._transitions[previous][current] += 1
        self._outgoing_totals[previous] += 1

    def predict(self, state: QuerySignature) -> list[tuple[QuerySignature, float]]:
        """Successors of ``state`` with probabilities, most likely first."""
        total = self._outgoing_totals.get(state, 0)
        if total < self.min_support:
            return []
        successors = self._transitions.get(state)
        if not successors:
            return []
        ranked = sorted(
            successors.items(), key=lambda item: (-item[1], item[0].text)
        )
        return [(signature, count / total) for signature, count in ranked]

    @property
    def states(self) -> int:
        """Number of states with at least one outgoing transition."""
        return len(self._transitions)

    def __repr__(self) -> str:
        return f"MarkovModel(states={self.states}, min_support={self.min_support})"


class MarkovPrefetcher:
    """Algorithm 3: observe the resolved-query stream, emit prefetch targets.

    Parameters
    ----------
    confidence:
        Minimum transition probability to trigger a prefetch (θ).
    max_per_event:
        At most this many prefetches per observed query.
    model:
        Optionally share a pre-trained :class:`MarkovModel`.
    """

    def __init__(
        self,
        confidence: float = 0.4,
        max_per_event: int = 2,
        model: MarkovModel | None = None,
    ) -> None:
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {confidence}")
        if max_per_event < 1:
            raise ValueError("max_per_event must be >= 1")
        self.confidence = confidence
        self.max_per_event = max_per_event
        self.model = model if model is not None else MarkovModel()
        #: Last observed state per session (None = the default session).
        self._previous: dict[object, QuerySignature] = {}
        self.observed = 0

    def observe(
        self, query: Query, canonical_text: str | None = None
    ) -> list[QuerySignature]:
        """Record ``query`` in the history and return prefetch candidates.

        ``canonical_text`` collapses paraphrases onto one state: the engine
        passes the matched semantic element's key on a hit, so "who painted
        the mona lisa" and "mona lisa painter" share a Markov state (raw
        surface forms almost never repeat, which would starve the model).

        Transitions are recorded *per session* — the query's ``session``
        metadata, typically the agent task id — because under concurrency
        the globally interleaved stream has no adjacency structure; the
        learned model itself is shared across sessions.

        Candidates are successors with probability >= ``confidence``; the
        caller is responsible for the not-already-cached guard and the
        asynchronous fetch (the engine does both).
        """
        signature = QuerySignature(
            text=canonical_text if canonical_text is not None else query.text,
            tool=query.tool,
            fact_id=query.fact_id,
            staticity=query.staticity,
            cost=query.cost,
        )
        session = query.metadata.get("session")
        previous = self._previous.get(session)
        if previous is not None:
            self.model.record(previous, signature)
        self._previous[session] = signature
        self.observed += 1
        predictions = self.model.predict(signature)
        return [
            successor
            for successor, probability in predictions[: self.max_per_event]
            if probability >= self.confidence
        ]

    def reset_history(self, session: object = None) -> None:
        """Forget one session's previous query (e.g. at a session boundary)."""
        self._previous.pop(session, None)

    def __repr__(self) -> str:
        return (
            f"MarkovPrefetcher(confidence={self.confidence}, "
            f"observed={self.observed}, states={self.model.states})"
        )
