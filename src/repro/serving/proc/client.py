"""Socket client for the serve front door, plus the open-loop driver the CI
smoke job uses to push real requests through a real socket.

:class:`ProcClient` pipelines requests over one connection (request ids map
replies back to waiter futures — same scheme as the shard protocol), so an
open-loop generator can keep hundreds of requests in flight without opening
hundreds of sockets.
"""

from __future__ import annotations

import asyncio
from collections import Counter

from repro.core.types import Query
from repro.serving.proc import wire
from repro.serving.proc.protocol import get_codec, read_frame, write_frame


class ProcClientError(RuntimeError):
    """The server reported a failure for one request, or the link dropped."""


class ProcTransportError(ProcClientError):
    """The link itself failed (closed writer, reset, or lost mid-flight).

    Distinct from a server-reported op failure: the request never got an
    answer, so it is safe to retry on a fresh connection."""


class ProcClient:
    """One pipelined connection to a :class:`~repro.serving.proc.server.ProcServer`.

    A client built via :meth:`connect` remembers its endpoint and retries a
    call **once** over a fresh connection when the link drops mid-flight
    (front-door restart, idle-timeout close) — server-reported failures are
    never retried. ``reconnects`` counts successful re-dials.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec_name: str = "pickle",
        tracer=None,
    ) -> None:
        self.codec = get_codec(codec_name)
        #: Optional client-side tracer: sampled ``serve`` calls open a local
        #: root span and ship its identity with the request, so the server's
        #: router/worker spans land in this client's trace.
        self.tracer = tracer
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.reconnects = 0
        self._remote: "tuple[str, int] | None" = None
        self._connect_timeout = 10.0
        self._reconnect_lock = asyncio.Lock()

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        codec: str = "pickle",
        timeout: float = 10.0,
        tracer=None,
    ) -> "ProcClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        client = cls(reader, writer, codec_name=codec, tracer=tracer)
        client._remote = (host, port)
        client._connect_timeout = timeout
        return client

    async def call(self, op: str, body=None):
        try:
            return await self._call_once(op, body)
        except (ProcTransportError, BrokenPipeError, ConnectionResetError) as exc:
            if self._remote is None:
                raise  # endpoint unknown (built from raw streams): no retry
            try:
                await self._reconnect()
            except (OSError, asyncio.TimeoutError) as redial:
                raise ProcTransportError(f"reconnect failed ({redial})") from exc
            return await self._call_once(op, body)

    async def _call_once(self, op: str, body=None):
        # A finished read loop means nobody will ever resolve the waiter,
        # even if the writer still accepts bytes (half-closed socket).
        if self._writer.is_closing() or self._reader_task.done():
            raise ProcTransportError("connection closed")
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        write_frame(self._writer, self.codec.dumps([request_id, op, body]))
        return await future

    async def _reconnect(self) -> None:
        """Re-dial the remembered endpoint (serialized: concurrent callers
        that lost the same connection share one new socket)."""
        async with self._reconnect_lock:
            if not self._writer.is_closing() and not self._reader_task.done():
                return  # a sibling waiter already reconnected
            host, port = self._remote
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001 - old server may already be gone
                pass
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self._connect_timeout
            )
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop())
            self.reconnects += 1

    async def serve(
        self, query: Query, now: float = 0.0, deadline: float | None = None
    ) -> dict:
        """One request; returns the server's outcome payload (status/result/
        latency/wall_latency). With a tracer attached, sampled calls open a
        client-side root span and ship ``[trace_id, span_id]`` so the
        server's spans join this trace; untraced calls send the exact
        pre-tracing three-element body."""
        body = [wire.query_to_wire(query), now, deadline]
        tracer = self.tracer
        if tracer is None or not tracer.sample():
            return await self.call("serve", body)
        with tracer.request("client_request", tool=query.tool) as span:
            body.append([span.trace_id, span.span_id])
            outcome = await self.call("serve", body)
            span.set(outcome=outcome.get("status"))
            return outcome

    async def health(self) -> dict:
        return await self.call("health")

    async def metrics(self) -> dict:
        return await self.call("metrics")

    async def ping(self) -> str:
        return await self.call("ping")

    async def _read_loop(self) -> None:
        error: BaseException | None = None
        try:
            while True:
                payload = await read_frame(self._reader)
                if payload is None:
                    break
                request_id, ok, result = self.codec.loads(payload)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue
                if ok:
                    future.set_result(result)
                else:
                    future.set_exception(ProcClientError(str(result)))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail pending below
            error = exc
        finally:
            # One shared exception instance would cross-contaminate traceback
            # context between waiters — build one per pending future.
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ProcTransportError(
                            "connection lost" + (f" ({error})" if error else "")
                        )
                    )
            self._pending.clear()

    async def aclose(self) -> None:
        self._reader_task.cancel()
        await asyncio.gather(self._reader_task, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:  # noqa: BLE001 - server may already be gone
            pass


async def run_open_loop_socket(
    client: ProcClient,
    queries: list[Query],
    rate: float,
    time_step: float = 0.0,
    deadline: float | None = None,
    stop: asyncio.Event | None = None,
) -> dict:
    """Open-loop driver over a socket: request ``i`` launches at wall offset
    ``i / rate`` regardless of completions (the same arrival discipline as
    :func:`repro.serving.aio.load.run_open_loop`), all replies are gathered,
    and a served-fraction report comes back for the smoke gate.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    loop = asyncio.get_running_loop()
    begin = loop.time()
    tasks: list[asyncio.Task] = []
    statuses: Counter = Counter()

    async def one(index: int, query: Query) -> None:
        try:
            outcome = await client.serve(
                query, now=index * time_step, deadline=deadline
            )
            statuses[outcome["status"]] += 1
        except ProcClientError:
            statuses["transport_error"] += 1

    for index, query in enumerate(queries):
        if stop is not None and stop.is_set():
            break
        target = begin + index / rate
        delay = target - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(index, query)))
    if tasks:
        await asyncio.gather(*tasks)
    wall = loop.time() - begin
    launched = len(tasks)
    served = statuses["ok"] + statuses["stale_hit"]
    return {
        "requests": launched,
        "served": served,
        "served_fraction": served / launched if launched else 0.0,
        "statuses": dict(statuses),
        "reconnects": client.reconnects,
        "wall_seconds": wall,
        "throughput_rps": launched / wall if wall > 0 else 0.0,
    }
