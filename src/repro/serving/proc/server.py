"""The TCP front door: ``python -m repro serve`` lives here.

:class:`ProcServer` accepts client connections on a real socket and serves
them through a :class:`~repro.serving.proc.engine.ProcAsteriaEngine`. The
client protocol is the same length-prefixed framing as the worker protocol
(one codebase for both sides of the router), with request pipelining per
connection:

* request: ``[request_id, op, body]``
* reply:   ``[request_id, ok, payload]``

Ops: ``serve`` (``[query_wire, now, deadline]`` with an optional fourth
``[trace_id, parent_span_id]`` element — the payload mirrors an
``AsyncOutcome``, and a traced request's router/worker spans join the
client's trace), ``health`` (includes an ``slo`` burn-rate summary when an
:class:`~repro.obs.slo.SLOEngine` is attached), ``metrics``, ``ping``.

Graceful shutdown: SIGTERM/SIGINT (or :meth:`request_stop`) stops accepting
connections, lets every in-flight request finish, drains the engine
(background refreshes, single-flight leaders), shuts the worker pool down
cleanly, and returns — so a supervisor's TERM never loses work that was
already admitted.
"""

from __future__ import annotations

import asyncio
import signal

from repro.serving.proc import wire
from repro.serving.proc.engine import ProcAsteriaEngine
from repro.serving.proc.protocol import FrameError, get_codec, read_frame, write_frame


class ProcServer:
    """Socket front-end over a :class:`ProcAsteriaEngine`."""

    def __init__(
        self,
        engine: ProcAsteriaEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        codec: str = "pickle",
        slo=None,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.codec = get_codec(codec)
        #: Optional :class:`~repro.obs.slo.SLOEngine`; when set, ``health``
        #: replies carry its burn-rate summary (``python -m repro serve
        #: --slo`` wires it up).
        self.slo = slo
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stop = asyncio.Event()
        self.requests_served = 0

    async def start(self) -> None:
        """Launch workers (if needed), attach, and start listening
        (idempotent)."""
        if self._server is not None:
            return
        await self.engine.pool.attach()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Begin a graceful shutdown (signal-handler safe)."""
        self._stop.set()

    async def run(self, install_signals: bool = True) -> None:
        """Start, serve until stopped, then drain and tear down."""
        await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, self.request_stop)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        try:
            await self._stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, finish in-flight requests, stop the workers."""
        self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        await self.engine.aclose()

    # -- per-connection ---------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        pending: set[asyncio.Task] = set()
        stop_wait = asyncio.ensure_future(self._stop.wait())
        try:
            while True:
                read_task = asyncio.ensure_future(read_frame(reader))
                done, _ = await asyncio.wait(
                    {read_task, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if read_task not in done:
                    # Shutdown requested: stop reading; in-flight requests
                    # on this connection still complete below.
                    read_task.cancel()
                    await asyncio.gather(read_task, return_exceptions=True)
                    break
                try:
                    payload = read_task.result()
                except FrameError:
                    break
                if payload is None:
                    break
                request_id, op, body = self.codec.loads(payload)
                request = asyncio.ensure_future(
                    self._handle_request(writer, request_id, op, body)
                )
                pending.add(request)
                request.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*list(pending), return_exceptions=True)
        finally:
            stop_wait.cancel()
            await asyncio.gather(stop_wait, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 - client may already be gone
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _handle_request(
        self, writer: asyncio.StreamWriter, request_id, op: str, body
    ) -> None:
        try:
            result = await self._dispatch(op, body)
            reply = [request_id, True, result]
        except Exception as exc:  # noqa: BLE001 - reported to the client
            reply = [request_id, False, f"{type(exc).__name__}: {exc}"]
        if not writer.is_closing():
            write_frame(writer, self.codec.dumps(reply))

    async def _dispatch(self, op: str, body):
        if op == "serve":
            query = wire.query_from_wire(body[0])
            ctx = body[3] if len(body) > 3 else None
            tracer = self.engine.engine.tracer
            if ctx is not None and tracer is not None:
                # The client opened a root span for this request: adopt its
                # identity so the router's request span (and the worker
                # spans grafted under it) lands in the client's trace.
                with tracer.adopt(ctx):
                    outcome = await self.engine.serve(
                        query, now=body[1], deadline=body[2]
                    )
            else:
                outcome = await self.engine.serve(
                    query, now=body[1], deadline=body[2]
                )
            self.requests_served += 1
            response = outcome.response
            return {
                "status": outcome.status,
                "wall_latency": outcome.wall_latency,
                "result": response.result if response is not None else None,
                "latency": response.latency if response is not None else None,
            }
        if op == "health":
            reply = {
                "status": "ok",
                "workers": self.engine.pool.n_shards,
                "inflight": self.engine.inflight,
                "requests": self.engine.metrics.requests,
                "usage": self.engine.pool.usage_snapshot(),
                "worker_pids": self.engine.pool.worker_pids(),
                "worker_restarts": self.engine.metrics.worker_restarts,
            }
            breakers = getattr(self.engine, "shard_breakers", None)
            if breakers:
                reply["shards"] = [breaker.state for breaker in breakers]
            if self.slo is not None:
                reply["slo"] = self.slo.health_summary()
            return reply
        if op == "metrics":
            return self.engine.metrics.summary()
        if op == "ping":
            return "pong"
        raise ValueError(f"unknown op {op!r}")
