"""The shard worker: one process, one :class:`AsteriaCache` shard.

A worker is spawned by :class:`~repro.serving.proc.pool.WorkerPool`, builds
its shard locally from a pickled :class:`WorkerSpec` (so embedder, arena,
ANN index, and judger state never cross a process boundary), connects
*back* to the router over loopback TCP, and then serves ops frame by frame:

``lookup_batch``
    One frame carries every request the router accumulated for this shard:
    expired entries are purged once at the newest timestamp, stage 1
    (embed + ANN) runs as one shared batch, and stage 2 judges each query
    against its own clock — the exact preamble of the sequential engine's
    ``handle_batch``, so a frame of size 1 replays a scalar lookup
    decision for decision.
``insert``
    Admit one fetched result (the router already decided admission).
``stats`` / ``ping`` / ``shutdown``
    Introspection and lifecycle.

Every reply piggybacks the shard's live :class:`CacheStats` plus its item
count, so the router's cache view is exact at the moment it records
metrics — no separate stats poll, no read-after-write races.

Tracing rides the same piggyback: lookup/insert bodies may carry a
``[trace_id, parent_span_id]`` context per item, the worker's
:class:`~repro.obs.distributed.WorkerTracer` records real ``embed`` /
``ann_search`` / ``judge`` / ``evict`` spans under those remote parents,
and each reply appends the drained span records as an optional fifth
element (raw worker-clock timestamps — the router re-bases them with the
clock offset estimated at the hello handshake's ``clock`` ping). Untraced
frames are byte-identical to before: no context, no fifth element.

Shutdown: SIGTERM (or a ``shutdown`` op, or router EOF) sets a stop flag
checked between frames; SIGINT is ignored so a Ctrl-C in the foreground
process group lets the router drain in-flight work and coordinate the
teardown.
"""

from __future__ import annotations

import os
import signal
import socket
import time
from dataclasses import dataclass, field

from repro.core.config import AsteriaConfig
from repro.obs.distributed import WorkerTracer
from repro.serving.proc import wire
from repro.serving.proc.protocol import get_codec, recv_frame, send_frame

#: First frame a worker sends after connecting:
#: ["hello", MAGIC, shard, pid, restore | None] — ``restore`` summarises what
#: a persisted shard warm-loaded before serving (the supervisor puts it in
#: the ``shard_recover`` trace span).
HELLO_MAGIC = "repro-shard-worker-v1"

#: Seconds a worker blocks in ``recv`` before re-checking its stop flag.
POLL_TIMEOUT = 0.5


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild one shard, picklable by design.

    ``policy`` is a name (``policy_by_name``), not a policy object — specs
    cross the spawn boundary, and names keep them codec-agnostic.
    """

    shard_id: int
    n_shards: int
    config: AsteriaConfig = field(default_factory=AsteriaConfig)
    seed: int = 0
    index_kind: str = "flat"
    policy: str = "lcfu"
    arena: str | None = "float32"
    judge_spin: float = 0.0
    #: Pre-calibrated loop iterations for ``judge_spin`` (measured once in
    #: the quiet parent): calibrating inside a worker that shares a core
    #: with its siblings would hand it less work per judge and fake scaling.
    judge_spin_iterations: int | None = None
    codec: str = "pickle"
    #: When set, the shard warm-restarts from (and journals to) this
    #: directory via :class:`~repro.store.persist.PersistentStore`. A plain
    #: string, not a Path: specs cross the spawn boundary.
    persist_dir: str | None = None
    fsync_every: int = 8

    def __post_init__(self) -> None:
        if not isinstance(self.policy, str):
            raise TypeError(
                "WorkerSpec.policy must be a policy *name* (it crosses the "
                f"process boundary), got {type(self.policy).__name__}"
            )
        if not 0 <= self.shard_id < self.n_shards:
            raise ValueError(
                f"shard_id {self.shard_id} out of range for {self.n_shards} shards"
            )


class _ShardServer:
    """Op dispatch over one shard cache (separated from I/O for testing)."""

    def __init__(self, spec: WorkerSpec) -> None:
        # Imported here, not at module top: the factory imports this package
        # (build_proc_engine), so a top-level import would be circular — and
        # the parent never needs the heavy build path just to spawn us.
        from repro.factory import build_semantic_cache

        self.spec = spec
        self.cache = build_semantic_cache(
            spec.config,
            seed=spec.seed,
            index_kind=spec.index_kind,
            policy=spec.policy,
            arena=spec.arena,
            judge_spin=spec.judge_spin,
            judge_spin_iterations=spec.judge_spin_iterations,
            persist_dir=spec.persist_dir,
            fsync_every=spec.fsync_every,
        )
        self.store = getattr(self.cache, "persistent_store", None)
        # Always installed: with no remote context active its ``live`` count
        # is 0, so the cache's leaf guards short-circuit on one attribute
        # load — untraced frames pay an integer check per stage, nothing
        # more (benchmarks/run_obs_overhead.py measures the proc arm).
        self.tracer = WorkerTracer()
        self.cache.set_tracer(self.tracer)

    def close(self) -> None:
        """Flush and checkpoint the persistence tier, if any."""
        if self.store is not None:
            self.store.close(checkpoint=True)

    def stats_tuple(self) -> list:
        return wire.shard_stats_tuple(self.cache.stats, self.cache.usage())

    def dispatch(self, op: str, body):
        """Run one op; returns the reply payload. ``shutdown`` returns the
        sentinel string ``"bye"`` — the caller breaks its loop on it."""
        if op == "lookup_batch":
            return self._lookup_batch(body)
        if op == "insert":
            return self._insert(body)
        if op == "stats":
            reply = {
                "shard": self.spec.shard_id,
                "usage": self.cache.usage(),
                "capacity_items": self.cache.capacity_items,
                "stats": self.stats_tuple(),
            }
            report = getattr(self.cache, "restore_report", None)
            if report is not None:
                reply["restore"] = report.as_dict()
            return reply
        if op == "ping":
            return "pong"
        if op == "clock":
            # The router's hello-handshake ping/pong: return a raw reading
            # of the clock the tracer stamps spans with, so the midpoint
            # offset estimate aligns span timestamps, not just some clock.
            return time.perf_counter()
        if op == "shutdown":
            return "bye"
        raise ValueError(f"unknown op {op!r}")

    def _lookup_batch(self, body) -> list:
        items, ann_only = body[0], body[1]
        if not items:
            return []
        queries = [wire.query_from_wire(row[0]) for row in items]
        nows = [row[1] for row in items]
        # Optional third element per item: the router's [trace_id,
        # parent_span_id] context for that request (absent on untraced
        # traffic — frames stay byte-identical to the pre-tracing wire).
        ctxs = [row[2] if len(row) > 2 else None for row in items]
        # One purge at the newest clock + one shared stage-1 pass, then
        # per-query stage 2 at each query's own clock: the sequential
        # handle_batch preamble. Nothing mutates the index between prepare
        # and lookup inside a frame (hits only bump frequency/recency), so
        # the prepared hits stay exact.
        self.cache.remove_expired(max(nows))
        # The shared embed/ANN pass is one unit of work for the whole frame;
        # its spans are attributed to the first traced request in it (with
        # batch_window=0 frames are size 1, so this is exact attribution —
        # the workers=1 parity gate in BENCH_breakdown.json relies on it).
        shared_ctx = next((ctx for ctx in ctxs if ctx is not None), None)
        with self.tracer.activate(shared_ctx):
            batch_hits = self.cache.prepare_batch([query.text for query in queries])
        out = []
        for query, hits, now, ctx in zip(queries, batch_hits, nows, ctxs):
            with self.tracer.activate(ctx):
                out.append(
                    wire.sine_to_wire(
                        self.cache.lookup_prepared(query, hits, now, ann_only=ann_only)
                    )
                )
        return out

    def _insert(self, body) -> dict:
        query = wire.query_from_wire(body[0])
        fetch = wire.fetch_from_wire(body[1])
        arrival = body[2]
        ctx = body[3] if len(body) > 3 else None
        with self.tracer.activate(ctx):
            element = self.cache.insert(query, fetch, arrival)
        return wire.element_to_wire(element)


def worker_main(spec: WorkerSpec, host: str, port: int) -> None:
    """Child-process entry point (must stay importable for ``spawn``)."""
    stop = {"flag": False}

    def _on_sigterm(signum, frame):
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    codec = get_codec(spec.codec)
    server = _ShardServer(spec)
    sock = socket.create_connection((host, port), timeout=30.0)
    try:
        sock.settimeout(POLL_TIMEOUT)
        report = getattr(server.cache, "restore_report", None)
        restore = None
        if report is not None:
            restore = {"cold": report.cold, "restored_items": report.restored_items}
        send_frame(
            sock,
            codec.dumps(["hello", HELLO_MAGIC, spec.shard_id, os.getpid(), restore]),
        )
        while not stop["flag"]:
            try:
                payload = recv_frame(sock)
            except socket.timeout:
                continue
            if payload is None:  # router closed: nothing left to serve
                break
            request_id, op, body = codec.loads(payload)
            try:
                result = server.dispatch(op, body)
                reply = [request_id, True, result, server.stats_tuple()]
            except Exception as exc:  # noqa: BLE001 - reported to the router
                reply = [
                    request_id,
                    False,
                    f"{type(exc).__name__}: {exc}",
                    server.stats_tuple(),
                ]
            # Spans recorded while dispatching ride back on this reply (same
            # piggyback trick as the stats tuple). Drained on both paths so
            # a failing op can't leak its spans into the next frame.
            spans = server.tracer.drain_wire()
            if spans:
                reply.append(spans)
            send_frame(sock, codec.dumps(reply))
            if op == "shutdown":
                break
    finally:
        # Graceful stop (SIGTERM / shutdown op / router EOF): flush the
        # journal tail and checkpoint so a clean restart replays nothing.
        # A SIGKILL skips this — that is what fsync batching is for.
        try:
            server.close()
        except OSError:
            pass
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()
