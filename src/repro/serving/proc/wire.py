"""Plain-structure converters for everything that crosses a process boundary.

Each ``*_to_wire`` function flattens a core type to dicts/lists/scalars so
both codecs (pickle and msgpack) serialize it identically, and each
``*_from_wire`` rebuilds the *real* type on the other side. msgpack decodes
tuples as lists, so readers index into sequences and never type-check them.

Design note — embeddings stay in the worker. A cached element's embedding
is a view into the worker's arena; the router never scores vectors, so
``element_to_wire`` drops it and ``element_from_wire`` substitutes a
zero-length placeholder. Everything the router's accounting path
(:meth:`AsteriaEngine._lookup_record`) reads — ``element_id``, ``key``,
``value``, ``truth_key``, ``prefetched``, post-hit ``frequency`` — crosses
intact, so router-side metrics match a single-process run exactly.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import SearchHit
from repro.core.cache import CacheStats
from repro.core.element import SemanticElement
from repro.core.sine import SineResult
from repro.core.types import FetchResult, Query
from repro.judger.base import JudgeVerdict

#: Placeholder for embeddings that stayed behind in the worker's arena.
_NO_EMBEDDING = np.zeros(0, dtype=np.float32)


# -- Query --------------------------------------------------------------------
def query_to_wire(query: Query) -> dict:
    return {
        "text": query.text,
        "tool": query.tool,
        "fact_id": query.fact_id,
        "staticity": query.staticity,
        "cost": query.cost,
        "metadata": dict(query.metadata),
    }


def query_from_wire(data: dict) -> Query:
    return Query(
        text=data["text"],
        tool=data["tool"],
        fact_id=data["fact_id"],
        staticity=data["staticity"],
        cost=data["cost"],
        metadata=data["metadata"] or {},
    )


# -- FetchResult --------------------------------------------------------------
def fetch_to_wire(fetch: FetchResult) -> dict:
    return {
        "result": fetch.result,
        "latency": fetch.latency,
        "service_latency": fetch.service_latency,
        "cost": fetch.cost,
        "retries": fetch.retries,
        "rate_limited": fetch.rate_limited,
        "size_tokens": fetch.size_tokens,
        "hedged": fetch.hedged,
    }


def fetch_from_wire(data: dict) -> FetchResult:
    return FetchResult(
        result=data["result"],
        latency=data["latency"],
        service_latency=data["service_latency"],
        cost=data["cost"],
        retries=data["retries"],
        rate_limited=data["rate_limited"],
        size_tokens=data["size_tokens"],
        hedged=data["hedged"],
    )


# -- SemanticElement (embedding-less) -----------------------------------------
def element_to_wire(element: SemanticElement) -> dict:
    return {
        "element_id": element.element_id,
        "key": element.key,
        "value": element.value,
        "tool": element.tool,
        "truth_key": element.truth_key,
        "staticity": element.staticity,
        "frequency": element.frequency,
        "retrieval_latency": element.retrieval_latency,
        "retrieval_cost": element.retrieval_cost,
        "size_tokens": element.size_tokens,
        "created_at": element.created_at,
        "last_accessed_at": element.last_accessed_at,
        "expires_at": element.expires_at,
        "prefetched": element.prefetched,
        "metadata": dict(element.metadata),
    }


def element_from_wire(data: dict) -> SemanticElement:
    return SemanticElement(
        element_id=data["element_id"],
        key=data["key"],
        value=data["value"],
        embedding=_NO_EMBEDDING,
        tool=data["tool"],
        truth_key=data["truth_key"],
        staticity=data["staticity"],
        frequency=data["frequency"],
        retrieval_latency=data["retrieval_latency"],
        retrieval_cost=data["retrieval_cost"],
        size_tokens=data["size_tokens"],
        created_at=data["created_at"],
        last_accessed_at=data["last_accessed_at"],
        expires_at=data["expires_at"],
        prefetched=data["prefetched"],
        arena_slot=None,
        metadata=data["metadata"] or {},
    )


# -- SineResult ---------------------------------------------------------------
def sine_to_wire(result: SineResult) -> dict:
    return {
        "match": element_to_wire(result.match) if result.match is not None else None,
        "candidates": [[hit.score, hit.key] for hit in result.candidates],
        "verdicts": [[v.score, v.truth, v.detail] for v in result.verdicts],
        "ann_considered": result.ann_considered,
    }


def sine_from_wire(data: dict) -> SineResult:
    match = data["match"]
    return SineResult(
        match=element_from_wire(match) if match is not None else None,
        candidates=[SearchHit(score=row[0], key=row[1]) for row in data["candidates"]],
        verdicts=[
            JudgeVerdict(score=row[0], truth=row[1], detail=row[2])
            for row in data["verdicts"]
        ],
        ann_considered=data["ann_considered"],
    )


# -- shard stats piggyback ----------------------------------------------------
#: Every worker reply carries its shard's stats so the router's cache view is
#: exact at metric-recording time: (inserts, evictions, expirations,
#: rejected_duplicates, prefetch_inserts, usage).
def shard_stats_tuple(stats: CacheStats, usage: int) -> list:
    return [
        stats.inserts,
        stats.evictions,
        stats.expirations,
        stats.rejected_duplicates,
        stats.prefetch_inserts,
        usage,
    ]


def stats_from_tuples(tuples) -> CacheStats:
    """Exact-sum CacheStats across per-shard piggyback tuples."""
    total = CacheStats()
    for row in tuples:
        total.inserts += row[0]
        total.evictions += row[1]
        total.expirations += row[2]
        total.rejected_duplicates += row[3]
        total.prefetch_inserts += row[4]
    return total


def usage_from_tuples(tuples) -> int:
    return sum(row[5] for row in tuples)
