"""Worker-pool lifecycle and per-shard frame clients for the proc tier.

:class:`WorkerPool` owns the processes: it binds an ephemeral loopback
listener, spawns one worker per shard (``multiprocessing`` *spawn* context —
no forked locks, clean numpy state), and each worker connects back and
identifies itself with a hello frame. Launch is synchronous and event-loop
free; the asyncio wrapping of the connected sockets happens lazily at first
use (:meth:`WorkerPool.attach`), so a pool can be built before any loop
exists.

:class:`ShardClient` is the per-shard protocol endpoint. It pipelines
requests (a monotonically increasing request id maps replies to waiter
futures, so many ops can be in flight on one connection) and micro-batches
lookups: requests that arrive within ``batch_window`` wall seconds (or up to
``batch_max`` of them) travel as *one* ``lookup_batch`` frame — the same
accumulation rule as ``AsyncAsteriaEngine.serve_batched``, applied per shard
at the wire. Every reply refreshes :attr:`ShardClient.last_stats`, the
piggybacked shard-stats tuple the router's cache view reads; because the
update happens before the waiter future resolves, metric recording after an
``await`` always sees stats at least as fresh as its own operation.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import pathlib
import socket
import time

from repro.core.cache import CacheStats
from repro.core.sharding import shard_index_for
from repro.serving.proc import wire
from repro.serving.proc.protocol import (
    Codec,
    get_codec,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.serving.proc.worker import HELLO_MAGIC, WorkerSpec, worker_main

#: Seconds the pool waits for all workers to connect back and say hello.
LAUNCH_TIMEOUT = 60.0


class WorkerError(RuntimeError):
    """An op failed inside a worker (the message is the worker's traceback
    summary) or the worker connection was lost mid-flight.

    ``shard_id`` identifies the fault domain when known, so the proc engine
    can charge the failure to that shard's breaker instead of the backend's.
    """

    def __init__(self, message: str, shard_id: int | None = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class ShardClient:
    """Protocol endpoint for one shard worker (pipelined + lookup-batched).

    ``on_connection_lost`` (``fn(shard_id)``) fires once when the read loop
    tears down for any reason other than a deliberate :meth:`aclose` — the
    pool forwards it to the supervisor as a death report. ``frame_faults``
    is an optional :class:`~repro.serving.proc.supervisor.ProcFaultInjector`
    consulted per reply frame (chaos only; None in production paths).
    """

    def __init__(
        self,
        shard_id: int,
        sock: socket.socket,
        codec: Codec,
        batch_window: float = 0.0,
        batch_max: int = 16,
        ann_only: bool = False,
        on_connection_lost=None,
        frame_faults=None,
        on_spans=None,
    ) -> None:
        self.shard_id = shard_id
        self.codec = codec
        self.batch_window = batch_window
        self.batch_max = batch_max
        self.ann_only = ann_only
        self.on_connection_lost = on_connection_lost
        self.frame_faults = frame_faults
        #: ``fn(shard_id, records, clock_offset)`` for piggybacked span
        #: records (optional fifth reply element); None drops them.
        self.on_spans = on_spans
        #: Router-clock minus worker-clock estimate from the hello
        #: handshake's clock ping (``worker_reading + clock_offset`` lands
        #: on the router's perf_counter timeline).
        self.clock_offset = 0.0
        #: Latest piggybacked shard stats: [inserts, evictions, expirations,
        #: rejected_duplicates, prefetch_inserts, usage].
        self.last_stats: list = [0, 0, 0, 0, 0, 0]
        #: True between a connection loss and the first reply from a
        #: respawned worker: ``last_stats`` still describes the dead
        #: incarnation and must not be trusted as live state.
        self.stats_stale = False
        self._sock: socket.socket | None = sock
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._next_id = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._lookup_pending: list[tuple[dict, float, object, asyncio.Future]] = []
        self._lookup_timer: asyncio.TimerHandle | None = None
        self._distribute_tasks: set[asyncio.Task] = set()
        self._closed = False
        self._expect_close = False

    @property
    def attached(self) -> bool:
        return self._writer is not None

    async def attach(self) -> None:
        """Wrap the connected socket into asyncio streams (idempotent)."""
        if self._writer is not None or self._sock is None:
            return
        sock, self._sock = self._sock, None
        sock.setblocking(True)
        self._reader, self._writer = await asyncio.open_connection(sock=sock)
        self._reader_task = asyncio.ensure_future(self._read_loop())

    # -- ops ------------------------------------------------------------------
    def _send(self, op: str, body) -> asyncio.Future:
        if self._writer is None:
            raise WorkerError(
                f"shard {self.shard_id}: client not attached", self.shard_id
            )
        if self._closed:
            raise WorkerError(
                f"shard {self.shard_id}: connection closed", self.shard_id
            )
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        write_frame(self._writer, self.codec.dumps([request_id, op, body]))
        return future

    async def call(self, op: str, body=None):
        """One pipelined op; raises :class:`WorkerError` on worker failure."""
        return await self._send(op, body)

    async def lookup(self, query, now: float, ctx=None):
        """Join this shard's accumulation window; resolves to a SineResult.

        ``ctx`` is the request's ``[trace_id, parent_span_id]`` stamp (None
        on untraced traffic), carried per item so one frame can mix traced
        and untraced requests."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._lookup_pending.append((wire.query_to_wire(query), now, ctx, future))
        if len(self._lookup_pending) >= self.batch_max:
            self.flush_lookups()
        elif self._lookup_timer is None:
            self._lookup_timer = loop.call_later(self.batch_window, self.flush_lookups)
        return wire.sine_from_wire(await future)

    async def insert(self, query, fetch, arrival: float, ctx=None):
        body = [wire.query_to_wire(query), wire.fetch_to_wire(fetch), arrival]
        if ctx is not None:
            body.append(ctx)
        return await self.call("insert", body)

    def flush_lookups(self) -> None:
        """Ship the pending accumulation window as one lookup_batch frame."""
        if self._lookup_timer is not None:
            self._lookup_timer.cancel()
            self._lookup_timer = None
        pending = self._lookup_pending
        if not pending:
            return
        self._lookup_pending = []
        # Untraced items stay two elements long, so untraced frames are
        # byte-identical to the pre-tracing wire format.
        items = [
            [query_wire, now] if ctx is None else [query_wire, now, ctx]
            for query_wire, now, ctx, _ in pending
        ]
        waiters = [future for _, _, _, future in pending]
        try:
            frame_future = self._send("lookup_batch", [items, self.ann_only])
        except WorkerError as exc:
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_exception(exc)
            return
        task = asyncio.ensure_future(self._distribute(frame_future, waiters))
        self._distribute_tasks.add(task)
        task.add_done_callback(self._distribute_tasks.discard)

    async def _distribute(self, frame_future, waiters) -> None:
        try:
            results = await frame_future
        except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_exception(exc)
            return
        for waiter, result in zip(waiters, results):
            if not waiter.done():
                waiter.set_result(result)

    async def _read_loop(self) -> None:
        error: BaseException | None = None
        try:
            while True:
                payload = await read_frame(self._reader)
                if payload is None:
                    break
                if self.frame_faults is not None:
                    action, delay = self.frame_faults.frame_action(self.shard_id)
                    if action == "drop":
                        # The waiter stays pending: exactly a hung worker,
                        # which is the supervisor heartbeat's job to notice.
                        continue
                    if delay > 0:
                        await asyncio.sleep(delay)
                frame = self.codec.loads(payload)
                request_id, ok, result, stats = frame[:4]
                # Stats first, waiter second: by the time an awaiting caller
                # resumes, the router's cache view already reflects this op.
                self.last_stats = stats
                self.stats_stale = False
                # Piggybacked span records (optional fifth element) graft
                # before the waiter resumes too, so a request span closing
                # right after the await already owns its worker stages.
                if len(frame) > 4 and frame[4] and self.on_spans is not None:
                    self.on_spans(self.shard_id, frame[4], self.clock_offset)
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue
                if ok:
                    future.set_result(result)
                else:
                    future.set_exception(
                        WorkerError(f"shard {self.shard_id}: {result}", self.shard_id)
                    )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - fail pending below
            error = exc
        finally:
            self._closed = True
            self.stats_stale = True
            # One shared exception object for every pending waiter: the proc
            # engine's per-flight failure accounting dedups on the object
            # (like coalesced-follower accounting), so a burst of in-flight
            # requests dying together charges the shard breaker once.
            lost = WorkerError(
                f"shard {self.shard_id}: connection lost"
                + (f" ({error})" if error else ""),
                self.shard_id,
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(lost)
            self._pending.clear()
            if not self._expect_close and self.on_connection_lost is not None:
                self.on_connection_lost(self.shard_id)

    async def aclose(self) -> None:
        self._expect_close = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
            self._writer = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None


class WorkerPool:
    """Spawn, address, and tear down one worker process per shard."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        batch_window: float = 0.0,
        batch_max: int = 16,
        ann_only: bool = False,
        host: str = "127.0.0.1",
        frame_faults=None,
    ) -> None:
        if not specs:
            raise ValueError("WorkerPool needs at least one WorkerSpec")
        codecs = {spec.codec for spec in specs}
        if len(codecs) != 1:
            raise ValueError(f"all specs must share one codec, got {codecs}")
        self.specs = specs
        self.codec = get_codec(specs[0].codec)
        self.batch_window = batch_window
        self.batch_max = batch_max
        self.ann_only = ann_only
        self.host = host
        self.frame_faults = frame_faults
        self.n_shards = len(specs)
        self.clients: list[ShardClient] = []
        self.processes: list[multiprocessing.process.BaseProcess] = []
        #: Optional :class:`~repro.serving.proc.supervisor.WorkerSupervisor`
        #: (see :meth:`enable_supervision`); started at :meth:`attach`,
        #: stopped first in the teardown paths.
        self.supervisor = None
        #: ``fn(shard_id, records, clock_offset)`` receiving piggybacked
        #: worker span records (installed by the router cache view's
        #: ``set_tracer`` via :func:`repro.obs.distributed.make_span_sink`;
        #: None = spans dropped at the client).
        self.span_sink = None
        self._launched = False

    def enable_supervision(self, **knobs):
        """Attach a :class:`WorkerSupervisor` so dead workers are respawned.

        Keyword knobs are forwarded to the supervisor constructor. Must run
        before :meth:`attach`; returns the supervisor for callback wiring.
        """
        from repro.serving.proc.supervisor import WorkerSupervisor

        if self.supervisor is None:
            self.supervisor = WorkerSupervisor(self, **knobs)
        return self.supervisor

    def _make_client(self, shard_id: int, conn: socket.socket) -> ShardClient:
        return ShardClient(
            shard_id,
            conn,
            self.codec,
            batch_window=self.batch_window,
            batch_max=self.batch_max,
            ann_only=self.ann_only,
            on_connection_lost=self._connection_lost,
            frame_faults=self.frame_faults,
            on_spans=self._forward_spans,
        )

    def _connection_lost(self, shard_id: int) -> None:
        if self.supervisor is not None:
            self.supervisor.notify_death(shard_id)

    def _forward_spans(self, shard_id: int, records, clock_offset: float) -> None:
        sink = self.span_sink
        if sink is not None:
            sink(shard_id, records, clock_offset)

    def _accept_hello(self, listener: socket.socket):
        """Accept one worker connection, validate its hello frame, and run
        the clock handshake; returns ``(shard_id, conn,
        restore_report_or_None, clock_offset)``."""
        conn, _ = listener.accept()
        conn.settimeout(LAUNCH_TIMEOUT)
        hello = recv_frame(conn)
        if hello is None:
            raise WorkerError("worker closed connection before hello")
        message = self.codec.loads(hello)
        if message[0] != "hello" or message[1] != HELLO_MAGIC:
            conn.close()
            raise WorkerError(f"unexpected hello frame: {message!r}")
        restore = message[4] if len(message) > 4 else None
        # Clock handshake: one synchronous ping/pong estimates the worker's
        # perf_counter offset from ours as the round-trip midpoint —
        # ``offset = (t0 + t1) / 2 - worker_reading`` — so piggybacked span
        # timestamps re-base onto the router's timeline with error bounded
        # by half the (loopback, ~tens of µs) round trip.
        t0 = time.perf_counter()
        send_frame(conn, self.codec.dumps([-1, "clock", None]))
        pong = recv_frame(conn)
        t1 = time.perf_counter()
        if pong is None:
            conn.close()
            raise WorkerError("worker closed connection during clock handshake")
        clock_offset = (t0 + t1) / 2.0 - self.codec.loads(pong)[2]
        conn.settimeout(None)
        return message[2], conn, restore, clock_offset

    # -- lifecycle ------------------------------------------------------------
    def launch(self) -> None:
        """Spawn the workers and complete the hello handshake (blocking)."""
        if self._launched:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        by_shard: dict[int, tuple[socket.socket, float]] = {}
        try:
            listener.bind((self.host, 0))
            listener.listen(self.n_shards)
            listener.settimeout(LAUNCH_TIMEOUT)
            port = listener.getsockname()[1]
            ctx = multiprocessing.get_context("spawn")
            with _spawn_pythonpath():
                for spec in self.specs:
                    process = ctx.Process(
                        target=worker_main,
                        args=(spec, self.host, port),
                        daemon=True,
                        name=f"repro-shard-{spec.shard_id}",
                    )
                    process.start()
                    self.processes.append(process)
            for _ in range(self.n_shards):
                shard_id, conn, _, clock_offset = self._accept_hello(listener)
                by_shard[shard_id] = (conn, clock_offset)
            if sorted(by_shard) != list(range(self.n_shards)):
                raise WorkerError(
                    f"expected shards 0..{self.n_shards - 1}, got {sorted(by_shard)}"
                )
            self.clients = []
            for shard_id in range(self.n_shards):
                conn, clock_offset = by_shard[shard_id]
                client = self._make_client(shard_id, conn)
                client.clock_offset = clock_offset
                self.clients.append(client)
        except Exception:
            for conn, _ in by_shard.values():
                conn.close()
            self.clients = []
            self.close()
            raise
        finally:
            listener.close()
        self._launched = True

    def spawn_worker(self, spec: WorkerSpec):
        """Spawn ONE worker for ``spec`` and complete its hello handshake
        (blocking — the supervisor runs this in an executor). Returns
        ``(process, conn, restore_report_or_None, clock_offset)``; the
        caller swaps them in via :meth:`replace_client`."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind((self.host, 0))
            listener.listen(1)
            listener.settimeout(LAUNCH_TIMEOUT)
            port = listener.getsockname()[1]
            ctx = multiprocessing.get_context("spawn")
            with _spawn_pythonpath():
                process = ctx.Process(
                    target=worker_main,
                    args=(spec, self.host, port),
                    daemon=True,
                    name=f"repro-shard-{spec.shard_id}",
                )
                process.start()
            try:
                shard_id, conn, restore, clock_offset = self._accept_hello(listener)
            except Exception:
                if process.is_alive():
                    process.kill()
                process.join(timeout=5.0)
                raise
            if shard_id != spec.shard_id:
                conn.close()
                if process.is_alive():
                    process.kill()
                process.join(timeout=5.0)
                raise WorkerError(
                    f"respawned worker identified as shard {shard_id}, "
                    f"expected {spec.shard_id}"
                )
            return process, conn, restore, clock_offset
        finally:
            listener.close()

    def replace_client(
        self,
        shard_id: int,
        conn: socket.socket,
        process,
        clock_offset: float = 0.0,
    ) -> ShardClient:
        """Install a respawned worker's connection/process for ``shard_id``.

        The new client inherits the dead incarnation's ``last_stats`` with
        ``stats_stale`` set: cumulative counters stay monotone for readers,
        but are flagged untrusted until the first post-recovery reply.
        ``clock_offset`` is the respawned incarnation's own estimate — the
        dead worker's offset means nothing for a new process."""
        old = self.clients[shard_id]
        client = self._make_client(shard_id, conn)
        client.last_stats = list(old.last_stats)
        client.stats_stale = True
        client.clock_offset = clock_offset
        self.clients[shard_id] = client
        self.processes[shard_id] = process
        return client

    @property
    def launched(self) -> bool:
        return self._launched

    @property
    def attached(self) -> bool:
        return bool(self.clients) and all(c.attached for c in self.clients)

    async def attach(self) -> None:
        """Wrap every worker connection for the running loop (idempotent);
        starts the supervisor's heartbeat when one is enabled."""
        if not self._launched:
            self.launch()
        for client in self.clients:
            await client.attach()
        if self.supervisor is not None:
            self.supervisor.start()

    def worker_pids(self) -> list[int | None]:
        """Live worker PIDs by shard (for health introspection and the CI
        chaos job's kill target)."""
        return [process.pid for process in self.processes]

    def stale_shards(self) -> list[int]:
        """Shards whose piggybacked stats predate a connection loss."""
        return [c.shard_id for c in self.clients if c.stats_stale]

    # -- routing --------------------------------------------------------------
    def shard_for(self, text: str) -> int:
        return shard_index_for(text, self.n_shards)

    async def lookup(self, query, now: float, ctx=None):
        return await self.clients[self.shard_for(query.text)].lookup(
            query, now, ctx=ctx
        )

    async def insert(self, query, fetch, arrival: float, ctx=None):
        return await self.clients[self.shard_for(query.text)].insert(
            query, fetch, arrival, ctx=ctx
        )

    def flush(self) -> None:
        """Force every shard's accumulation window onto the wire."""
        for client in self.clients:
            client.flush_lookups()

    async def stats(self) -> list[dict]:
        """Fresh per-shard stats (also refreshes the piggyback tuples)."""
        return list(
            await asyncio.gather(*(client.call("stats") for client in self.clients))
        )

    # -- the router cache view reads these ------------------------------------
    def stats_snapshot(self) -> CacheStats:
        return wire.stats_from_tuples(client.last_stats for client in self.clients)

    def usage_snapshot(self) -> int:
        return wire.usage_from_tuples(client.last_stats for client in self.clients)

    @property
    def capacity_items(self) -> int | None:
        total = 0
        for spec in self.specs:
            if spec.config.capacity_items is None:
                return None
            total += spec.config.capacity_items
        return total

    # -- teardown -------------------------------------------------------------
    async def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: flush windows, send shutdown ops, join processes.

        The supervisor stops *first* — the deliberate client closes below
        must not read as worker deaths and trigger a respawn storm."""
        if not self._launched:
            return
        if self.supervisor is not None:
            await self.supervisor.stop()
        await self.attach()
        self.flush()
        results = await asyncio.gather(
            *(client.call("shutdown") for client in self.clients),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, BaseException) and not isinstance(
                result, WorkerError
            ):
                raise result
        for client in self.clients:
            await client.aclose()
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, process.join, timeout)
                for process in self.processes
            )
        )
        self.close()

    def close(self) -> None:
        """Hard stop (idempotent; also the error-path cleanup)."""
        if self.supervisor is not None:
            self.supervisor.request_stop()
        for client in self.clients:
            sock = client.__dict__.get("_sock")
            if sock is not None:
                sock.close()
                client._sock = None
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout=5.0)
        self.processes = []
        self._launched = False


class _spawn_pythonpath:
    """Make sure spawned children can ``import repro`` even when the parent
    got it via ``sys.path`` manipulation rather than an installed package:
    temporarily prepend the package's source root to ``PYTHONPATH`` for the
    duration of the ``Process.start`` calls."""

    def __enter__(self):
        import repro

        src_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        self._old = os.environ.get("PYTHONPATH")
        parts = [] if self._old is None else self._old.split(os.pathsep)
        if src_root not in parts:
            os.environ["PYTHONPATH"] = os.pathsep.join([src_root] + parts)
        return self

    def __exit__(self, *exc):
        if self._old is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = self._old
        return False
