"""Wire framing for the multi-process serving tier.

Every message between the router, the shard workers, and serve clients is
one *frame*:

.. code-block:: text

    +----------------+---------------------------+
    | length: u32 BE | payload: length bytes     |
    +----------------+---------------------------+

The payload is a codec-serialized plain structure (dicts, lists, strings,
numbers, bytes, None) — see :mod:`repro.serving.proc.wire` for the
conversions. Two codecs are supported:

``pickle`` (default)
    Stdlib, always available, fastest for our small frames.
``msgpack``
    Used when the ``msgpack`` package is installed; import-gated so the
    tier works on a bare stdlib+numpy environment. Note msgpack decodes
    tuples as lists, which is why every ``wire`` reader indexes rather
    than type-checks.

Frames are capped at :data:`MAX_FRAME` bytes; an oversized or truncated
frame raises :class:`FrameError` rather than desynchronizing the stream.

Trace context rides inside existing frame bodies, never as new frame
types: lookup/insert items may carry an optional trailing ``[trace_id,
parent_span_id]`` element, worker replies may append a fifth element of
completed span records, serve requests may carry a fourth, and the hello
handshake exchanges one ``clock`` ping (request id -1) so the router can
estimate each worker's monotonic-clock offset. Readers index defensively
(``len(frame) > 4``), so untraced traffic is byte-identical to the
pre-tracing protocol and old/new peers interoperate.
Both synchronous (worker processes, blocking sockets) and asyncio (router,
serve clients) frame I/O live here so there is exactly one encoding of the
length prefix in the codebase.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct

#: Hard per-frame cap (64 MiB): far above any real frame (a full lookup
#: batch is a few KB), low enough that a corrupt length prefix fails fast
#: instead of attempting a giant allocation.
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(RuntimeError):
    """A malformed, oversized, or truncated frame."""


class Codec:
    """Serializer interface; see :func:`get_codec`."""

    name: str = "none"

    def dumps(self, obj) -> bytes:
        raise NotImplementedError

    def loads(self, data: bytes):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PickleCodec(Codec):
    """Stdlib pickle — the default, always available."""

    name = "pickle"

    def dumps(self, obj) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def loads(self, data: bytes):
        return pickle.loads(data)


class MsgpackCodec(Codec):
    """msgpack — optional; raises at construction when not installed."""

    name = "msgpack"

    def __init__(self) -> None:
        try:
            import msgpack
        except ImportError as exc:  # pragma: no cover - depends on env
            raise ImportError(
                "the msgpack codec requires the 'msgpack' package; "
                "use codec='pickle' (the default) instead"
            ) from exc
        self._msgpack = msgpack

    def dumps(self, obj) -> bytes:
        return self._msgpack.packb(obj, use_bin_type=True)

    def loads(self, data: bytes):
        return self._msgpack.unpackb(data, raw=False, strict_map_key=False)


def available_codecs() -> list[str]:
    """Codec names usable in this environment (msgpack only if importable)."""
    names = ["pickle"]
    try:
        import msgpack  # noqa: F401
    except ImportError:
        pass
    else:
        names.append("msgpack")
    return names


def get_codec(name: str) -> Codec:
    """Construct the named codec; ``ValueError`` on unknown names."""
    if name == "pickle":
        return PickleCodec()
    if name == "msgpack":
        return MsgpackCodec()
    raise ValueError(f"unknown codec {name!r}; expected one of pickle, msgpack")


# -- synchronous frame I/O (worker processes, blocking sockets) ---------------
def encode_frame(payload: bytes) -> bytes:
    """Length prefix + payload as one bytes object (for a single send)."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame of {len(payload)} bytes exceeds cap {MAX_FRAME}")
    return _LEN.pack(len(payload)) + payload


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; b"" at clean EOF on a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return b""
            raise FrameError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes | None:
    """Read one frame from a blocking socket; None at clean EOF.

    ``socket.timeout`` propagates (the worker loop uses it to poll its stop
    flag between frames).
    """
    header = _recv_exact(sock, _LEN.size)
    if not header:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"incoming frame of {length} bytes exceeds cap {MAX_FRAME}")
    if length == 0:
        return b""
    payload = _recv_exact(sock, length)
    if not payload and length:
        raise FrameError("connection closed between header and payload")
    return payload


class FrameSplitter:
    """Incremental decoder for a byte stream of concatenated frames.

    Feed arbitrary chunks (network reads, an in-memory simulated link) and
    get back complete payloads; partial frames are buffered until the rest
    arrives. Used by the replication layer, whose simulated WAN links carry
    real frame-protocol bytes.

    >>> splitter = FrameSplitter()
    >>> splitter.feed(encode_frame(b"a") + encode_frame(b"bb")[:3])
    [b'a']
    >>> splitter.feed(encode_frame(b"bb")[3:])
    [b'bb']
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append ``data``; return every now-complete frame payload."""
        self._buffer.extend(data)
        payloads: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise FrameError(
                    f"incoming frame of {length} bytes exceeds cap {MAX_FRAME}"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                break
            payloads.append(bytes(self._buffer[_LEN.size:end]))
            del self._buffer[:end]
        return payloads

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)


# -- asyncio frame I/O (router, serve clients) --------------------------------
def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Queue one frame on an asyncio writer (caller drains as needed)."""
    writer.write(encode_frame(payload))


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame from an asyncio reader; None at clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"incoming frame of {length} bytes exceeds cap {MAX_FRAME}")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
