"""Multi-process serving tier: shard workers behind a socket front door.

The thread-pool and asyncio stacks share one Python process, so embed/ANN/
judge CPU work serializes on the GIL no matter how many threads run. This
package escapes it: each worker *process* owns one :class:`AsteriaCache`
shard (arena, ANN index, and judger intact) and speaks a length-prefixed
binary protocol over localhost TCP; the router — a subclass of
:class:`~repro.serving.aio.engine.AsyncAsteriaEngine` — keeps routing,
batching, miss coalescing, resilience, and *all* metrics accounting in one
place, so the proc engine's counters aggregate exactly like every other
serving stack's.

Layers
------
``protocol``
    4-byte length-prefixed frames; pickle codec by default, msgpack when
    installed.
``wire``
    Plain-structure converters for every type that crosses the boundary.
``worker``
    The child-process entry point: builds its shard, serves ops in a loop.
``pool``
    ``WorkerPool`` (process lifecycle) + ``ShardClient`` (per-shard frame
    batching and request pipelining).
``engine``
    ``ProcAsteriaEngine``: the async front door routing to the pool.
``supervisor``
    ``WorkerSupervisor`` (detect dead workers, respawn with backoff and
    warm restore) + ``ProcFaultInjector`` (chaos: SIGKILL / frame faults).
``server`` / ``client``
    TCP request server (``python -m repro serve``) and its socket client.
"""

from repro.serving.proc.engine import ProcAsteriaEngine
from repro.serving.proc.pool import ShardClient, WorkerError, WorkerPool, WorkerSpec
from repro.serving.proc.protocol import (
    Codec,
    FrameError,
    available_codecs,
    get_codec,
)
from repro.serving.proc.server import ProcServer
from repro.serving.proc.client import ProcClient
from repro.serving.proc.supervisor import ProcFaultInjector, WorkerSupervisor

__all__ = [
    "Codec",
    "FrameError",
    "ProcAsteriaEngine",
    "ProcClient",
    "ProcFaultInjector",
    "ProcServer",
    "ShardClient",
    "WorkerError",
    "WorkerPool",
    "WorkerSpec",
    "WorkerSupervisor",
    "available_codecs",
    "get_codec",
]
