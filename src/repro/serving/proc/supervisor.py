"""Self-healing for the proc tier: worker supervision and seeded chaos.

:class:`WorkerSupervisor` is owned by a :class:`~repro.serving.proc.pool.
WorkerPool` and closes the loop the pool's launch path leaves open: a shard
worker that dies (SIGKILL, OOM, segfault) is *detected* — by the
:class:`~repro.serving.proc.pool.ShardClient` connection-loss callback and
by a lightweight heartbeat that pings every shard on an interval — then
*reaped* (the zombie joined off-loop in an executor) and *respawned* from
its original :class:`~repro.serving.proc.worker.WorkerSpec` with exponential
backoff. A respawned worker rebuilds its shard exactly as launch did; when
the spec carries a ``persist_dir``, the worker's own attach path
(PR 8's snapshot + journal machinery) warm-restores the shard, and the
hello frame reports what came back so the recovery is observable.

Per-shard state machine::

    up ──death detected──▶ respawning ──hello + attach──▶ up
                               │  ▲________________________│
                               │   (next death resets the cycle; the
                               │    consecutive-crash counter clears
                               │    after ``stable_seconds`` of uptime)
                               └──``max_restarts`` consecutive crashes──▶ dead
                                   (permanent: the engine routes the shard
                                    to its degraded path forever)

The supervisor never touches request routing itself — it exposes callbacks
(:attr:`on_down`, :attr:`on_restart`, :attr:`on_permanent`) that
:class:`~repro.serving.proc.engine.ProcAsteriaEngine` wires to its
per-shard circuit breakers, so detection, routing, and recovery stay in
their own layers.

:class:`ProcFaultInjector` is the chaos hook the benchmarks and the
``--chaos-workers`` stress mode drive: SIGKILL a chosen worker at a seeded
request index, and/or drop or delay that worker's reply frames with seeded
probabilities (a dropped frame leaves its waiter pending — exactly the hang
the heartbeat exists to catch).
"""

from __future__ import annotations

import asyncio
import time

from repro.store.persist import restore_preview


def _reap(process, timeout: float = 5.0) -> None:
    """Make sure a dead-or-dying worker is gone before its successor spawns
    (two processes journaling one shard directory would interleave)."""
    if process.is_alive():
        process.kill()
    process.join(timeout)


class WorkerSupervisor:
    """Detect, reap, and respawn dead shard workers for one pool.

    Parameters
    ----------
    pool:
        The owning :class:`WorkerPool`; the supervisor spawns through its
        :meth:`~repro.serving.proc.pool.WorkerPool.spawn_worker` /
        :meth:`~repro.serving.proc.pool.WorkerPool.replace_client` seam.
    ping_interval:
        Wall seconds between heartbeat sweeps (0 disables the heartbeat;
        connection-loss detection still works). Each sweep pings every
        up-state shard; a ping that errors or exceeds ``ping_timeout``
        reports the shard dead.
    ping_timeout:
        Wall seconds a single heartbeat ping may take. This is what catches
        a *hung* worker (or one whose reply frames are being dropped by the
        fault injector): the connection is alive, but nothing answers.
    backoff_base / backoff_max:
        Respawn delay is ``min(backoff_base * 2**consecutive, backoff_max)``.
    max_restarts:
        Consecutive-crash cap: once a shard has crashed this many times
        without ``stable_seconds`` of healthy uptime in between, it goes
        permanently dead and is served degraded forever.
    stable_seconds:
        Uptime after which a shard's consecutive-crash counter resets — a
        worker that crashes once a day is not crash-looping.
    """

    def __init__(
        self,
        pool,
        ping_interval: float = 0.25,
        ping_timeout: float = 2.0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        max_restarts: int = 5,
        stable_seconds: float = 5.0,
    ) -> None:
        if ping_interval < 0 or ping_timeout <= 0:
            raise ValueError("ping_interval must be >= 0 and ping_timeout > 0")
        if backoff_base < 0 or backoff_max < backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_max")
        if max_restarts < 0 or stable_seconds < 0:
            raise ValueError("max_restarts and stable_seconds must be >= 0")
        self.pool = pool
        self.ping_interval = ping_interval
        self.ping_timeout = ping_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_restarts = max_restarts
        self.stable_seconds = stable_seconds
        n = pool.n_shards
        #: Per-shard machine state: "up" | "respawning" | "dead".
        self.state = ["up"] * n
        #: Successful respawns per shard (lifetime).
        self.restarts = [0] * n
        self.total_restarts = 0
        #: Consecutive crashes since the last stable window.
        self.consecutive = [0] * n
        #: Shards that hit the crash-loop cap (or an unrecoverable error).
        self.permanent = [False] * n
        #: Engine hooks: ``on_down(shard)`` at death detection,
        #: ``on_restart(shard, restore)`` after a successful respawn
        #: (``restore`` is the worker's hello restore report or None),
        #: ``on_permanent(shard)`` when the crash-loop cap trips.
        self.on_down = None
        self.on_restart = None
        self.on_permanent = None
        #: Zero-arg callable returning the engine's tracer (or None); a
        #: callable because the tracer is attached after construction.
        self.tracer_fn = None
        self._last_recover = [0.0] * n
        self._respawn_tasks: dict[int, asyncio.Task] = {}
        self._ping_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating on the running loop (idempotent per loop)."""
        if self._stopping or self.ping_interval <= 0:
            return
        loop = asyncio.get_running_loop()
        if (
            self._ping_task is not None
            and not self._ping_task.done()
            and self._loop is loop
        ):
            return
        self._loop = loop
        self._ping_task = loop.create_task(self._heartbeat())

    def request_stop(self) -> None:
        """Synchronous stop for teardown paths without a loop: no further
        deaths are acted on; in-flight respawn tasks are cancelled."""
        self._stopping = True
        if self._ping_task is not None:
            self._ping_task.cancel()
            self._ping_task = None
        for task in self._respawn_tasks.values():
            task.cancel()
        self._respawn_tasks = {}

    async def stop(self) -> None:
        """Stop and await the heartbeat and any in-flight respawns.

        Must run before the pool tears its clients down — otherwise the
        deliberate connection closes would read as a mass worker death."""
        self._stopping = True
        tasks = []
        if self._ping_task is not None:
            self._ping_task.cancel()
            tasks.append(self._ping_task)
            self._ping_task = None
        tasks.extend(self._respawn_tasks.values())
        self._respawn_tasks = {}
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def settle(self, timeout: float = 15.0) -> bool:
        """Wait (bounded) until no shard is mid-respawn; True when quiet.

        Teardown cancels in-flight respawns, so a short chaos run that
        closes its engine right after the load loop would report
        ``worker_restarts=0`` even though recovery was underway. Callers
        whose summary should reflect the recovery (the ``--chaos-workers``
        CLI, the chaos benchmark) settle here first.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while any(state == "respawning" for state in self.state):
            if self._stopping or loop.time() >= deadline:
                return False
            await asyncio.sleep(0.02)
        return True

    # -- detection ------------------------------------------------------------
    def notify_death(self, shard: int) -> None:
        """Report shard ``shard`` dead (idempotent while it recovers).

        Called from the ShardClient connection-loss callback, the heartbeat,
        and the engine's request-path failure accounting — whichever notices
        first starts the respawn; the rest are no-ops.
        """
        if self._stopping or self.state[shard] != "up":
            return
        if (
            self._last_recover[shard]
            and time.monotonic() - self._last_recover[shard] > self.stable_seconds
        ):
            self.consecutive[shard] = 0
        self.state[shard] = "respawning"
        if self.on_down is not None:
            self.on_down(shard)
        task = asyncio.ensure_future(self._respawn(shard))
        self._respawn_tasks[shard] = task
        task.add_done_callback(
            lambda _t, shard=shard: self._respawn_tasks.pop(shard, None)
        )

    async def _heartbeat(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.ping_interval)
            for client in list(self.pool.clients):
                shard = client.shard_id
                if self.state[shard] != "up" or not client.attached:
                    continue
                try:
                    await asyncio.wait_for(client.call("ping"), self.ping_timeout)
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 - any failure means dead/hung
                    self.notify_death(shard)

    # -- recovery -------------------------------------------------------------
    async def _respawn(self, shard: int) -> None:
        pool = self.pool
        loop = asyncio.get_running_loop()
        try:
            # Fail every waiter still pending on the dead client now, rather
            # than letting them dangle until the new connection exists.
            await pool.clients[shard].aclose()
            while not self._stopping:
                if self.consecutive[shard] >= self.max_restarts:
                    self._go_permanent(shard)
                    return
                attempt = self.consecutive[shard]
                self.consecutive[shard] += 1
                await loop.run_in_executor(None, _reap, pool.processes[shard])
                delay = min(self.backoff_base * (2.0**attempt), self.backoff_max)
                if delay > 0:
                    await asyncio.sleep(delay)
                t0 = time.monotonic()
                try:
                    process, conn, restore, offset = await loop.run_in_executor(
                        None, pool.spawn_worker, pool.specs[shard]
                    )
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 - retry with more backoff
                    continue
                if restore is None and pool.specs[shard].persist_dir is not None:
                    # Older workers don't report restores in hello; preview
                    # the shard directory so the trace still says what the
                    # respawn recovered.
                    try:
                        restore = restore_preview(pool.specs[shard].persist_dir)
                    except Exception:  # noqa: BLE001 - preview is best-effort
                        restore = None
                client = pool.replace_client(shard, conn, process, clock_offset=offset)
                await client.attach()
                self.restarts[shard] += 1
                self.total_restarts += 1
                self._last_recover[shard] = time.monotonic()
                self.state[shard] = "up"
                self._trace_recover(shard, attempt, t0, restore)
                if self.on_restart is not None:
                    self.on_restart(shard, restore)
                return
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - a broken respawn path must not loop
            self._go_permanent(shard)

    def _go_permanent(self, shard: int) -> None:
        self.permanent[shard] = True
        self.state[shard] = "dead"
        if self.on_permanent is not None:
            self.on_permanent(shard)

    def _trace_recover(self, shard: int, attempt: int, t0: float, restore) -> None:
        tracer = self.tracer_fn() if self.tracer_fn is not None else None
        if tracer is None or not getattr(tracer, "live", False):
            return
        span_t0 = tracer.clock() - (time.monotonic() - t0)
        tracer.record_leaf(
            "worker_respawn", span_t0, {"shard": shard, "attempt": attempt}
        )
        attrs = {"shard": shard, "restarts": self.restarts[shard]}
        if isinstance(restore, dict):
            attrs.update(restore)
        tracer.record_leaf("shard_recover", tracer.clock(), attrs)

    def __repr__(self) -> str:
        return (
            f"WorkerSupervisor(state={self.state}, restarts={self.restarts}, "
            f"permanent={self.permanent})"
        )


class ProcFaultInjector:
    """Seeded chaos for the proc tier.

    ``kill_at`` SIGKILLs shard ``kill_shard``'s worker when the engine has
    seen that many serve calls (``on_serve`` is called once per request
    entering the proc engine's serve path, so the kill lands at a
    deterministic request index). ``drop_rate`` / ``delay_rate`` act on the
    targeted shard's *reply frames* inside the ShardClient read loop: a
    dropped frame never resolves its waiter (the supervisor's ping timeout
    is what notices), a delayed frame resolves ``delay_seconds`` late.
    """

    def __init__(
        self,
        kill_shard: int = 0,
        kill_at: int | None = None,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.01,
        seed: int = 0,
    ) -> None:
        if kill_shard < 0:
            raise ValueError(f"kill_shard must be >= 0, got {kill_shard}")
        if not 0.0 <= drop_rate <= 1.0 or not 0.0 <= delay_rate <= 1.0:
            raise ValueError("drop_rate and delay_rate must be in [0, 1]")
        if drop_rate + delay_rate > 1.0:
            raise ValueError("drop_rate + delay_rate must be <= 1")
        self.kill_shard = kill_shard
        self.kill_at = kill_at
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        import numpy as np

        self.rng = np.random.default_rng(seed)
        self.requests_seen = 0
        self.kills = 0
        self.dropped_frames = 0
        self.delayed_frames = 0

    def on_serve(self, pool) -> None:
        """Count one serve call; fire the seeded kill when its index comes."""
        index = self.requests_seen
        self.requests_seen += 1
        if self.kill_at is not None and index == self.kill_at:
            self.kill_worker(pool)

    def kill_worker(self, pool) -> bool:
        """SIGKILL the targeted shard's worker (no cleanup, no flush — the
        worker gets exactly the death an OOM kill would deliver)."""
        import os
        import signal

        if self.kill_shard >= len(pool.processes):
            return False
        process = pool.processes[self.kill_shard]
        if process.pid is None or not process.is_alive():
            return False
        os.kill(process.pid, signal.SIGKILL)
        self.kills += 1
        return True

    def frame_action(self, shard_id: int) -> tuple[str, float]:
        """Fate of one reply frame from ``shard_id``:
        ``("deliver"|"drop", delay_seconds)``."""
        if shard_id != self.kill_shard or (
            self.drop_rate <= 0.0 and self.delay_rate <= 0.0
        ):
            return ("deliver", 0.0)
        draw = float(self.rng.random())
        if draw < self.drop_rate:
            self.dropped_frames += 1
            return ("drop", 0.0)
        if draw < self.drop_rate + self.delay_rate:
            self.delayed_frames += 1
            return ("deliver", self.delay_seconds)
        return ("deliver", 0.0)

    def summary(self) -> dict:
        return {
            "kills": self.kills,
            "dropped_frames": self.dropped_frames,
            "delayed_frames": self.delayed_frames,
            "requests_seen": self.requests_seen,
        }

    def __repr__(self) -> str:
        return (
            f"ProcFaultInjector(kill_shard={self.kill_shard}, "
            f"kill_at={self.kill_at}, kills={self.kills})"
        )
