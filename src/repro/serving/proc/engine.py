"""The multi-process front door: ``AsyncAsteriaEngine`` over a worker pool.

:class:`ProcAsteriaEngine` subclasses the asyncio engine and overrides
exactly its two cache access points (``_sine_lookup`` and ``_admit``) to go
through the :class:`~repro.serving.proc.pool.WorkerPool` instead of an
in-process cache. Everything else — backpressure, deadlines, the
single-flight layer, resilience (breaker / negative cache / stale serving),
retry accounting, and every ``EngineMetrics`` counter — is the inherited
code running unmodified at the router, which is what makes the proc
engine's metrics *exactly* aggregate: there is only one accountant.

Division of labour per request:

* **worker** — expiry purge, embed, ANN search, judging, and (on admitted
  misses) the insert with its evictions: all the GIL-heavy CPU work.
* **router** — shard routing (same stable crc32 hash as the sharded cache),
  remote fetches (keeping the seeded remote RNG a single ordered stream),
  cross-process single-flight (two concurrent misses for one canonical key
  share one fetch *and* one insert even when served to different callers),
  degradation, and metric recording against the piggybacked shard stats.

The router never sees an embedding: lookup replies carry wire-level
``SineResult`` structures whose elements are embedding-less, and the
accounting path doesn't read vectors. Stage spans for worker-side work
(embed / ann_search / judge) are not traced — the tracer observes
router-side stages only (request, remote_fetch, admit).
"""

from __future__ import annotations

from repro.core.config import AsteriaConfig
from repro.core.engine import AsteriaEngine
from repro.core.metrics import EngineMetrics  # noqa: F401  (re-exported docs)
from repro.core.resilience import ResilienceManager
from repro.network.remote import RemoteDataService
from repro.serving.aio.engine import AsyncAsteriaEngine, AsyncOutcome
from repro.serving.aio.remote import AsyncRemoteService
from repro.serving.proc.pool import WorkerPool


class _TauHolder:
    """Stands in for ``cache.sine``: the engine writes its thresholds here at
    construction; workers got the same values via their spec's config."""

    def __init__(self) -> None:
        self.tau_sim = 0.0
        self.tau_lsm = 0.0
        self.max_candidates = 1


class _RouterCacheView:
    """The router-side stand-in for the sharded cache.

    Reads resolve against the piggybacked per-shard stats tuples
    (:meth:`WorkerPool.stats_snapshot`), which every worker reply refreshes
    *before* its waiter resumes — so ``stats``/``usage()`` observed after an
    awaited lookup or insert are at least as fresh as that operation, and
    ``AsteriaEngine._record_response``'s eviction/expiration sync is exact.
    """

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self.sine = _TauHolder()
        self.tracer = None

    @property
    def stats(self):
        return self.pool.stats_snapshot()

    def usage(self) -> int:
        return self.pool.usage_snapshot()

    @property
    def capacity_items(self) -> int | None:
        return self.pool.capacity_items

    def set_tracer(self, tracer) -> None:
        # Worker-side stages (embed/ann_search/judge) are untraced; the
        # router's spans don't cross the process boundary.
        self.tracer = tracer

    def __len__(self) -> int:
        return self.usage()

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"_RouterCacheView(shards={self.pool.n_shards})"


class ProcAsteriaEngine(AsyncAsteriaEngine):
    """Asyncio front door routing to per-shard worker processes.

    Parameters mirror :class:`AsyncAsteriaEngine` where they apply; the
    cache-side knobs live in the pool's :class:`WorkerSpec`. The pool must
    already be launched (or launchable) — attachment to the running event
    loop happens lazily on the first served request.
    """

    def __init__(
        self,
        pool: WorkerPool,
        remote: RemoteDataService,
        config: AsteriaConfig | None = None,
        resilience: ResilienceManager | None = None,
        io_pause_scale: float = 0.0,
        max_inflight: int = 256,
        default_deadline: float | None = None,
        follower_timeout: float | None = None,
        name: str = "asteria-proc",
    ) -> None:
        config = config if config is not None else AsteriaConfig()
        view = _RouterCacheView(pool)
        inner = AsteriaEngine(
            view, remote, config, resilience=resilience, name=name
        )
        super().__init__(
            inner,
            remote=AsyncRemoteService(remote, io_pause_scale=io_pause_scale),
            max_inflight=max_inflight,
            default_deadline=default_deadline,
            follower_timeout=follower_timeout,
        )
        self.pool = pool

    # -- the two cache access points ------------------------------------------
    async def _sine_lookup(self, query, now, prepared=None):
        # `prepared` (the in-process stage-1 snapshot) never applies here:
        # frame-level accumulation in the ShardClient is the batching tier.
        return await self.pool.lookup(query, now)

    async def _admit(self, query, fetch, arrival) -> None:
        await self.pool.insert(query, fetch, arrival)

    # -- serving ----------------------------------------------------------------
    async def _serve_outer(self, query, now, deadline, serve=None) -> AsyncOutcome:
        if not self.pool.attached:
            await self.pool.attach()
        return await super()._serve_outer(query, now, deadline, serve=serve)

    async def serve_batched(self, query, now: float = 0.0, deadline=None):
        """Batching happens per shard at the wire (the ShardClient's
        accumulation window), so the scalar path *is* the batched path."""
        return await self.serve(query, now, deadline)

    # -- lifecycle ----------------------------------------------------------------
    async def drain(self) -> None:
        self.pool.flush()
        await super().drain()

    async def aclose(self) -> None:
        """Drain in-flight work, then stop the worker processes."""
        await self.drain()
        await self.pool.shutdown()

    async def __aenter__(self) -> "ProcAsteriaEngine":
        if not self.pool.attached:
            await self.pool.attach()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return (
            f"ProcAsteriaEngine(name={self.name!r}, shards={self.pool.n_shards}, "
            f"max_inflight={self.max_inflight}, inflight={self.inflight})"
        )
