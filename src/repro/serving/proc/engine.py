"""The multi-process front door: ``AsyncAsteriaEngine`` over a worker pool.

:class:`ProcAsteriaEngine` subclasses the asyncio engine and overrides
exactly its two cache access points (``_sine_lookup`` and ``_admit``) to go
through the :class:`~repro.serving.proc.pool.WorkerPool` instead of an
in-process cache. Everything else — backpressure, deadlines, the
single-flight layer, resilience (breaker / negative cache / stale serving),
retry accounting, and every ``EngineMetrics`` counter — is the inherited
code running unmodified at the router, which is what makes the proc
engine's metrics *exactly* aggregate: there is only one accountant.

Division of labour per request:

* **worker** — expiry purge, embed, ANN search, judging, and (on admitted
  misses) the insert with its evictions: all the GIL-heavy CPU work.
* **router** — shard routing (same stable crc32 hash as the sharded cache),
  remote fetches (keeping the seeded remote RNG a single ordered stream),
  cross-process single-flight (two concurrent misses for one canonical key
  share one fetch *and* one insert even when served to different callers),
  degradation, and metric recording against the piggybacked shard stats.

The router never sees an embedding: lookup replies carry wire-level
``SineResult`` structures whose elements are embedding-less, and the
accounting path doesn't read vectors. Worker-side stage spans (embed /
ann_search / judge / evict) *are* traced when a tracer is attached: the
router stamps each lookup/insert with its request's ``[trace_id,
parent_span_id]`` context, workers record the stages under that remote
parent, and the completed records ride back on reply frames where
:func:`~repro.obs.distributed.graft_spans` re-bases them onto the router's
clock using the per-worker offset estimated at the hello handshake
(DESIGN §16).
"""

from __future__ import annotations

import time

from repro.core.config import AsteriaConfig
from repro.core.engine import AsteriaEngine, EngineResponse
from repro.core.metrics import EngineMetrics  # noqa: F401  (re-exported docs)
from repro.core.resilience import CircuitBreaker, ResilienceManager
from repro.core.types import CacheLookup
from repro.network.remote import RemoteDataService, RemoteFetchError
from repro.obs.distributed import make_span_sink, trace_context
from repro.serving.aio.engine import AsyncAsteriaEngine, AsyncOutcome
from repro.serving.aio.remote import AsyncRemoteService
from repro.serving.proc.pool import WorkerError, WorkerPool


class _TauHolder:
    """Stands in for ``cache.sine``: the engine writes its thresholds here at
    construction; workers got the same values via their spec's config."""

    def __init__(self) -> None:
        self.tau_sim = 0.0
        self.tau_lsm = 0.0
        self.max_candidates = 1


class _RouterCacheView:
    """The router-side stand-in for the sharded cache.

    Reads resolve against the piggybacked per-shard stats tuples
    (:meth:`WorkerPool.stats_snapshot`), which every worker reply refreshes
    *before* its waiter resumes — so ``stats``/``usage()`` observed after an
    awaited lookup or insert are at least as fresh as that operation, and
    ``AsteriaEngine._record_response``'s eviction/expiration sync is exact.
    """

    def __init__(self, pool: WorkerPool) -> None:
        self.pool = pool
        self.sine = _TauHolder()
        self.tracer = None

    @property
    def stats(self):
        return self.pool.stats_snapshot()

    def usage(self) -> int:
        return self.pool.usage_snapshot()

    @property
    def capacity_items(self) -> int | None:
        return self.pool.capacity_items

    def set_tracer(self, tracer) -> None:
        # The pool grafts worker-side span records (piggybacked on reply
        # frames) straight into this tracer; detaching (tracer=None)
        # removes the sink so replies drop any stray records on the floor.
        self.tracer = tracer
        self.pool.span_sink = make_span_sink(tracer)

    def __len__(self) -> int:
        return self.usage()

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"_RouterCacheView(shards={self.pool.n_shards})"


class ProcAsteriaEngine(AsyncAsteriaEngine):
    """Asyncio front door routing to per-shard worker processes.

    Parameters mirror :class:`AsyncAsteriaEngine` where they apply; the
    cache-side knobs live in the pool's :class:`WorkerSpec`. The pool must
    already be launched (or launchable) — attachment to the running event
    loop happens lazily on the first served request.
    """

    def __init__(
        self,
        pool: WorkerPool,
        remote: RemoteDataService,
        config: AsteriaConfig | None = None,
        resilience: ResilienceManager | None = None,
        io_pause_scale: float = 0.0,
        max_inflight: int = 256,
        default_deadline: float | None = None,
        follower_timeout: float | None = None,
        fault_domains: bool = True,
        shard_open_seconds: float = 0.5,
        proc_faults=None,
        name: str = "asteria-proc",
    ) -> None:
        config = config if config is not None else AsteriaConfig()
        view = _RouterCacheView(pool)
        inner = AsteriaEngine(
            view, remote, config, resilience=resilience, name=name
        )
        super().__init__(
            inner,
            remote=AsyncRemoteService(remote, io_pause_scale=io_pause_scale),
            max_inflight=max_inflight,
            default_deadline=default_deadline,
            follower_timeout=follower_timeout,
        )
        self.pool = pool
        #: With ``fault_domains`` on, a request routed to a dead/recovering
        #: shard degrades *per domain* (stale hit, direct remote fetch, or
        #: explicit failure) instead of surfacing a WorkerError; off, shard
        #: death propagates like any other exception (the benchmark's
        #: contrast arm and the pre-supervision behavior).
        self.fault_domains = fault_domains
        #: One wall-clock breaker per shard: connection loss trips it open
        #: immediately (threshold 1.0 over a 1-outcome window), and half-open
        #: probes rediscover an unsupervised recovery; the supervisor
        #: force-resets it on a confirmed respawn. The *global* breaker in
        #: ``engine.resilience`` stays reserved for backend faults.
        self.shard_breakers = [
            CircuitBreaker(
                failure_threshold=1.0,
                window=1,
                min_samples=1,
                open_seconds=shard_open_seconds,
                half_open_probes=1,
            )
            for _ in range(pool.n_shards)
        ]
        #: Per-shard count of *flights* charged as shard failures (coalesced
        #: waiters sharing one teardown exception count once).
        self.shard_failures = [0] * pool.n_shards
        #: Optional chaos hook (see ProcFaultInjector.on_serve).
        self.proc_faults = proc_faults
        if pool.supervisor is not None:
            pool.supervisor.on_down = self._on_shard_down
            pool.supervisor.on_restart = self._on_shard_restart
            pool.supervisor.tracer_fn = lambda: self.engine.tracer

    # -- supervisor hooks -------------------------------------------------------
    def _on_shard_down(self, shard: int) -> None:
        if self.fault_domains:
            breaker = self.shard_breakers[shard]
            if breaker.state == "closed":
                breaker.record_failure(time.monotonic())

    def _on_shard_restart(self, shard: int, restore) -> None:
        self.metrics.worker_restarts += 1
        if self.fault_domains:
            self.shard_breakers[shard].reset(time.monotonic())

    def _shard_failure(self, shard: int, exc: WorkerError) -> None:
        """Charge one failed flight to a shard's fault domain.

        Dedups on the exception object (the ShardClient teardown shares one
        instance across every pending waiter; batched lookups already share
        their frame's), mirroring ``_account_failure``'s marker scheme —
        breaker windows count flights, not disappointed callers.
        """
        if getattr(exc, "_shard_accounted", False):
            return
        exc._shard_accounted = True
        self.shard_failures[shard] += 1
        self.shard_breakers[shard].record_failure(time.monotonic())
        if self.pool.supervisor is not None:
            self.pool.supervisor.notify_death(shard)

    def _shard_allow(self, shard: int, now: float) -> bool:
        supervisor = self.pool.supervisor
        if supervisor is not None and supervisor.permanent[shard]:
            return False
        return self.shard_breakers[shard].allow(now)

    # -- the two cache access points ------------------------------------------
    async def _sine_lookup(self, query, now, prepared=None):
        # `prepared` (the in-process stage-1 snapshot) never applies here:
        # frame-level accumulation in the ShardClient is the batching tier.
        # `ctx` carries the current request span's identity across the
        # process boundary (None on untraced/unsampled traffic — the frame
        # stays byte-identical to the pre-tracing wire).
        return await self.pool.lookup(
            query, now, ctx=trace_context(self.engine.tracer)
        )

    async def _admit(self, query, fetch, arrival) -> None:
        try:
            await self.pool.insert(
                query, fetch, arrival, ctx=trace_context(self.engine.tracer)
            )
        except WorkerError as exc:
            if not self.fault_domains:
                raise
            # The fetch itself succeeded — the caller (and any coalesced
            # followers) still get a fresh payload; only the cache insert is
            # lost. Swallowing here keeps single-flight leader flights from
            # failing after the worker died mid-admission.
            self._shard_failure(self.pool.shard_for(query.text), exc)

    # -- serving ----------------------------------------------------------------
    async def _serve_outer(self, query, now, deadline, serve=None) -> AsyncOutcome:
        if not self.pool.attached:
            await self.pool.attach()
        return await super()._serve_outer(query, now, deadline, serve=serve)

    async def _serve(self, query, now, prepared=None) -> EngineResponse:
        """The inherited serve path wrapped in this shard's fault domain.

        Cacheable requests consult their target shard's breaker first: a
        known-dead shard routes straight to the degraded path without
        touching the wire. A WorkerError escaping the inherited path (the
        shard died under this request) is charged to the shard's domain and
        the request completes degraded — a raw WorkerError never reaches
        ``serve()``'s caller while fault domains are on.
        """
        if self.proc_faults is not None:
            self.proc_faults.on_serve(self.pool)
        engine = self.engine
        if not self.fault_domains or not engine._is_cacheable(query):
            return await super()._serve(query, now, prepared=prepared)
        shard = self.pool.shard_for(query.text)
        breaker = self.shard_breakers[shard]
        if not self._shard_allow(shard, time.monotonic()):
            return await self._serve_shard_down(query, shard, now)
        try:
            response = await super()._serve(query, now, prepared=prepared)
        except WorkerError as exc:
            self._shard_failure(shard, exc)
            return await self._serve_shard_down(query, shard, now)
        # Closed-state successes aren't recorded (a 1-slot window needs no
        # success history); a granted half-open probe that came back is the
        # recovery signal that re-closes an unsupervised breaker.
        if breaker.state != "closed":
            breaker.record_success(time.monotonic())
        return response

    async def _serve_shard_down(self, query, shard: int, now: float) -> EngineResponse:
        """Per-domain degradation for a dead/recovering shard.

        Decision ladder: last-known-good stale hit if the StaleStore has
        one; else a direct remote fetch that bypasses the cache (gated by
        the *global* resilience admission, still single-flighted, counted in
        ``shard_down_fetches``); else an explicit failure. Healthy shards
        never see this path.
        """
        engine = self.engine
        key = engine._resilience_key(query)
        lookup = CacheLookup(status="miss", result=None, latency=0.0)
        entry = engine.resilience.stale_for(key, now)
        if entry is not None:
            engine.metrics.stale_hits += 1
            response = EngineResponse(
                result=entry.fetch.result,
                latency=lookup.latency,
                lookup=lookup,
                degraded="stale_hit",
            )
            engine._record_degraded(response, query, now)
            return response
        verdict = engine.resilience.admit(key, now)
        if verdict != "allow":
            # The backend is in trouble too (negative-cached key or open
            # global breaker): no bypass fetch, fall through to failed.
            if verdict == "negative":
                engine.metrics.negative_cache_hits += 1
            else:
                engine.metrics.breaker_open_rejects += 1
            return self._degrade(query, lookup, key, now, now)
        self.metrics.shard_down_fetches += 1
        try:
            fetch, shared = await self.singleflight.run(
                key,
                lambda: self._fetch_bypass(query, now, key),
                timeout=self.follower_timeout,
            )
        except RemoteFetchError as exc:
            engine._account_failure(key, exc, now + exc.latency)
            return self._degrade(query, lookup, key, now, now, wasted=exc.latency)
        response = engine._bypass_response(fetch, fetch.latency)
        self._record(response, query, now, shared=shared)
        return response

    async def _fetch_bypass(self, query, start: float, key) -> "object":
        """Leader flight for a shard-down request: retrying remote fetch,
        success banked as last-known-good, *no* cache admission (the shard
        that would hold it is down)."""
        fetch, overhead, _ = await self._fetch_retrying(query, start)
        self.engine.resilience.on_success(key, fetch, start + overhead + fetch.latency)
        return fetch

    async def serve_batched(self, query, now: float = 0.0, deadline=None):
        """Batching happens per shard at the wire (the ShardClient's
        accumulation window), so the scalar path *is* the batched path."""
        return await self.serve(query, now, deadline)

    # -- lifecycle ----------------------------------------------------------------
    async def drain(self) -> None:
        self.pool.flush()
        await super().drain()

    async def aclose(self) -> None:
        """Drain in-flight work, then stop the worker processes."""
        await self.drain()
        await self.pool.shutdown()

    async def __aenter__(self) -> "ProcAsteriaEngine":
        if not self.pool.attached:
            await self.pool.attach()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return (
            f"ProcAsteriaEngine(name={self.name!r}, shards={self.pool.n_shards}, "
            f"max_inflight={self.max_inflight}, inflight={self.inflight})"
        )
