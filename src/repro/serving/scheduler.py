"""The priority-aware admission controller (§4.4, Figure 6).

Two queues feed the GPU: the latency-critical agent queue (Q_A) and the
deferrable judger queue (Q_J). The scheduler services Q_A exhaustively —
agent work is dispatched as soon as a batch slot and its memory allocation
are available — and admits a judger batch only when the agent queue is
empty (no agent work waiting for compute) and the judger's slot and memory
demands are met. Deferred judger work is never
dropped; it just waits, which at worst degrades one cache lookup to the
non-cached path (the paper's argument for why deferral is safe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.core.metrics import LatencyStats
from repro.serving.gpu import GpuPartition
from repro.serving.memory import KVMemoryPool
from repro.sim.events import Event
from repro.sim.kernel import Simulator


@dataclass
class SchedulerStats:
    """Counters for admission behaviour."""

    agent_dispatched: int = 0
    judger_dispatched: int = 0
    judger_deferred: int = 0
    judger_batches: int = 0
    agent_wait: LatencyStats = field(default_factory=LatencyStats)
    judger_wait: LatencyStats = field(default_factory=LatencyStats)


class _Pending:
    __slots__ = ("work", "memory_gb", "done", "enqueued_at")

    def __init__(self, work: float, memory_gb: float, done: Event, enqueued_at: float):
        self.work = work
        self.memory_gb = memory_gb
        self.done = done
        self.enqueued_at = enqueued_at


class PriorityAwareScheduler:
    """Admission control over an agent partition, a judger partition, and a pool.

    Parameters
    ----------
    sim:
        The simulator.
    agent_partition / judger_partition:
        Compute partitions (may live on the same :class:`GpuDevice` for
        co-location, or on different devices for the dedicated baseline).
    memory:
        The unified :class:`KVMemoryPool`; None disables memory admission.
    agent_kv_gb / judger_kv_gb:
        Default memory footprint per agent request / judger batch. The
        judger's is small and predictable (prefill-only single-token
        inference, §4.4).
    shared:
        True when both partitions share one device (co-location): judger
        admission then defers to the agent queue. False for the dedicated
        two-GPU baseline, where the judger admits independently.
    judger_batch_max:
        Maximum waiting judger submissions coalesced into one partition
        execution (default 1 = no coalescing, the paper's per-lookup
        dispatch). Judger validation is prefill-only single-token inference,
        so a fleet's concurrent lookups batch naturally; coalescing spends
        one batch slot for the whole group.
    """

    def __init__(
        self,
        sim: Simulator,
        agent_partition: GpuPartition,
        judger_partition: GpuPartition,
        memory: KVMemoryPool | None = None,
        agent_kv_gb: float = 1.0,
        judger_kv_gb: float = 0.05,
        shared: bool = True,
        judger_batch_max: int = 1,
    ) -> None:
        if agent_kv_gb < 0 or judger_kv_gb < 0:
            raise ValueError("memory footprints must be >= 0")
        if judger_batch_max < 1:
            raise ValueError("judger_batch_max must be >= 1")
        self.sim = sim
        self.agent_partition = agent_partition
        self.judger_partition = judger_partition
        self.memory = memory
        self.agent_kv_gb = agent_kv_gb
        self.judger_kv_gb = judger_kv_gb
        self.shared = shared
        self.judger_batch_max = judger_batch_max
        self.stats = SchedulerStats()
        self._agent_waiting: list[_Pending] = []
        self._judger_waiting: list[_Pending] = []
        # Admitted-but-unfinished counts, updated synchronously at admission
        # time (the partition's own in_use updates asynchronously).
        self._agent_active = 0
        self._judger_active = 0

    # -- public API ---------------------------------------------------------
    def submit_agent(self, work: float, memory_gb: float | None = None) -> Generator:
        """Run ``work`` full-GPU seconds of agent inference (process-style).

        Waits for memory, then executes on the agent partition. Returns the
        execution wall time.
        """
        pending = self._enqueue(
            self._agent_waiting, work, memory_gb, self.agent_kv_gb
        )
        self._dispatch()
        yield pending.done
        return pending.done.value

    def submit_judger(self, work: float, memory_gb: float | None = None) -> Generator:
        """Run a judger batch of ``work`` full-GPU seconds (process-style).

        Deferred while agent work is queued or memory is tight. Returns the
        execution wall time.
        """
        pending = self._enqueue(
            self._judger_waiting, work, memory_gb, self.judger_kv_gb
        )
        self._dispatch()
        yield pending.done
        return pending.done.value

    @property
    def agent_queue_length(self) -> int:
        """Agent requests waiting for admission or a slot."""
        return len(self._agent_waiting) + self.agent_partition.queue_length

    # -- internals ----------------------------------------------------------------
    def _enqueue(
        self,
        queue: list[_Pending],
        work: float,
        memory_gb: float | None,
        default_gb: float,
    ) -> _Pending:
        if work < 0:
            raise ValueError("work must be >= 0")
        footprint = memory_gb if memory_gb is not None else default_gb
        pending = _Pending(work, footprint, Event(self.sim), self.sim.now)
        queue.append(pending)
        return pending

    def _dispatch(self) -> None:
        # Q_A exhaustively first.
        admitted = True
        while admitted and self._agent_waiting:
            admitted = self._try_admit_agent()
        # Q_J only once Q_A is drained (always, when nothing is shared).
        if not self.shared or not self._agent_waiting:
            admitted = True
            while admitted and self._judger_waiting:
                admitted = self._try_admit_judger()
        elif self._judger_waiting:
            self.stats.judger_deferred += 1

    def _try_admit_agent(self) -> bool:
        pending = self._agent_waiting[0]
        if self._agent_active >= self.agent_partition.slots:
            return False
        if self.memory is not None and not self.memory.allocate(
            "agent", pending.memory_gb
        ):
            return False
        self._agent_waiting.pop(0)
        self._agent_active += 1
        self.stats.agent_dispatched += 1
        self.stats.agent_wait.add(self.sim.now - pending.enqueued_at)
        self.sim.process(self._run(pending, self.agent_partition, "agent"))
        return True

    def _try_admit_judger(self) -> bool:
        """Admit up to ``judger_batch_max`` waiting judger submissions.

        The batch occupies one partition slot and executes as one combined
        run (judger work is additive prefill compute); memory is allocated
        per submission, so the batch shrinks to whatever fits.
        """
        if self._judger_active >= self.judger_partition.slots:
            return False
        batch: list[_Pending] = []
        for pending in self._judger_waiting[: self.judger_batch_max]:
            if self.memory is not None and not self.memory.allocate(
                "judger", pending.memory_gb
            ):
                break
            batch.append(pending)
        if not batch:
            return False
        del self._judger_waiting[: len(batch)]
        self._judger_active += 1
        self.stats.judger_dispatched += len(batch)
        self.stats.judger_batches += 1
        for pending in batch:
            self.stats.judger_wait.add(self.sim.now - pending.enqueued_at)
        self.sim.process(self._run_judger_batch(batch))
        return True

    def _run(
        self, pending: _Pending, partition: GpuPartition, workload: str
    ) -> Generator:
        try:
            duration = yield from partition.execute(pending.work)
        finally:
            if self.memory is not None:
                self.memory.release(workload, pending.memory_gb)
            if workload == "agent":
                self._agent_active -= 1
            else:
                self._judger_active -= 1
        pending.done.succeed(duration)
        self._dispatch()

    def _run_judger_batch(self, batch: list[_Pending]) -> Generator:
        try:
            duration = yield from self.judger_partition.execute(
                sum(pending.work for pending in batch)
            )
        finally:
            if self.memory is not None:
                for pending in batch:
                    self.memory.release("judger", pending.memory_gb)
            self._judger_active -= 1
        for pending in batch:
            pending.done.succeed(duration)
        self._dispatch()

    def __repr__(self) -> str:
        return (
            f"PriorityAwareScheduler(agent_waiting={len(self._agent_waiting)}, "
            f"judger_waiting={len(self._judger_waiting)})"
        )
