"""Load generation for the asyncio serving front-end.

Two shapes, matching how serving systems are actually measured:

``run_open_loop``
    Arrivals on a fixed schedule (``rate`` requests per wall second),
    independent of completions — the generator never slows down because the
    server is struggling, so overload shows up as ``overloaded`` /
    ``deadline_exceeded`` outcomes instead of silently stretched
    inter-arrival gaps (the coordinated-omission trap of closed loops).
``run_closed_loop``
    ``concurrency`` virtual clients, each serving one request to completion
    before claiming the next — the async twin of
    :meth:`ConcurrentEngine.run_closed_loop`, kept for apples-to-apples
    throughput comparisons at matched outstanding-request counts.

Both run every request through :meth:`AsyncAsteriaEngine.serve` and report
deltas, so warm engines can be measured across several runs.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.types import Query
from repro.serving.aio.engine import AsyncAsteriaEngine, AsyncOutcome


@dataclass(frozen=True, slots=True)
class AsyncLoadReport:
    """Outcome of one async load run (wall-clock, not virtual time)."""

    mode: str
    requests: int
    completed: int
    overloaded: int
    deadline_exceeded: int
    wall_seconds: float
    throughput_rps: float
    hits: int
    misses: int
    hit_rate: float
    coalesced_misses: int
    remote_calls: int
    hedged_fetches: int
    p50_wall: float
    p99_wall: float
    rate: float | None = None
    concurrency: int | None = None
    #: Degraded outcomes (fault tolerance): answered stale / explicit
    #: failures / refused up-front by the open breaker.
    stale_served: int = 0
    failed: int = 0
    breaker_open_rejects: int = 0

    @property
    def served_fraction(self) -> float:
        """Fraction of requests answered with *some* payload (fresh or
        stale) — the chaos benchmark's availability headline."""
        if self.requests == 0:
            return 1.0
        return (self.completed + self.stale_served) / self.requests

    def summary(self) -> dict:
        """Plain-dict snapshot for serialisation."""
        out = {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "overloaded": self.overloaded,
            "deadline_exceeded": self.deadline_exceeded,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "coalesced_misses": self.coalesced_misses,
            "remote_calls": self.remote_calls,
            "hedged_fetches": self.hedged_fetches,
            "p50_wall": round(self.p50_wall, 5),
            "p99_wall": round(self.p99_wall, 5),
            "stale_served": self.stale_served,
            "failed": self.failed,
            "breaker_open_rejects": self.breaker_open_rejects,
            "served_fraction": round(self.served_fraction, 4),
        }
        if self.rate is not None:
            out["rate"] = self.rate
        if self.concurrency is not None:
            out["concurrency"] = self.concurrency
        return out


def _report(
    engine: AsyncAsteriaEngine,
    outcomes: Sequence[AsyncOutcome],
    wall: float,
    before: dict,
    remote_before: int,
    mode: str,
    rate: float | None = None,
    concurrency: int | None = None,
) -> AsyncLoadReport:
    after = engine.metrics.summary()
    completed = sum(1 for outcome in outcomes if outcome.ok)
    walls = [outcome.wall_latency for outcome in outcomes if outcome.ok]
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    cacheable = hits + misses
    return AsyncLoadReport(
        mode=mode,
        requests=len(outcomes),
        completed=completed,
        overloaded=after["overloaded"] - before["overloaded"],
        deadline_exceeded=after["deadline_exceeded"] - before["deadline_exceeded"],
        wall_seconds=wall,
        throughput_rps=completed / wall if wall > 0 else float("inf"),
        hits=hits,
        misses=misses,
        hit_rate=hits / cacheable if cacheable else 0.0,
        coalesced_misses=after["coalesced_misses"] - before["coalesced_misses"],
        remote_calls=engine.remote.calls - remote_before,
        hedged_fetches=after["hedged_fetches"] - before["hedged_fetches"],
        p50_wall=float(np.percentile(walls, 50)) if walls else 0.0,
        p99_wall=float(np.percentile(walls, 99)) if walls else 0.0,
        rate=rate,
        concurrency=concurrency,
        stale_served=after["stale_hits"] - before["stale_hits"],
        failed=after["failed_requests"] - before["failed_requests"],
        breaker_open_rejects=(
            after["breaker_open_rejects"] - before["breaker_open_rejects"]
        ),
    )


async def run_open_loop(
    engine: AsyncAsteriaEngine,
    queries: Sequence[Query],
    rate: float,
    time_step: float = 0.0,
    deadline: float | None = None,
    start: float = 0.0,
    stop: asyncio.Event | None = None,
) -> AsyncLoadReport:
    """Serve ``queries`` at a fixed arrival rate (requests per wall second).

    Request *i* is launched at wall offset ``i / rate`` whether or not
    earlier requests have completed; backpressure and deadlines decide what
    happens when the server cannot keep up. Query *i* carries simulated
    time ``start + i * time_step``.

    ``stop`` (optional) ends the arrival schedule early once set: no new
    requests launch, but everything already in flight is gathered and the
    engine drained, so a signal handler gets a complete report of the
    requests that actually ran.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    queries = list(queries)
    before = engine.metrics.summary()
    remote_before = engine.remote.calls
    tasks: list[asyncio.Task] = []
    begin = time.perf_counter()
    for i, query in enumerate(queries):
        if stop is not None and stop.is_set():
            break
        delay = (begin + i / rate) - time.perf_counter()
        if delay > 0:
            if stop is not None:
                # Sleep until the next arrival *or* the stop flag, whichever
                # comes first — a TERM mid-gap shouldn't wait out the gap.
                try:
                    await asyncio.wait_for(stop.wait(), timeout=delay)
                    break
                except asyncio.TimeoutError:
                    pass
            else:
                await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                engine.serve(query, start + i * time_step, deadline=deadline)
            )
        )
    outcomes = await asyncio.gather(*tasks)
    await engine.drain()
    wall = time.perf_counter() - begin
    return _report(
        engine, outcomes, wall, before, remote_before, mode="open", rate=rate
    )


async def run_closed_loop(
    engine: AsyncAsteriaEngine,
    queries: Sequence[Query],
    concurrency: int,
    time_step: float = 0.0,
    deadline: float | None = None,
    start: float = 0.0,
    stop: asyncio.Event | None = None,
) -> AsyncLoadReport:
    """Serve ``queries`` with ``concurrency`` closed-loop virtual clients.

    Each client claims the next query from a shared cursor and serves it to
    completion before claiming another, so at most ``concurrency`` requests
    are outstanding — the direct counterpart of the thread pool's
    ``run_closed_loop`` at ``workers=concurrency``.

    ``stop`` (optional) is checked before each claim: once set, clients
    finish their in-flight request and exit, and the report covers the
    requests actually served.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    queries = list(queries)
    outcomes: list[AsyncOutcome | None] = [None] * len(queries)
    cursor = iter(range(len(queries)))

    async def client() -> None:
        for i in cursor:  # next(cursor) is atomic: no await between claims
            if stop is not None and stop.is_set():
                return
            outcomes[i] = await engine.serve(
                queries[i], start + i * time_step, deadline=deadline
            )

    before = engine.metrics.summary()
    remote_before = engine.remote.calls
    begin = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(concurrency)))
    await engine.drain()
    wall = time.perf_counter() - begin
    return _report(
        engine,
        # Unfilled slots only exist when `stop` ended the run early.
        [outcome for outcome in outcomes if outcome is not None],
        wall,
        before,
        remote_before,
        mode="closed",
        concurrency=concurrency,
    )
