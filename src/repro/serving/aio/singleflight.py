"""Await-based single-flight suppression of duplicate in-flight work.

The asyncio twin of :class:`repro.serving.singleflight.SingleFlight`: the
first task to miss on a key becomes the *leader* and executes the fetch;
tasks that miss on the same key while it is in flight become *followers* and
``await`` the leader's outcome instead of blocking a thread.

Two deliberate differences from the thread version, both driven by
cancellation (which threads do not have):

* The leader's coroutine runs as its **own task**, and every caller —
  leader included — awaits it through :func:`asyncio.shield`. A caller whose
  per-request deadline fires is cancelled *at the shield*, not inside the
  fetch, so the flight keeps running in the background, completes, and (in
  the engine's case) still admits its result into the cache. One impatient
  caller can never poison the flight for the others.
* ``run(..., timeout=...)`` gives followers a bounded wait: a follower that
  times out behind a stuck leader stops waiting and leads its own private
  fetch (counted in :attr:`timeouts`), mirroring the thread version's
  ``event.wait(timeout)`` fallback semantics.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, TypeVar

T = TypeVar("T")


def _retrieve(task: "asyncio.Task") -> None:
    """Mark a flight's exception as retrieved (all awaiters may have been
    cancelled by their deadlines, and an unobserved exception would log)."""
    if not task.cancelled():
        task.exception()


class AsyncSingleFlight:
    """Per-key duplicate-call suppression across asyncio tasks.

    ``await run(key, fn)`` returns ``(result, shared)``: ``shared`` is False
    for the leader whose flight actually executed ``fn()`` and True for
    followers that reused its in-flight result. Calls arriving after a
    flight completes start a fresh one — suppression applies only to overlap
    in time, so a retry after a failed fetch is never poisoned by stale
    results. Not thread-safe: one instance belongs to one event loop.
    """

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Task] = {}
        #: Flights led (each one real unit of work).
        self.leaders = 0
        #: Calls served by someone else's flight (work saved).
        self.shared = 0
        #: Followers that gave up waiting and led their own private fetch.
        self.timeouts = 0

    async def run(
        self,
        key: Hashable,
        fn: Callable[[], Awaitable[T]],
        timeout: float | None = None,
    ) -> tuple[T, bool]:
        """Execute ``fn`` once per concurrent ``key``; see class docstring.

        ``timeout`` bounds only a *follower's* wait on the leader: on expiry
        the follower runs ``fn()`` itself (a private fetch — later arrivals
        still join the original flight) and returns ``(result, False)``.
        """
        task = self._inflight.get(key)
        if task is None:
            self.leaders += 1
            task = asyncio.ensure_future(fn())
            task.add_done_callback(_retrieve)
            task.add_done_callback(lambda _t: self._inflight.pop(key, None))
            self._inflight[key] = task
            return await asyncio.shield(task), False
        self.shared += 1
        if timeout is None:
            return await asyncio.shield(task), True
        try:
            return await asyncio.wait_for(asyncio.shield(task), timeout), True
        except asyncio.TimeoutError:
            self.timeouts += 1
            return await fn(), False

    def inflight(self) -> int:
        """Number of keys currently being fetched."""
        return len(self._inflight)

    async def drain(self) -> None:
        """Wait for every in-flight flight to settle (exceptions swallowed —
        each flight's own awaiters observe them). Call before tearing down
        the loop so background admissions land and no tasks are destroyed
        pending."""
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )

    def __repr__(self) -> str:
        return (
            f"AsyncSingleFlight(leaders={self.leaders}, shared={self.shared}, "
            f"timeouts={self.timeouts})"
        )
