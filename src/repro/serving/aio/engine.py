"""Asyncio serving front-end over the Asteria engine.

:class:`AsyncAsteriaEngine` is the event-loop twin of
:class:`~repro.serving.concurrent.ConcurrentEngine`: it drives the same
lookup → judge → admit path over the same cache, but remote waits are
``await``-points instead of blocked threads, so one OS thread sustains
thousands of in-flight fetches. On top of the shared path it adds the three
controls a production gateway needs:

**Backpressure** — at most ``max_inflight`` requests may be in the serving
section at once; a request arriving beyond that depth is rejected
immediately with an ``overloaded`` outcome (counted in
``metrics.overloaded``) rather than queued without bound. Rejected requests
touch neither the cache nor the hit/miss counters.

**Deadlines** — each request may carry a deadline (seconds of wall clock,
``default_deadline`` otherwise). The miss path runs under
``asyncio.timeout``: on expiry the caller gets a ``deadline_exceeded``
outcome instead of hanging, while the underlying single-flight fetch keeps
running in the background and still admits its result — the deadline
degrades the *response*, never the cache.

**Hedging** — optionally, a miss whose fetch is still pending after the
``hedge_percentile``-th percentile of observed fetch latencies launches a
second, independent fetch and serves whichever completes first (the
tail-latency trick from "The Tail at Scale"). Hedges are counted in
``metrics.hedged_fetches`` / ``metrics.hedge_wins``.

Single-threaded by design: cache and metrics mutations happen between await
points, so no locks are taken anywhere. The cache therefore does *not* need
to be thread-safe — a plain :class:`~repro.core.cache.AsteriaCache` works —
but the factory builds the same :class:`ShardedAsteriaCache` shape as the
thread-pool stack so the two are directly comparable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass

import numpy as np

from repro.core.cache import canonical_text
from repro.core.engine import AsteriaEngine, EngineResponse
from repro.core.metrics import EngineMetrics
from repro.core.resilience import FetchFailed
from repro.core.types import CacheLookup, FetchResult, Query
from repro.network.faults import InjectedFault
from repro.network.remote import RemoteFetchError
from repro.serving.aio.remote import AsyncRemoteService
from repro.serving.aio.singleflight import AsyncSingleFlight

#: Outcome statuses (the response carries payload when "ok" or "stale_hit").
STATUS_OK = "ok"
STATUS_OVERLOADED = "overloaded"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_STALE = "stale_hit"
STATUS_FAILED = "failed"


@dataclass(frozen=True, slots=True)
class AsyncOutcome:
    """What one ``serve`` call resolved to.

    ``response`` is populated when ``status`` is ``"ok"`` or ``"stale_hit"``
    (a stale serve still answers the caller — with the last-known-good
    payload); the other degraded outcomes carry no payload.
    ``wall_latency`` is real seconds spent in ``serve`` (for an overload
    rejection, effectively zero).
    """

    status: str
    response: EngineResponse | None = None
    wall_latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def served(self) -> bool:
        """Did the caller get *some* payload (fresh or stale)?"""
        return self.status in (STATUS_OK, STATUS_STALE)


class AsyncAsteriaEngine:
    """Asyncio front-end over an :class:`AsteriaEngine`.

    Parameters
    ----------
    engine:
        The wrapped engine. Prefetching and recalibration must be disabled —
        both mutate engine-global state on the request path and belong to
        the sequential and simulated modes (same rule as the thread pool).
    remote:
        The awaitable remote service; built over ``engine.remote`` with
        ``io_pause_scale=0`` when omitted.
    singleflight:
        The await-based miss-coalescing layer (private by default).
    max_inflight:
        Admission-queue depth: requests in the serving section beyond this
        are rejected with an ``overloaded`` outcome.
    default_deadline:
        Per-request wall-clock deadline in seconds applied when ``serve`` is
        not given an explicit one; None means no deadline.
    follower_timeout:
        Bound on a coalesced follower's wait behind a leader before it falls
        back to a private fetch (see :class:`AsyncSingleFlight`).
    hedge_percentile:
        When set (0 < p <= 100), a pending fetch older than this percentile
        of observed fetch latencies triggers a hedged second fetch. Needs
        ``io_pause_scale > 0`` to be meaningful (with analytic fetches there
        is no wall-clock tail to cut).
    hedge_min_samples:
        Observed-fetch count required before hedging activates.
    batch_window:
        Accumulation window (wall seconds) for :meth:`serve_batched`. The
        first enqueued request arms a flush timer; everything that arrives
        within the window is served with *one* shared embed-batch + ANN
        search-batch pass (the same stage-1 sharing as the sequential
        engine's ``handle_batch``). 0 (default) still batches everything
        enqueued in the same event-loop tick — e.g. an ``asyncio.gather``
        over ``serve_batched`` calls — with no added latency.
    batch_max:
        Flush immediately once this many requests are pending (bounds both
        latency and the stage-1 batch size).
    """

    #: Observed-latency reservoir cap (recent fetches dominate the estimate).
    _HEDGE_WINDOW = 512

    def __init__(
        self,
        engine: AsteriaEngine,
        remote: AsyncRemoteService | None = None,
        singleflight: AsyncSingleFlight | None = None,
        max_inflight: int = 256,
        default_deadline: float | None = None,
        follower_timeout: float | None = None,
        hedge_percentile: float | None = None,
        hedge_min_samples: int = 20,
        batch_window: float = 0.0,
        batch_max: int = 16,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError(f"default_deadline must be > 0, got {default_deadline}")
        if follower_timeout is not None and follower_timeout <= 0:
            raise ValueError(f"follower_timeout must be > 0, got {follower_timeout}")
        if hedge_percentile is not None and not 0 < hedge_percentile <= 100:
            raise ValueError(
                f"hedge_percentile must be in (0, 100], got {hedge_percentile}"
            )
        if hedge_min_samples < 1:
            raise ValueError(f"hedge_min_samples must be >= 1, got {hedge_min_samples}")
        if engine.prefetcher is not None or engine.recalibrator is not None:
            raise ValueError(
                "AsyncAsteriaEngine requires prefetching and recalibration "
                "disabled (both mutate engine-global state on the request "
                "path); run those studies through the sequential engine"
            )
        self.engine = engine
        self.remote = (
            remote if remote is not None else AsyncRemoteService(engine.remote)
        )
        self.singleflight = (
            singleflight if singleflight is not None else AsyncSingleFlight()
        )
        self.max_inflight = max_inflight
        self.default_deadline = default_deadline
        self.follower_timeout = follower_timeout
        self.hedge_percentile = hedge_percentile
        self.hedge_min_samples = hedge_min_samples
        self.batch_window = batch_window
        self.batch_max = batch_max
        self._inflight = 0
        self._latency_samples: list[float] = []
        #: Background stale-while-revalidate flights (gathered by drain()).
        self._refresh_tasks: set[asyncio.Task] = set()
        #: Micro-batch accumulator: (query, now, future) triples awaiting the
        #: next shared stage-1 flush.
        self._batch_pending: list[tuple[Query, float, asyncio.Future]] = []
        self._batch_timer: asyncio.TimerHandle | None = None

    # -- KnowledgeEngine-compatible surface ------------------------------------
    @property
    def name(self) -> str:
        return self.engine.name

    @property
    def metrics(self) -> EngineMetrics:
        return self.engine.metrics

    @property
    def cache(self):
        return self.engine.cache

    @property
    def inflight(self) -> int:
        """Requests currently inside the serving section."""
        return self._inflight

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with None) a stage tracer; the span context
        lives in a contextvar, so it survives ``await`` points and is
        inherited by single-flight leader tasks spawned under a request."""
        self.engine.set_tracer(tracer)

    # -- the request path --------------------------------------------------------
    async def serve(
        self, query: Query, now: float = 0.0, deadline: float | None = None
    ) -> AsyncOutcome:
        """Resolve one query; always returns an outcome, never hangs.

        ``now`` is the simulated clock (drives TTLs and latency accounting,
        exactly as in the sequential engine); ``deadline`` is *wall* seconds
        and overrides ``default_deadline`` for this request.
        """
        tracer = self.engine.tracer
        if tracer is None or not tracer.sample():
            return await self._serve_outer(query, now, deadline)
        with tracer.request() as span:
            outcome = await self._serve_outer(query, now, deadline)
            span.attrs = {"tool": query.tool, "outcome": outcome.status}
            return outcome

    async def serve_batched(
        self, query: Query, now: float = 0.0, deadline: float | None = None
    ) -> AsyncOutcome:
        """Like :meth:`serve`, but stage 1 is shared across a micro-batch.

        The request joins the pending accumulation window; when the window
        flushes (``batch_window`` elapsed, or ``batch_max`` requests
        pending), every cacheable request in it gets its raw ANN hits from
        one shared embed-batch + search-batch pass, then completes through
        exactly the scalar serve path — judging, single-flight misses,
        degradation, metrics — in its own task context. Deadlines cover the
        window wait; backpressure is applied at enqueue time.

        Decision parity with the sequential engine's ``handle_batch`` holds
        per window: a request whose stage-1 snapshot went stale (the cache
        mutated after the flush) falls back to a fresh scalar lookup, the
        same invalidation rule the sync batch path uses.
        """
        tracer = self.engine.tracer
        if tracer is None or not tracer.sample():
            return await self._serve_outer(
                query, now, deadline, serve=self._serve_enqueued
            )
        with tracer.request() as span:
            outcome = await self._serve_outer(
                query, now, deadline, serve=self._serve_enqueued
            )
            span.attrs = {
                "tool": query.tool,
                "batched": True,
                "outcome": outcome.status,
            }
            return outcome

    async def _serve_outer(
        self, query: Query, now: float, deadline: float | None, serve=None
    ) -> AsyncOutcome:
        if serve is None:
            serve = self._serve
        begin = time.perf_counter()
        if self._inflight >= self.max_inflight:
            self.metrics.overloaded += 1
            if self.engine.trace is not None:
                self.engine.trace.record_rejected(now, query, STATUS_OVERLOADED)
            return AsyncOutcome(
                STATUS_OVERLOADED, wall_latency=time.perf_counter() - begin
            )
        self._inflight += 1
        try:
            limit = deadline if deadline is not None else self.default_deadline
            try:
                if limit is None:
                    response = await serve(query, now)
                else:
                    async with asyncio.timeout(limit):
                        response = await serve(query, now)
            except TimeoutError:
                self.metrics.deadline_exceeded += 1
                wall = time.perf_counter() - begin
                if self.engine.trace is not None:
                    self.engine.trace.record_rejected(
                        now, query, STATUS_DEADLINE, latency=wall
                    )
                return AsyncOutcome(STATUS_DEADLINE, wall_latency=wall)
            wall = time.perf_counter() - begin
            if response.degraded == "stale_hit":
                return AsyncOutcome(STATUS_STALE, response, wall_latency=wall)
            if response.degraded == "failed":
                return AsyncOutcome(STATUS_FAILED, wall_latency=wall)
            return AsyncOutcome(STATUS_OK, response, wall_latency=wall)
        finally:
            self._inflight -= 1

    async def _serve_enqueued(self, query: Query, now: float) -> EngineResponse:
        """Join the pending micro-batch, await its flush, then complete
        through the scalar path with the flush's prepared stage-1 hits."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._batch_pending.append((query, now, future))
        if len(self._batch_pending) >= self.batch_max:
            self._flush_batch()
        elif self._batch_timer is None:
            self._batch_timer = loop.call_later(self.batch_window, self._flush_batch)
        prepared = await future
        return await self._serve(query, now, prepared=prepared)

    def _flush_batch(self) -> None:
        """Run the shared stage-1 pass for every pending request and wake
        them with their prepared hits.

        Synchronous (no awaits), so the expiry purge, the embed+ANN batch,
        and the mutation stamp form one atomic snapshot — exactly the
        sequential ``handle_batch`` preamble. Requests then resume in
        enqueue order and validate the stamp before trusting their hits.
        """
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        pending = self._batch_pending
        if not pending:
            return
        self._batch_pending = []
        engine = self.engine
        rows: list[int | None] = []
        texts: list[str] = []
        for query, _, _ in pending:
            if engine._is_cacheable(query):
                rows.append(len(texts))
                texts.append(query.text)
            else:
                rows.append(None)
        batch_hits: list[list] = []
        stamp = None
        if texts:
            engine.cache.remove_expired(max(now for _, now, _ in pending))
            batch_hits = engine.cache.prepare_batch(texts)
            stamp = engine._mutation_stamp()
        for (query, _, future), row in zip(pending, rows):
            # A deadline may have cancelled the waiter while it queued.
            if not future.done():
                future.set_result((row, batch_hits, stamp))

    async def _serve(
        self, query: Query, now: float, prepared=None
    ) -> EngineResponse:
        engine = self.engine
        if not engine._is_cacheable(query):
            key = engine._resilience_key(query)
            try:
                fetch = await self._fetch(query, now)
            except RemoteFetchError as exc:
                engine._account_failure(key, exc, now + exc.latency)
                lookup = CacheLookup(status="bypass", result=None, latency=0.0)
                return self._degrade(
                    query, lookup, key, now, now, wasted=exc.latency
                )
            engine.resilience.on_success(key, fetch, now + fetch.latency)
            response = engine._bypass_response(fetch, fetch.latency)
            self._record(response, query, now, shared=False)
            return response
        sine_result = await self._sine_lookup(query, now, prepared)
        lookup, _ = engine._lookup_record(query, sine_result)
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=lookup.latency, lookup=lookup
            )
            self._record(response, query, now, shared=False)
            return response
        start = now + lookup.latency
        key = (query.tool, canonical_text(query.text))
        verdict = engine.resilience.admit(key, start)
        if verdict != "allow":
            if verdict == "negative":
                engine.metrics.negative_cache_hits += 1
            else:
                engine.metrics.breaker_open_rejects += 1
            return self._degrade(query, lookup, key, start, now, refresh=True)
        try:
            fetch, shared = await self.singleflight.run(
                key,
                lambda: self._fetch_and_admit(query, start, key),
                timeout=self.follower_timeout,
            )
        except RemoteFetchError as exc:
            # Leaders raise their own FetchFailed; followers re-raise the
            # leader's (deduplicated by _account_failure's marker).
            engine._account_failure(key, exc, start + exc.latency)
            return self._degrade(
                query, lookup, key, start, now, wasted=exc.latency
            )
        response = EngineResponse(
            result=fetch.result,
            latency=lookup.latency + fetch.latency,
            lookup=lookup,
            fetch=fetch,
        )
        self._record(response, query, now, shared=shared)
        return response

    async def _sine_lookup(self, query: Query, now: float, prepared=None):
        """Stage 1+2 retrieval for one cacheable request.

        Factored out of :meth:`_serve` as the engine's *cache access point*:
        subclasses that keep the cache elsewhere (the multi-process tier's
        shard workers) override this one method and inherit the entire miss /
        degradation / metrics path unchanged.
        """
        engine = self.engine
        if prepared is not None:
            row, batch_hits, stamp = prepared
            if row is not None and engine._mutation_stamp() == stamp:
                return engine.cache.lookup_prepared(
                    query, batch_hits[row], now, ann_only=engine.config.ann_only
                )
            # Snapshot went stale (an earlier item in the window
            # admitted/evicted): fall back to a fresh scalar lookup,
            # the same rule as the sequential batch path.
            return engine.cache.lookup(query, now, ann_only=engine.config.ann_only)
        return engine.cache.lookup(query, now, ann_only=engine.config.ann_only)

    async def _admit(self, query: Query, fetch: FetchResult, arrival: float) -> None:
        """Insert one fetched result; the second cache access point
        subclasses override (see :meth:`_sine_lookup`)."""
        self.engine.cache.insert(query, fetch, arrival)

    async def _fetch_and_admit(
        self, query: Query, start: float, key: tuple
    ) -> FetchResult:
        """Leader flight: remote fetch (possibly hedged) with transient-fault
        retries and breaker accounting, then admission.

        Runs as its own task inside the single-flight layer; the task
        snapshots the spawning request's contextvars, so its spans parent
        under that request's root even after every caller moved on.
        """
        engine = self.engine
        tracer = engine.tracer
        if tracer is None or not tracer.live or not tracer.active():
            fetch, overhead, attempts = await self._fetch_retrying(query, start)
        else:
            t0 = tracer.clock()
            fetch, overhead, attempts = await self._fetch_retrying(query, start)
            tracer.record_leaf(
                "remote_fetch", t0, {"retries": attempts, "cost": fetch.cost}
            )
        arrival = start + overhead + fetch.latency
        engine.resilience.on_success(key, fetch, arrival)
        if engine._should_admit(query, fetch, arrival):
            if tracer is None or not tracer.live:
                await self._admit(query, fetch, arrival)
            else:
                with tracer.span("admit"):
                    await self._admit(query, fetch, arrival)
        return fetch

    async def _fetch_retrying(
        self, query: Query, start: float
    ) -> tuple[FetchResult, float, int]:
        """The transient-fault retry loop around :meth:`_fetch`; returns the
        fetch, the simulated overhead accrued by failed attempts and backoff,
        and the number of retries taken."""
        engine = self.engine
        overhead = 0.0
        attempt = 0
        while True:
            try:
                return await self._fetch(query, start + overhead), overhead, attempt
            except InjectedFault as exc:
                overhead += exc.latency
                if attempt >= engine.resilience.retry_policy.max_retries:
                    raise FetchFailed(
                        f"retries exhausted after {attempt + 1} attempts: {exc}",
                        latency=overhead,
                        cause=exc,
                    ) from exc
                delay = engine.resilience.next_delay(attempt)
                overhead += delay
                if self.remote.io_pause_scale > 0 and delay > 0:
                    await asyncio.sleep(delay * self.remote.io_pause_scale)
                attempt += 1
            except RemoteFetchError as exc:
                raise FetchFailed(
                    f"non-retryable fetch failure: {exc}",
                    latency=overhead + exc.latency,
                    cause=exc,
                ) from exc

    def _degrade(
        self,
        query: Query,
        lookup: CacheLookup,
        key: tuple,
        at: float,
        now: float,
        wasted: float = 0.0,
        refresh: bool = False,
    ) -> EngineResponse:
        """Stale/failed fallback for a refused or failed miss flight; a
        stale serve may also spawn a background revalidation task."""
        engine = self.engine
        entry = engine.resilience.stale_for(key, at + wasted)
        if entry is not None:
            engine.metrics.stale_hits += 1
            response = EngineResponse(
                result=entry.fetch.result,
                latency=lookup.latency + wasted,
                lookup=lookup,
                degraded="stale_hit",
            )
            if refresh and engine.resilience.allow_probe(at):
                self._spawn_refresh(query, key, at)
        else:
            engine.metrics.failed_requests += 1
            response = EngineResponse(
                result="",
                latency=lookup.latency + wasted,
                lookup=lookup,
                degraded="failed",
            )
        engine._record_degraded(response, query, now)
        return response

    def _spawn_refresh(self, query: Query, key: tuple, start: float) -> None:
        """Stale-while-revalidate: refresh as a background task, off the
        caller's latency path, coalesced with any foreground flight."""
        self.engine.metrics.background_refreshes += 1
        task = asyncio.ensure_future(self._refresh(query, key, start))
        self._refresh_tasks.add(task)
        task.add_done_callback(self._refresh_tasks.discard)

    async def _refresh(self, query: Query, key: tuple, start: float) -> None:
        tracer = self.engine.tracer
        if tracer is None or not tracer.live:
            await self._refresh_inner(query, key, start)
        else:
            # The refresh task inherited the serving request's context; give
            # it a span of its own under that root.
            with tracer.span("stale_refresh"):
                await self._refresh_inner(query, key, start)

    async def _refresh_inner(self, query: Query, key: tuple, start: float) -> None:
        try:
            await self.singleflight.run(
                key, lambda: self._fetch_and_admit(query, start, key)
            )
        except RemoteFetchError as exc:
            self.engine._account_failure(key, exc, start + exc.latency)

    async def _fetch(self, query: Query, start: float) -> FetchResult:
        threshold = self._hedge_after()
        primary = asyncio.ensure_future(self.remote.fetch(query, start))
        if threshold is None:
            fetch = await primary
            self._observe(fetch.latency)
            return fetch
        done, _ = await asyncio.wait({primary}, timeout=threshold)
        if primary in done:
            fetch = primary.result()
            self._observe(fetch.latency)
            return fetch
        # Primary is past the latency percentile: hedge with a second,
        # independent fetch and take whichever lands first. The loser's
        # request already went out (cost and call counters stand), exactly
        # like a real hedged RPC.
        self.metrics.hedged_fetches += 1
        hedge_delay_sim = threshold / self.remote.io_pause_scale
        backup = asyncio.ensure_future(
            self.remote.fetch(query, start + hedge_delay_sim)
        )
        done, pending = await asyncio.wait(
            {primary, backup}, return_when=asyncio.FIRST_COMPLETED
        )
        winner = primary if primary in done else backup
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        fetch = winner.result()
        self._observe(fetch.latency)
        if winner is backup:
            self.metrics.hedge_wins += 1
            # The caller experienced the hedge delay plus the backup's own
            # fetch time; report that end-to-end simulated latency and mark
            # the result hedged for the trace log.
            fetch = dataclasses.replace(
                fetch, latency=hedge_delay_sim + fetch.latency, hedged=True
            )
        return fetch

    def _hedge_after(self) -> float | None:
        """Wall seconds to wait before hedging, or None when disabled."""
        if (
            self.hedge_percentile is None
            or self.remote.io_pause_scale <= 0
            or len(self._latency_samples) < self.hedge_min_samples
        ):
            return None
        simulated = float(
            np.percentile(self._latency_samples, self.hedge_percentile)
        )
        threshold = simulated * self.remote.io_pause_scale
        return threshold if threshold > 0 else None

    def _observe(self, latency: float) -> None:
        self._latency_samples.append(latency)
        if len(self._latency_samples) > self._HEDGE_WINDOW:
            del self._latency_samples[: -self._HEDGE_WINDOW]

    def _record(
        self, response: EngineResponse, query: Query, now: float, shared: bool
    ) -> None:
        if shared:
            self.engine.metrics.coalesced_misses += 1
        self.engine._record_response(response, query, now)

    # -- lifecycle ----------------------------------------------------------------
    async def drain(self) -> None:
        """Wait for background single-flight fetches and stale-refresh tasks
        to settle (admissions land in the cache); call before tearing down
        the event loop. Any un-flushed micro-batch is flushed first so no
        ``serve_batched`` waiter is left pending."""
        self._flush_batch()
        while self._refresh_tasks:
            await asyncio.gather(
                *list(self._refresh_tasks), return_exceptions=True
            )
        await self.singleflight.drain()

    def __repr__(self) -> str:
        return (
            f"AsyncAsteriaEngine(name={self.name!r}, "
            f"max_inflight={self.max_inflight}, inflight={self._inflight}, "
            f"deadline={self.default_deadline}, "
            f"singleflight={self.singleflight!r})"
        )
