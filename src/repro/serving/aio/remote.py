"""Awaitable front-end over the analytic remote data service.

:class:`AsyncRemoteService` keeps the existing
:class:`~repro.network.remote.RemoteDataService` as the single source of
truth for latency draws, throttling plans, fees, and resolver output, and
replaces the *wall-clock* side of a fetch with ``await asyncio.sleep`` —
the event loop parks the coroutine while the request is "on the wire", so
thousands of fetches overlap on one thread where the thread-pool engine
pays a blocked thread each.

Because everything here runs on one event loop, no locks are needed around
the service's sequential RNG and counters: ``fetch_at`` is synchronous and
atomic between await points.
"""

from __future__ import annotations

import asyncio

from repro.core.types import FetchResult, Query
from repro.network.remote import RemoteDataService, RemoteFetchError


class AsyncRemoteService:
    """Single-loop awaitable wrapper over a :class:`RemoteDataService`.

    Parameters
    ----------
    service:
        The wrapped analytic service (latency model, rate limiter, fees).
    io_pause_scale:
        Real seconds slept per simulated remote-latency second — the same
        knob as :class:`~repro.serving.concurrent.ConcurrentEngine`'s, so
        async and thread-pool runs are directly comparable. 0 keeps fetches
        purely analytic (the coroutine still yields once so concurrent
        fetches interleave).

    Not thread-safe: one instance belongs to one event loop.
    """

    def __init__(
        self, service: RemoteDataService, io_pause_scale: float = 0.0
    ) -> None:
        if io_pause_scale < 0:
            raise ValueError(f"io_pause_scale must be >= 0, got {io_pause_scale}")
        self.service = service
        self.io_pause_scale = io_pause_scale
        #: Fetches currently awaiting their simulated wire time.
        self.inflight = 0
        #: High-water mark of concurrently in-flight fetches.
        self.max_inflight = 0

    @property
    def calls(self) -> int:
        return self.service.calls

    async def fetch(self, query: Query, start: float = 0.0) -> FetchResult:
        """One remote fetch starting at simulated time ``start``.

        The analytic plan (throttle waits, retries, service time, fee) is
        computed up front by the wrapped service; the coroutine then awaits
        the scaled wall-clock pause standing in for the network round-trip.
        A failing fetch (injected fault, exhausted throttle retries) burns
        its scaled wasted time on the wall clock too, then re-raises.
        """
        try:
            fetch = self.service.fetch_at(query, start)
        except RemoteFetchError as exc:
            if self.io_pause_scale > 0 and exc.latency > 0:
                await asyncio.sleep(exc.latency * self.io_pause_scale)
            else:
                await asyncio.sleep(0)
            raise
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        try:
            if self.io_pause_scale > 0 and fetch.latency > 0:
                await asyncio.sleep(fetch.latency * self.io_pause_scale)
            else:
                # Yield once anyway: overlapping fetches stay interleaved and
                # cancellation (deadlines) has a point to land.
                await asyncio.sleep(0)
        finally:
            self.inflight -= 1
        return fetch

    def __repr__(self) -> str:
        return (
            f"AsyncRemoteService({self.service.name!r}, "
            f"io_pause_scale={self.io_pause_scale}, inflight={self.inflight})"
        )
