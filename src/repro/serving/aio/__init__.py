"""Asyncio serving subsystem: await-based remote I/O over the Asteria stack.

The event-loop counterpart of the thread-pool layer in
``repro.serving.concurrent``: remote waits are ``await``-points instead of
blocked threads, so one OS thread sustains thousands of in-flight fetches.

``AsyncRemoteService``
    Awaitable wrapper over :class:`~repro.network.remote.RemoteDataService`;
    the simulated wide-area latency becomes a real ``asyncio.sleep``.
``AsyncSingleFlight``
    Await-based miss coalescing — followers await the leader's future, and
    leader flights run as background tasks shielded from caller deadlines.
``AsyncAsteriaEngine``
    The serving front-end: bounded admission (``overloaded`` beyond
    ``max_inflight``), per-request deadlines (``deadline_exceeded`` instead
    of hanging), optional hedged second fetches past a latency percentile,
    and fault-tolerant degradation (``stale_hit``/``failed`` outcomes via
    the engine's :class:`~repro.core.resilience.ResilienceManager`).
``run_open_loop`` / ``run_closed_loop``
    Load generators: fixed-arrival-rate open loop (the honest overload
    measurement) and a matched-concurrency closed loop for comparisons with
    the thread pool.
"""

from repro.serving.aio.engine import (
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_STALE,
    AsyncAsteriaEngine,
    AsyncOutcome,
)
from repro.serving.aio.load import AsyncLoadReport, run_closed_loop, run_open_loop
from repro.serving.aio.remote import AsyncRemoteService
from repro.serving.aio.singleflight import AsyncSingleFlight

__all__ = [
    "STATUS_DEADLINE",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_STALE",
    "AsyncAsteriaEngine",
    "AsyncLoadReport",
    "AsyncOutcome",
    "AsyncRemoteService",
    "AsyncSingleFlight",
    "run_closed_loop",
    "run_open_loop",
]
