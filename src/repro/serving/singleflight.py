"""Single-flight suppression of duplicate in-flight work (real threads).

The discrete-event simulator's coalescing study (``coalescing_study``,
``AsteriaConfig.coalesce_misses``) showed that under a flash crowd, misses
for the same knowledge should share one remote fetch instead of each paying
for their own. :class:`SingleFlight` is the real-thread twin of that
mechanism: the first thread to miss on a key becomes the *leader* and
executes the fetch; threads that miss on the same key while it is in flight
become *followers*, block on an ``Event``, and reuse the leader's result
(including its exception, if the fetch failed).

The pattern is Go's ``golang.org/x/sync/singleflight``, reduced to what the
cache's miss path needs.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, TypeVar

T = TypeVar("T")


class _Call:
    """One in-flight execution: a completion event plus its outcome."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: object = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key duplicate-call suppression across threads.

    ``run(key, fn)`` returns ``(result, shared)``: ``shared`` is False for
    the leader that actually executed ``fn`` and True for followers that
    reused its in-flight result. Calls that arrive *after* a flight
    completes start a fresh one — suppression applies only to overlap in
    time, so a cache retry after a failed fetch is never poisoned by stale
    results.

    ``run(..., timeout=...)`` bounds a follower's wait: a follower stuck
    behind a slow or wedged leader for more than ``timeout`` seconds stops
    waiting and executes ``fn`` itself (a private fetch — later arrivals
    still join the original flight), counted in :attr:`timeouts`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Call] = {}
        #: Flights led (each one real unit of work).
        self.leaders = 0
        #: Calls served by someone else's flight (work saved).
        self.shared = 0
        #: Followers that gave up waiting and executed a private fetch.
        self.timeouts = 0

    def run(
        self, key: Hashable, fn: Callable[[], T], timeout: float | None = None
    ) -> tuple[T, bool]:
        """Execute ``fn`` once per concurrent ``key``; see class docstring."""
        with self._lock:
            call = self._inflight.get(key)
            if call is None:
                call = _Call()
                self._inflight[key] = call
                self.leaders += 1
                leading = True
            else:
                self.shared += 1
                leading = False
        if leading:
            try:
                call.result = fn()
            except BaseException as exc:
                call.error = exc
                raise
            finally:
                # Unregister before waking followers so that a caller arriving
                # now starts a fresh flight rather than joining a finished one.
                with self._lock:
                    self._inflight.pop(key, None)
                call.event.set()
            return call.result, False  # type: ignore[return-value]
        if not call.event.wait(timeout):
            # Leader still in flight past the follower's patience: lead a
            # private fetch instead of hanging forever behind it.
            with self._lock:
                self.timeouts += 1
            return fn(), False
        if call.error is not None:
            raise call.error
        return call.result, True  # type: ignore[return-value]

    def inflight(self) -> int:
        """Number of keys currently being fetched."""
        with self._lock:
            return len(self._inflight)

    def __repr__(self) -> str:
        return f"SingleFlight(leaders={self.leaders}, shared={self.shared})"
