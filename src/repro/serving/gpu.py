"""A simulated GPU with MPS-style compute partitions.

The abstraction mirrors how CUDA MPS's ``ACTIVE_THREAD_PERCENTAGE`` behaves
for serving workloads: a partition holding share *s* of the device executes
a kernel stream at roughly *s* × full-device speed. Each partition also has
a bounded number of *slots* — concurrently resident batches — standing in
for the serving framework's continuous batching. Work items are expressed in
*full-GPU seconds*: a 0.6 s inference step on an 80 % partition occupies a
slot for 0.75 s.

Busy time is tracked per partition so experiments can report utilisation and
GPU-hour costs.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


class GpuPartition:
    """One MPS partition of a :class:`GpuDevice`.

    Parameters
    ----------
    sim:
        The simulator this partition runs on.
    name:
        Partition label (e.g. ``agent``, ``judger``).
    share:
        Fraction of device compute in (0, 1].
    slots:
        Concurrent batch slots (default 4).
    speed_exponent:
        Effective speed is ``share ** speed_exponent``. The default 1.0 is
        linear scaling; LLM *serving* is largely memory-bandwidth-bound, and
        MPS thread-percentage capping degrades it sublinearly, so co-location
        experiments use ~0.3 (calibrated so an 80/20 split retains ≈94 % of
        dedicated agent throughput — Table 7).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        share: float,
        slots: int = 4,
        speed_exponent: float = 1.0,
    ) -> None:
        if not 0.0 < share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {share}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if speed_exponent < 0:
            raise ValueError(f"speed_exponent must be >= 0, got {speed_exponent}")
        self.sim = sim
        self.name = name
        self.share = share
        self.slots = slots
        self.speed = share**speed_exponent
        self._resource = Resource(sim, capacity=slots)
        self.busy_seconds = 0.0
        self.completed = 0

    @property
    def queue_length(self) -> int:
        """Work items waiting for a slot."""
        return self._resource.queue_length

    @property
    def in_use(self) -> int:
        """Slots currently executing."""
        return self._resource.in_use

    def service_time(self, work: float) -> float:
        """Wall-clock seconds to run ``work`` full-GPU seconds here."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self.speed

    def execute(self, work: float, priority: float = 0.0) -> Generator:
        """Process-style execution: queue for a slot, run, release.

        Returns the wall-clock seconds spent executing (excluding queueing).
        """
        request = self._resource.request(priority=priority)
        yield request
        duration = self.service_time(work)
        try:
            yield self.sim.timeout(duration)
        finally:
            self._resource.release(request)
        self.busy_seconds += duration
        self.completed += 1
        return duration

    def utilization(self, horizon: float) -> float:
        """Busy fraction of this partition's capacity over ``horizon`` seconds."""
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        return min(1.0, self.busy_seconds / (horizon * self.slots))

    def __repr__(self) -> str:
        return (
            f"GpuPartition({self.name!r}, share={self.share}, slots={self.slots}, "
            f"queued={self.queue_length})"
        )


class GpuDevice:
    """A GPU carved into named partitions whose shares sum to <= 1.

    ``partition`` registers a new partition; :attr:`rental_gpu_seconds`
    equals the experiment wall-time — a rented GPU costs money whether busy
    or idle, which is what Table 5 charges.
    """

    def __init__(self, sim: Simulator, name: str = "gpu0") -> None:
        self.sim = sim
        self.name = name
        self._partitions: dict[str, GpuPartition] = {}
        self._created_at = sim.now

    def partition(
        self,
        name: str,
        share: float,
        slots: int = 4,
        speed_exponent: float = 1.0,
    ) -> GpuPartition:
        """Create a partition; total allocated share must stay <= 1."""
        if name in self._partitions:
            raise ValueError(f"partition {name!r} already exists on {self.name}")
        allocated = sum(p.share for p in self._partitions.values())
        if allocated + share > 1.0 + 1e-9:
            raise ValueError(
                f"cannot allocate {share:.2f}: only {1.0 - allocated:.2f} of "
                f"{self.name} remains"
            )
        part = GpuPartition(self.sim, name, share, slots, speed_exponent)
        self._partitions[name] = part
        return part

    @property
    def partitions(self) -> dict[str, GpuPartition]:
        return dict(self._partitions)

    @property
    def rental_gpu_seconds(self) -> float:
        """GPU-seconds of rental since creation (busy or not)."""
        return self.sim.now - self._created_at

    def busy_seconds(self) -> float:
        """Total compute-occupied seconds across partitions."""
        return sum(p.busy_seconds for p in self._partitions.values())

    def __repr__(self) -> str:
        return f"GpuDevice({self.name!r}, partitions={sorted(self._partitions)})"
