"""The unified KV-cache memory pool (§4.4, Figure 6).

Each workload (agent, judger) owns a *static partition* sized for its common
case; a shared *dynamic* region absorbs bursts. Allocation requests draw from
the caller's static reservation first and spill into the dynamic pool. The
scheduler consults :meth:`can_allocate` before admitting judger batches so
the agent's spill headroom is never stolen.
"""

from __future__ import annotations


class KVMemoryPool:
    """GB-denominated memory accounting with static + dynamic regions.

    Parameters
    ----------
    total_gb:
        Device memory available for KV caches.
    static_gb:
        Mapping of workload name to its static reservation. The sum must not
        exceed ``total_gb``; the remainder is the dynamic pool.
    """

    def __init__(self, total_gb: float, static_gb: dict[str, float]) -> None:
        if total_gb <= 0:
            raise ValueError(f"total_gb must be > 0, got {total_gb}")
        if any(v < 0 for v in static_gb.values()):
            raise ValueError("static reservations must be >= 0")
        reserved = sum(static_gb.values())
        if reserved > total_gb:
            raise ValueError(
                f"static reservations ({reserved} GB) exceed total ({total_gb} GB)"
            )
        self.total_gb = float(total_gb)
        self.static_gb = dict(static_gb)
        self.dynamic_gb = total_gb - reserved
        #: Static usage per workload.
        self._static_used: dict[str, float] = {name: 0.0 for name in static_gb}
        #: Dynamic usage per workload.
        self._dynamic_used: dict[str, float] = {name: 0.0 for name in static_gb}

    # -- introspection -------------------------------------------------------
    def static_free(self, workload: str) -> float:
        """Unused static reservation of ``workload``."""
        self._check_workload(workload)
        return self.static_gb[workload] - self._static_used[workload]

    @property
    def dynamic_free(self) -> float:
        """Unused dynamic-region memory."""
        return self.dynamic_gb - sum(self._dynamic_used.values())

    def used_by(self, workload: str) -> float:
        """Total GB currently held by ``workload``."""
        self._check_workload(workload)
        return self._static_used[workload] + self._dynamic_used[workload]

    def can_allocate(self, workload: str, amount: float) -> bool:
        """Would :meth:`allocate` succeed right now?"""
        self._check_workload(workload)
        if amount < 0:
            raise ValueError("amount must be >= 0")
        return amount <= self.static_free(workload) + self.dynamic_free

    # -- mutation ----------------------------------------------------------------
    def allocate(self, workload: str, amount: float) -> bool:
        """Claim ``amount`` GB for ``workload``; static first, then dynamic.

        Returns False (allocating nothing) if the combined free space is
        insufficient.
        """
        if not self.can_allocate(workload, amount):
            return False
        from_static = min(amount, self.static_free(workload))
        self._static_used[workload] += from_static
        self._dynamic_used[workload] += amount - from_static
        return True

    def release(self, workload: str, amount: float) -> None:
        """Return ``amount`` GB; dynamic spill is repaid before static."""
        self._check_workload(workload)
        if amount < 0:
            raise ValueError("amount must be >= 0")
        held = self.used_by(workload)
        if amount > held + 1e-9:
            raise ValueError(
                f"{workload} releasing {amount} GB but holds only {held} GB"
            )
        from_dynamic = min(amount, self._dynamic_used[workload])
        self._dynamic_used[workload] -= from_dynamic
        self._static_used[workload] -= amount - from_dynamic
        # Clamp float dust.
        self._static_used[workload] = max(0.0, self._static_used[workload])
        self._dynamic_used[workload] = max(0.0, self._dynamic_used[workload])

    def _check_workload(self, workload: str) -> None:
        if workload not in self.static_gb:
            raise KeyError(
                f"unknown workload {workload!r}; known: {sorted(self.static_gb)}"
            )

    def __repr__(self) -> str:
        usage = {name: round(self.used_by(name), 2) for name in self.static_gb}
        return (
            f"KVMemoryPool(total={self.total_gb} GB, "
            f"dynamic_free={self.dynamic_free:.2f} GB, used={usage})"
        )
