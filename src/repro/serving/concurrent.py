"""Real-thread concurrent serving over the Asteria engine (§4.4, Fig. 10).

:class:`ConcurrentEngine` is a thread-pool front-end over
:class:`~repro.core.engine.AsteriaEngine` for serving many agents at once
with *real* parallelism (the simulator's Fig. 10 study models the same
phenomenon in virtual time):

* Cache lookups run concurrently on a thread-safe
  :class:`~repro.core.sharding.ShardedAsteriaCache`; the numpy-heavy stage-1
  work (embed + ANN scoring) releases the GIL, so lookups on different
  shards overlap on real cores.
* Concurrent misses on the same canonical key share one remote fetch via
  :class:`~repro.serving.singleflight.SingleFlight` — the leader fetches and
  admits, followers block and reuse the result (counted in
  ``metrics.coalesced_misses``).
* :class:`~repro.core.metrics.EngineMetrics` updates happen under one small
  record lock, so counters and latency reservoirs are exact under any
  interleaving; :meth:`EngineMetrics.merge` additionally supports per-worker
  accumulation for callers that want lock-free recording.

``io_pause_scale`` maps each fetch's *simulated* remote latency to a real
wall-clock pause (``time.sleep`` releases the GIL, exactly like the socket
wait it stands in for). With it, the closed-loop load generator measures the
paper's serving claim for real: worker pools overlap remote I/O, so
throughput scales with workers until compute saturates the cores.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.cache import canonical_text
from repro.core.engine import AsteriaEngine, EngineResponse
from repro.core.metrics import EngineMetrics
from repro.core.resilience import FetchFailed
from repro.core.types import CacheLookup, FetchResult, Query
from repro.network.faults import InjectedFault
from repro.network.remote import RemoteFetchError
from repro.serving.singleflight import SingleFlight


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Outcome of one closed-loop load run (wall-clock, not virtual time)."""

    workers: int
    requests: int
    wall_seconds: float
    throughput_rps: float
    hits: int
    misses: int
    hit_rate: float
    coalesced_misses: int
    remote_calls: int
    #: Degraded outcomes (fault tolerance): answered from the stale store /
    #: explicit failures / refused up-front by the open breaker.
    stale_served: int = 0
    failed: int = 0
    breaker_open_rejects: int = 0

    @property
    def served_fraction(self) -> float:
        """Fraction of requests answered with *some* payload (fresh or
        stale) — the chaos benchmark's availability headline."""
        if self.requests == 0:
            return 1.0
        return (self.requests - self.failed) / self.requests

    def summary(self) -> dict:
        """Plain-dict snapshot for serialisation."""
        return {
            "workers": self.workers,
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "coalesced_misses": self.coalesced_misses,
            "remote_calls": self.remote_calls,
            "stale_served": self.stale_served,
            "failed": self.failed,
            "breaker_open_rejects": self.breaker_open_rejects,
            "served_fraction": round(self.served_fraction, 4),
        }


class ConcurrentEngine:
    """Thread-pool serving front-end over an :class:`AsteriaEngine`.

    Parameters
    ----------
    engine:
        The wrapped engine. With ``workers > 1`` its cache must be
        thread-safe (a :class:`~repro.core.sharding.ShardedAsteriaCache`);
        prefetching and recalibration must be disabled — both mutate
        engine-global state on the request path and belong to the sequential
        and simulated modes.
    workers:
        Thread-pool size for :meth:`handle_concurrent` and the worker count
        for :meth:`run_closed_loop`.
    singleflight:
        The miss-coalescing layer (a private one is created by default;
        share one instance to coalesce across several front-ends).
    io_pause_scale:
        When > 0, every remote fetch sleeps ``fetch.latency * scale`` real
        seconds — the wall-clock stand-in for the network round-trip the
        simulated latency describes. 0 (default) keeps fetches purely
        analytic.
    follower_timeout:
        Optional bound (seconds) on how long a coalesced miss waits behind
        its leader's in-flight fetch before falling back to a private fetch
        of its own (see :meth:`SingleFlight.run`). None (default) waits
        indefinitely.

    Thread-safety map: the sharded cache locks per shard; the remote service
    (sequential RNG + counters) is serialised by ``_remote_lock``; metrics,
    the eval log, and admission decisions by ``_record_lock``. The I/O pause
    happens *outside* all locks, so workers genuinely overlap remote waits.
    """

    def __init__(
        self,
        engine: AsteriaEngine,
        workers: int = 4,
        singleflight: SingleFlight | None = None,
        io_pause_scale: float = 0.0,
        follower_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if io_pause_scale < 0:
            raise ValueError(f"io_pause_scale must be >= 0, got {io_pause_scale}")
        if follower_timeout is not None and follower_timeout <= 0:
            raise ValueError(
                f"follower_timeout must be > 0, got {follower_timeout}"
            )
        if engine.prefetcher is not None or engine.recalibrator is not None:
            raise ValueError(
                "ConcurrentEngine requires prefetching and recalibration "
                "disabled (both mutate engine-global state on the request "
                "path); run those studies through the sequential engine"
            )
        if workers > 1 and not getattr(engine.cache, "thread_safe", False):
            raise ValueError(
                "workers > 1 needs a thread-safe cache; wrap the shards in "
                "ShardedAsteriaCache (factory.build_concurrent_engine does)"
            )
        self.engine = engine
        self.workers = workers
        self.singleflight = singleflight if singleflight is not None else SingleFlight()
        self.io_pause_scale = io_pause_scale
        self.follower_timeout = follower_timeout
        self._remote_lock = threading.Lock()
        self._record_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    # -- KnowledgeEngine-compatible surface ------------------------------------
    @property
    def name(self) -> str:
        return self.engine.name

    @property
    def metrics(self) -> EngineMetrics:
        return self.engine.metrics

    @property
    def cache(self):
        return self.engine.cache

    @property
    def remote(self):
        return self.engine.remote

    def set_tracer(self, tracer) -> None:
        """Attach (or detach with None) a stage tracer; spans from worker
        threads parent correctly because each thread carries its own
        contextvar context and request roots reset it on exit."""
        self.engine.set_tracer(tracer)

    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Resolve one query on the calling thread (thread-safe)."""
        return self._serve(query, now)

    def handle_concurrent(
        self, queries: Sequence[Query], now: float = 0.0
    ) -> list[EngineResponse]:
        """Resolve a batch across the worker pool; responses in input order."""
        queries = list(queries)
        if not queries:
            return []
        if self.workers == 1:
            return [self._serve(query, now) for query in queries]
        pool = self._ensure_pool()
        futures = [pool.submit(self._serve, query, now) for query in queries]
        return [future.result() for future in futures]

    def handle_batched(
        self, queries: Sequence[Query], now: float = 0.0
    ) -> list[EngineResponse]:
        """Resolve a batch with shared per-shard stage-1 passes.

        Cacheable queries are grouped by their cache shard; each group runs
        as one worker task doing a single embed-batch + ANN search-batch
        pass (``lookup_batch``) under its shard's lock, then finishing every
        query through the scalar hit/miss tail — single-flight miss
        coalescing included, and it coalesces *across* shard groups because
        the flight key is the canonical text, not the shard. Uncacheable
        queries bypass on their own tasks. Responses return in input order.
        """
        queries = list(queries)
        if not queries:
            return []
        engine = self.engine
        shard_of = getattr(engine.cache, "shard_index", None)
        groups: dict[int, list[int]] = {}
        bypass: list[int] = []
        for position, query in enumerate(queries):
            if engine._is_cacheable(query):
                shard = shard_of(query.text) if shard_of is not None else 0
                groups.setdefault(shard, []).append(position)
            else:
                bypass.append(position)
        responses: list[EngineResponse | None] = [None] * len(queries)

        def run_group(positions: list[int]) -> list[EngineResponse]:
            group = [queries[p] for p in positions]
            sine_results = engine.cache.lookup_batch(
                group, now, ann_only=engine.config.ann_only
            )
            tracer = engine.tracer
            out: list[EngineResponse] = []
            for query, sine_result in zip(group, sine_results):
                with self._record_lock:
                    lookup, _ = engine._lookup_record(query, sine_result)
                if tracer is None or not tracer.sample():
                    out.append(self._finish_lookup(query, lookup, now))
                    continue
                with tracer.request() as span:
                    response = self._finish_lookup(query, lookup, now)
                    span.attrs = {
                        "tool": query.tool,
                        "batched": True,
                        "outcome": response.degraded or response.lookup.status,
                    }
                    out.append(response)
            return out

        if self.workers == 1:
            for positions in groups.values():
                for position, response in zip(positions, run_group(positions)):
                    responses[position] = response
            for position in bypass:
                responses[position] = self._serve(queries[position], now)
            return responses  # type: ignore[return-value]
        pool = self._ensure_pool()
        group_futures = [
            (positions, pool.submit(run_group, positions))
            for positions in groups.values()
        ]
        bypass_futures = [
            (position, pool.submit(self._serve, queries[position], now))
            for position in bypass
        ]
        for positions, future in group_futures:
            for position, response in zip(positions, future.result()):
                responses[position] = response
        for position, future in bypass_futures:
            responses[position] = future.result()
        return responses  # type: ignore[return-value]

    # -- the request path --------------------------------------------------------
    def _serve(self, query: Query, now: float) -> EngineResponse:
        tracer = self.engine.tracer
        if tracer is None or not tracer.sample():
            return self._serve_inner(query, now)
        with tracer.request() as span:
            response = self._serve_inner(query, now)
            span.attrs = {
                "tool": query.tool,
                "outcome": response.degraded or response.lookup.status,
            }
            return response

    def _serve_inner(self, query: Query, now: float) -> EngineResponse:
        engine = self.engine
        if not engine._is_cacheable(query):
            key = engine._resilience_key(query)
            try:
                fetch = self._fetch(query, now)
            except RemoteFetchError as exc:
                with self._record_lock:
                    engine._account_failure(key, exc, now + exc.latency)
                lookup = CacheLookup(status="bypass", result=None, latency=0.0)
                return self._degrade(
                    query, lookup, key, now, now, wasted=exc.latency
                )
            engine.resilience.on_success(key, fetch, now + fetch.latency)
            response = engine._bypass_response(fetch, fetch.latency)
            self._record(response, query, now, shared=False)
            return response
        sine_result = engine.cache.lookup(query, now, ann_only=engine.config.ann_only)
        with self._record_lock:
            lookup, _ = engine._lookup_record(query, sine_result)
        return self._finish_lookup(query, lookup, now)

    def _finish_lookup(
        self, query: Query, lookup: CacheLookup, now: float
    ) -> EngineResponse:
        """Everything after the recorded lookup: hit response, or the
        guarded single-flight miss flight (shared by the scalar and batched
        paths)."""
        engine = self.engine
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=lookup.latency, lookup=lookup
            )
            self._record(response, query, now, shared=False)
            return response
        start = now + lookup.latency
        key = (query.tool, canonical_text(query.text))
        verdict = engine.resilience.admit(key, start)
        if verdict != "allow":
            with self._record_lock:
                if verdict == "negative":
                    engine.metrics.negative_cache_hits += 1
                else:
                    engine.metrics.breaker_open_rejects += 1
            return self._degrade(query, lookup, key, start, now, refresh=True)
        try:
            fetch, shared = self.singleflight.run(
                key,
                lambda: self._fetch_and_admit(query, start, key),
                timeout=self.follower_timeout,
            )
        except RemoteFetchError as exc:
            # Leaders raise their own FetchFailed; followers re-raise the
            # leader's (deduplicated by _account_failure's marker).
            with self._record_lock:
                engine._account_failure(key, exc, start + exc.latency)
            return self._degrade(
                query, lookup, key, start, now, wasted=exc.latency
            )
        response = EngineResponse(
            result=fetch.result,
            latency=lookup.latency + fetch.latency,
            lookup=lookup,
            fetch=fetch,
        )
        self._record(response, query, now, shared=shared)
        return response

    def _fetch_and_admit(
        self, query: Query, start: float, key: tuple
    ) -> FetchResult:
        """Leader path: remote fetch with transient-fault retries, breaker
        accounting, then admission into the query's shard."""
        engine = self.engine
        tracer = engine.tracer
        if tracer is None or not tracer.live or not tracer.active():
            fetch, overhead, attempts = self._fetch_retrying(query, start)
        else:
            t0 = tracer.clock()
            fetch, overhead, attempts = self._fetch_retrying(query, start)
            tracer.record_leaf(
                "remote_fetch", t0, {"retries": attempts, "cost": fetch.cost}
            )
        arrival = start + overhead + fetch.latency
        engine.resilience.on_success(key, fetch, arrival)
        with self._record_lock:
            admit = engine._should_admit(query, fetch, arrival)
        if admit:
            if tracer is None or not tracer.live:
                engine.cache.insert(query, fetch, arrival)
            else:
                with tracer.span("admit"):
                    engine.cache.insert(query, fetch, arrival)
        return fetch

    def _fetch_retrying(
        self, query: Query, start: float
    ) -> tuple[FetchResult, float, int]:
        """The transient-fault retry loop around :meth:`_fetch`; returns the
        fetch, the simulated overhead accrued by failed attempts and backoff,
        and the number of retries taken."""
        engine = self.engine
        overhead = 0.0
        attempt = 0
        while True:
            try:
                return self._fetch(query, start + overhead), overhead, attempt
            except InjectedFault as exc:
                overhead += exc.latency
                if attempt >= engine.resilience.retry_policy.max_retries:
                    raise FetchFailed(
                        f"retries exhausted after {attempt + 1} attempts: {exc}",
                        latency=overhead,
                        cause=exc,
                    ) from exc
                delay = engine.resilience.next_delay(attempt)
                overhead += delay
                if self.io_pause_scale > 0 and delay > 0:
                    time.sleep(delay * self.io_pause_scale)
                attempt += 1
            except RemoteFetchError as exc:
                raise FetchFailed(
                    f"non-retryable fetch failure: {exc}",
                    latency=overhead + exc.latency,
                    cause=exc,
                ) from exc

    def _fetch(self, query: Query, start: float) -> FetchResult:
        try:
            with self._remote_lock:
                fetch = self.engine.remote.fetch_at(query, start)
        except RemoteFetchError as exc:
            if self.io_pause_scale > 0 and exc.latency > 0:
                # The failed round-trip also burns wall time "on the wire".
                time.sleep(exc.latency * self.io_pause_scale)
            raise
        if self.io_pause_scale > 0:
            # Real blocking I/O stand-in; sleeps release the GIL, so other
            # workers keep serving while this fetch is "on the wire".
            time.sleep(fetch.latency * self.io_pause_scale)
        return fetch

    def _degrade(
        self,
        query: Query,
        lookup: CacheLookup,
        key: tuple,
        at: float,
        now: float,
        wasted: float = 0.0,
        refresh: bool = False,
    ) -> EngineResponse:
        """Stale/failed fallback for a refused or failed miss flight; a
        stale serve may also schedule a background revalidation flight."""
        engine = self.engine
        entry = engine.resilience.stale_for(key, at + wasted)
        if entry is not None:
            response = EngineResponse(
                result=entry.fetch.result,
                latency=lookup.latency + wasted,
                lookup=lookup,
                degraded="stale_hit",
            )
        else:
            response = EngineResponse(
                result="",
                latency=lookup.latency + wasted,
                lookup=lookup,
                degraded="failed",
            )
        with self._record_lock:
            if entry is not None:
                engine.metrics.stale_hits += 1
            else:
                engine.metrics.failed_requests += 1
            engine._record_degraded(response, query, now)
        if entry is not None and refresh and engine.resilience.allow_probe(at):
            self._spawn_refresh(query, key, at)
        return response

    def _spawn_refresh(self, query: Query, key: tuple, start: float) -> None:
        """Stale-while-revalidate: refresh on the worker pool, off the
        caller's latency path, coalesced with any foreground flight."""
        with self._record_lock:
            self.engine.metrics.background_refreshes += 1
        self._ensure_pool().submit(self._refresh, query, key, start)

    def _refresh(self, query: Query, key: tuple, start: float) -> None:
        tracer = self.engine.tracer
        if tracer is None or not tracer.sample():
            self._refresh_inner(query, key, start)
        else:
            # Pool threads have no request context; the refresh becomes its
            # own root span (request() semantics without the request name).
            with tracer.request("stale_refresh", tool=query.tool):
                self._refresh_inner(query, key, start)

    def _refresh_inner(self, query: Query, key: tuple, start: float) -> None:
        try:
            self.singleflight.run(
                key, lambda: self._fetch_and_admit(query, start, key)
            )
        except RemoteFetchError as exc:
            with self._record_lock:
                self.engine._account_failure(key, exc, start + exc.latency)

    def _record(
        self, response: EngineResponse, query: Query, now: float, shared: bool
    ) -> None:
        with self._record_lock:
            if shared:
                self.engine.metrics.coalesced_misses += 1
            self.engine._record_response(response, query, now)

    # -- closed-loop load generation ---------------------------------------------
    def run_closed_loop(
        self,
        queries: Sequence[Query],
        time_step: float = 0.0,
        start: float = 0.0,
        stop: threading.Event | None = None,
    ) -> LoadReport:
        """Drive ``queries`` through ``self.workers`` closed-loop workers.

        Each worker repeatedly claims the next query from a shared cursor and
        serves it to completion before claiming another (a closed loop: load
        applied equals worker count). Query *i* is served at simulated time
        ``start + i * time_step``; wall-clock time is measured around the
        whole run and throughput reported as requests per real second.

        ``stop`` (optional) is checked before each claim: once set, workers
        finish their in-flight request and exit, so a signal handler can end
        the run early with every started request completed and counted — the
        report then covers the requests actually served.
        """
        queries = list(queries)
        cursor = itertools.count()
        served = itertools.count()
        n = len(queries)
        errors: list[BaseException] = []

        def worker() -> None:
            while True:
                if stop is not None and stop.is_set():
                    return
                i = next(cursor)  # atomic in CPython
                if i >= n:
                    return
                try:
                    self._serve(queries[i], start + i * time_step)
                    next(served)  # atomic served-count bump
                except BaseException as exc:  # surface, don't hang the join
                    errors.append(exc)
                    return

        before = self.metrics.summary()
        remote_before = self.remote.calls
        threads = [
            threading.Thread(target=worker, name=f"load-worker-{w}", daemon=True)
            for w in range(self.workers)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - begin
        if errors:
            raise errors[0]
        n_served = next(served)
        after = self.metrics.summary()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        cacheable = hits + misses
        return LoadReport(
            workers=self.workers,
            requests=n_served,
            wall_seconds=wall,
            throughput_rps=n_served / wall if wall > 0 else float("inf"),
            hits=hits,
            misses=misses,
            hit_rate=hits / cacheable if cacheable else 0.0,
            coalesced_misses=after["coalesced_misses"] - before["coalesced_misses"],
            remote_calls=self.remote.calls - remote_before,
            stale_served=after["stale_hits"] - before["stale_hits"],
            failed=after["failed_requests"] - before["failed_requests"],
            breaker_open_rejects=(
                after["breaker_open_rejects"] - before["breaker_open_rejects"]
            ),
        )

    # -- lifecycle ----------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix=f"{self.name}-worker"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ConcurrentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ConcurrentEngine(name={self.name!r}, workers={self.workers}, "
            f"singleflight={self.singleflight!r})"
        )
