"""Real-thread concurrent serving over the Asteria engine (§4.4, Fig. 10).

:class:`ConcurrentEngine` is a thread-pool front-end over
:class:`~repro.core.engine.AsteriaEngine` for serving many agents at once
with *real* parallelism (the simulator's Fig. 10 study models the same
phenomenon in virtual time):

* Cache lookups run concurrently on a thread-safe
  :class:`~repro.core.sharding.ShardedAsteriaCache`; the numpy-heavy stage-1
  work (embed + ANN scoring) releases the GIL, so lookups on different
  shards overlap on real cores.
* Concurrent misses on the same canonical key share one remote fetch via
  :class:`~repro.serving.singleflight.SingleFlight` — the leader fetches and
  admits, followers block and reuse the result (counted in
  ``metrics.coalesced_misses``).
* :class:`~repro.core.metrics.EngineMetrics` updates happen under one small
  record lock, so counters and latency reservoirs are exact under any
  interleaving; :meth:`EngineMetrics.merge` additionally supports per-worker
  accumulation for callers that want lock-free recording.

``io_pause_scale`` maps each fetch's *simulated* remote latency to a real
wall-clock pause (``time.sleep`` releases the GIL, exactly like the socket
wait it stands in for). With it, the closed-loop load generator measures the
paper's serving claim for real: worker pools overlap remote I/O, so
throughput scales with workers until compute saturates the cores.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.cache import canonical_text
from repro.core.engine import AsteriaEngine, EngineResponse
from repro.core.metrics import EngineMetrics
from repro.core.types import FetchResult, Query
from repro.serving.singleflight import SingleFlight


@dataclass(frozen=True, slots=True)
class LoadReport:
    """Outcome of one closed-loop load run (wall-clock, not virtual time)."""

    workers: int
    requests: int
    wall_seconds: float
    throughput_rps: float
    hits: int
    misses: int
    hit_rate: float
    coalesced_misses: int
    remote_calls: int

    def summary(self) -> dict:
        """Plain-dict snapshot for serialisation."""
        return {
            "workers": self.workers,
            "requests": self.requests,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "coalesced_misses": self.coalesced_misses,
            "remote_calls": self.remote_calls,
        }


class ConcurrentEngine:
    """Thread-pool serving front-end over an :class:`AsteriaEngine`.

    Parameters
    ----------
    engine:
        The wrapped engine. With ``workers > 1`` its cache must be
        thread-safe (a :class:`~repro.core.sharding.ShardedAsteriaCache`);
        prefetching and recalibration must be disabled — both mutate
        engine-global state on the request path and belong to the sequential
        and simulated modes.
    workers:
        Thread-pool size for :meth:`handle_concurrent` and the worker count
        for :meth:`run_closed_loop`.
    singleflight:
        The miss-coalescing layer (a private one is created by default;
        share one instance to coalesce across several front-ends).
    io_pause_scale:
        When > 0, every remote fetch sleeps ``fetch.latency * scale`` real
        seconds — the wall-clock stand-in for the network round-trip the
        simulated latency describes. 0 (default) keeps fetches purely
        analytic.
    follower_timeout:
        Optional bound (seconds) on how long a coalesced miss waits behind
        its leader's in-flight fetch before falling back to a private fetch
        of its own (see :meth:`SingleFlight.run`). None (default) waits
        indefinitely.

    Thread-safety map: the sharded cache locks per shard; the remote service
    (sequential RNG + counters) is serialised by ``_remote_lock``; metrics,
    the eval log, and admission decisions by ``_record_lock``. The I/O pause
    happens *outside* all locks, so workers genuinely overlap remote waits.
    """

    def __init__(
        self,
        engine: AsteriaEngine,
        workers: int = 4,
        singleflight: SingleFlight | None = None,
        io_pause_scale: float = 0.0,
        follower_timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if io_pause_scale < 0:
            raise ValueError(f"io_pause_scale must be >= 0, got {io_pause_scale}")
        if follower_timeout is not None and follower_timeout <= 0:
            raise ValueError(
                f"follower_timeout must be > 0, got {follower_timeout}"
            )
        if engine.prefetcher is not None or engine.recalibrator is not None:
            raise ValueError(
                "ConcurrentEngine requires prefetching and recalibration "
                "disabled (both mutate engine-global state on the request "
                "path); run those studies through the sequential engine"
            )
        if workers > 1 and not getattr(engine.cache, "thread_safe", False):
            raise ValueError(
                "workers > 1 needs a thread-safe cache; wrap the shards in "
                "ShardedAsteriaCache (factory.build_concurrent_engine does)"
            )
        self.engine = engine
        self.workers = workers
        self.singleflight = singleflight if singleflight is not None else SingleFlight()
        self.io_pause_scale = io_pause_scale
        self.follower_timeout = follower_timeout
        self._remote_lock = threading.Lock()
        self._record_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None

    # -- KnowledgeEngine-compatible surface ------------------------------------
    @property
    def name(self) -> str:
        return self.engine.name

    @property
    def metrics(self) -> EngineMetrics:
        return self.engine.metrics

    @property
    def cache(self):
        return self.engine.cache

    @property
    def remote(self):
        return self.engine.remote

    def handle(self, query: Query, now: float = 0.0) -> EngineResponse:
        """Resolve one query on the calling thread (thread-safe)."""
        return self._serve(query, now)

    def handle_concurrent(
        self, queries: Sequence[Query], now: float = 0.0
    ) -> list[EngineResponse]:
        """Resolve a batch across the worker pool; responses in input order."""
        queries = list(queries)
        if not queries:
            return []
        if self.workers == 1:
            return [self._serve(query, now) for query in queries]
        pool = self._ensure_pool()
        futures = [pool.submit(self._serve, query, now) for query in queries]
        return [future.result() for future in futures]

    # -- the request path --------------------------------------------------------
    def _serve(self, query: Query, now: float) -> EngineResponse:
        engine = self.engine
        if not engine._is_cacheable(query):
            fetch = self._fetch(query, now)
            response = engine._bypass_response(fetch, fetch.latency)
            self._record(response, query, now, shared=False)
            return response
        sine_result = engine.cache.lookup(query, now, ann_only=engine.config.ann_only)
        with self._record_lock:
            lookup, _ = engine._lookup_record(query, sine_result)
        if lookup.is_hit:
            response = EngineResponse(
                result=lookup.result or "", latency=lookup.latency, lookup=lookup
            )
            self._record(response, query, now, shared=False)
            return response
        start = now + lookup.latency
        key = (query.tool, canonical_text(query.text))
        fetch, shared = self.singleflight.run(
            key,
            lambda: self._fetch_and_admit(query, start),
            timeout=self.follower_timeout,
        )
        response = EngineResponse(
            result=fetch.result,
            latency=lookup.latency + fetch.latency,
            lookup=lookup,
            fetch=fetch,
        )
        self._record(response, query, now, shared=shared)
        return response

    def _fetch_and_admit(self, query: Query, start: float) -> FetchResult:
        """Leader path: remote fetch, then admission into the query's shard."""
        engine = self.engine
        fetch = self._fetch(query, start)
        arrival = start + fetch.latency
        with self._record_lock:
            admit = engine._should_admit(query, fetch, arrival)
        if admit:
            engine.cache.insert(query, fetch, arrival)
        return fetch

    def _fetch(self, query: Query, start: float) -> FetchResult:
        with self._remote_lock:
            fetch = self.engine.remote.fetch_at(query, start)
        if self.io_pause_scale > 0:
            # Real blocking I/O stand-in; sleeps release the GIL, so other
            # workers keep serving while this fetch is "on the wire".
            time.sleep(fetch.latency * self.io_pause_scale)
        return fetch

    def _record(
        self, response: EngineResponse, query: Query, now: float, shared: bool
    ) -> None:
        with self._record_lock:
            if shared:
                self.engine.metrics.coalesced_misses += 1
            self.engine._record_response(response, query, now)

    # -- closed-loop load generation ---------------------------------------------
    def run_closed_loop(
        self,
        queries: Sequence[Query],
        time_step: float = 0.0,
        start: float = 0.0,
    ) -> LoadReport:
        """Drive ``queries`` through ``self.workers`` closed-loop workers.

        Each worker repeatedly claims the next query from a shared cursor and
        serves it to completion before claiming another (a closed loop: load
        applied equals worker count). Query *i* is served at simulated time
        ``start + i * time_step``; wall-clock time is measured around the
        whole run and throughput reported as requests per real second.
        """
        queries = list(queries)
        cursor = itertools.count()
        n = len(queries)
        errors: list[BaseException] = []

        def worker() -> None:
            while True:
                i = next(cursor)  # atomic in CPython
                if i >= n:
                    return
                try:
                    self._serve(queries[i], start + i * time_step)
                except BaseException as exc:  # surface, don't hang the join
                    errors.append(exc)
                    return

        before = self.metrics.summary()
        remote_before = self.remote.calls
        threads = [
            threading.Thread(target=worker, name=f"load-worker-{w}", daemon=True)
            for w in range(self.workers)
        ]
        begin = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - begin
        if errors:
            raise errors[0]
        after = self.metrics.summary()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        cacheable = hits + misses
        return LoadReport(
            workers=self.workers,
            requests=n,
            wall_seconds=wall,
            throughput_rps=n / wall if wall > 0 else float("inf"),
            hits=hits,
            misses=misses,
            hit_rate=hits / cacheable if cacheable else 0.0,
            coalesced_misses=after["coalesced_misses"] - before["coalesced_misses"],
            remote_calls=self.remote.calls - remote_before,
        )

    # -- lifecycle ----------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix=f"{self.name}-worker"
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ConcurrentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ConcurrentEngine(name={self.name!r}, workers={self.workers}, "
            f"singleflight={self.singleflight!r})"
        )
