"""Judge executors: where cache-validation inference actually runs.

The engine calls an executor with the number of candidates a lookup judged;
the executor models the corresponding inference. Three placements mirror the
paper's configurations:

* :class:`FixedLatencyExecutor` — constant-latency judging, used whenever
  GPU contention is out of scope.
* :class:`PartitionJudgeExecutor` — judging runs as batches on a GPU
  partition behind the priority-aware scheduler. Give it the 20 % partition
  of a shared device for the co-located system, or a partition on its own
  device for "Asteria w/o Sharing".

Default work constants are calibrated to Figure 11: one-candidate validation
costs ≈0.018 full-GPU seconds, which is ≈0.03 s of wall time on a 20 %
MPS partition with the Table-7 speed exponent.
"""

from __future__ import annotations

from typing import Generator

from repro.serving.scheduler import PriorityAwareScheduler

#: Full-GPU seconds per judger invocation (prompt assembly + prefill setup).
DEFAULT_JUDGE_BASE_WORK = 0.012
#: Additional full-GPU seconds per judged candidate (one prefill each).
DEFAULT_JUDGE_PER_ITEM_WORK = 0.006


class FixedLatencyExecutor:
    """Constant-latency judging (no GPU model)."""

    def __init__(self, base: float = 0.02, per_item: float = 0.01) -> None:
        if base < 0 or per_item < 0:
            raise ValueError("latencies must be >= 0")
        self.base = base
        self.per_item = per_item

    def run(self, sim, judged: int) -> Generator:
        """Sleep for the configured base + per-candidate latency."""
        if judged > 0:
            yield sim.timeout(self.base + self.per_item * judged)
        return None


class PartitionJudgeExecutor:
    """Judging as scheduled batches on a GPU partition.

    Parameters
    ----------
    scheduler:
        The :class:`PriorityAwareScheduler` guarding the partition; judger
        batches queue behind agent work per the paper's admission policy.
    base_work / per_item_work:
        Full-GPU seconds per batch and per candidate.
    """

    def __init__(
        self,
        scheduler: PriorityAwareScheduler,
        base_work: float = DEFAULT_JUDGE_BASE_WORK,
        per_item_work: float = DEFAULT_JUDGE_PER_ITEM_WORK,
    ) -> None:
        if base_work < 0 or per_item_work < 0:
            raise ValueError("work amounts must be >= 0")
        self.scheduler = scheduler
        self.base_work = base_work
        self.per_item_work = per_item_work
        self.batches = 0

    def run(self, sim, judged: int) -> Generator:
        """Submit one judger batch through the priority scheduler."""
        if judged <= 0:
            return None
        self.batches += 1
        work = self.base_work + self.per_item_work * judged
        yield from self.scheduler.submit_judger(work)
        return None

    def __repr__(self) -> str:
        return f"PartitionJudgeExecutor(batches={self.batches})"
