"""GPU serving substrate: MPS-style partitioning and priority co-location.

The paper co-locates the ~7B agent LLM and the ~0.6B semantic judger on one
H100 via CUDA MPS, giving the agent ~80 % of compute and protecting its
latency with a priority-aware admission controller over a unified dynamic
memory pool (§4.4, Figure 6). This package reproduces those mechanics on the
discrete-event simulator:

``GpuDevice`` / ``GpuPartition``
    A GPU with named compute partitions; work submitted to a partition with
    share *s* runs at *s* × full speed, with a bounded number of concurrent
    batch slots (continuous-batching abstraction).
``KVMemoryPool``
    Static per-workload reservations plus a shared dynamic region.
``PriorityAwareScheduler``
    Agent queue served exhaustively; judger batches admitted only when the
    agent queue is idle or its memory demand is met — the paper's two-level
    defence.
``FixedLatencyExecutor`` / ``PartitionJudgeExecutor``
    :class:`~repro.core.engine.JudgeExecutor` implementations wiring cache
    validation onto (co-located or dedicated) GPU partitions.

Alongside the simulated substrate, the package hosts the *real-thread*
serving layer (see ``concurrent`` and ``singleflight``):

``ConcurrentEngine``
    A thread-pool front-end over :class:`~repro.core.engine.AsteriaEngine`
    with a closed-loop multi-worker load generator.
``SingleFlight``
    Thundering-herd suppression for concurrent misses — the real-thread
    twin of the simulator's miss-coalescing study.

The ``aio`` subpackage is the event-loop counterpart of the thread layer:

``AsyncAsteriaEngine`` / ``AsyncRemoteService`` / ``AsyncSingleFlight``
    Await-based serving with bounded admission (``overloaded``),
    per-request deadlines (``deadline_exceeded``), hedged fetches, and
    single-flight misses that followers ``await`` instead of blocking on.
``run_open_loop`` / ``run_closed_loop``
    Fixed-arrival-rate and matched-concurrency async load generators.
"""

from repro.serving.aio import (
    AsyncAsteriaEngine,
    AsyncLoadReport,
    AsyncOutcome,
    AsyncRemoteService,
    AsyncSingleFlight,
    run_closed_loop,
    run_open_loop,
)
from repro.serving.concurrent import ConcurrentEngine, LoadReport
from repro.serving.executor import FixedLatencyExecutor, PartitionJudgeExecutor
from repro.serving.gpu import GpuDevice, GpuPartition
from repro.serving.memory import KVMemoryPool
from repro.serving.scheduler import PriorityAwareScheduler
from repro.serving.singleflight import SingleFlight

__all__ = [
    "AsyncAsteriaEngine",
    "AsyncLoadReport",
    "AsyncOutcome",
    "AsyncRemoteService",
    "AsyncSingleFlight",
    "ConcurrentEngine",
    "FixedLatencyExecutor",
    "GpuDevice",
    "GpuPartition",
    "KVMemoryPool",
    "LoadReport",
    "PartitionJudgeExecutor",
    "PriorityAwareScheduler",
    "SingleFlight",
    "run_closed_loop",
    "run_open_loop",
]
