"""Simulated remote store: a backend decorator that charges WAN latency.

Models the cost structure of keeping cache state in a remote tier (a
cross-region Redis, a settings service, an object store): every mutation
pays a configurable one-way write latency, reads pay a (usually smaller)
read latency. Latency is *accounted*, not slept — the counters feed the
replication study's staleness model on the simulated clock, and an
optional ``real_sleep_scale`` turns accounting into actual ``time.sleep``
for wall-clock experiments (same knob the async engine uses for remote
fetches).

Asymmetric links come from giving the two directions of a replica pair
different latencies — see :mod:`repro.store.replication`.
"""

from __future__ import annotations

import time

from repro.store.backend import CacheBackend, WrappingBackend


class SimulatedRemoteStore(WrappingBackend):
    """Wraps any backend and meters per-op simulated WAN latency.

    Parameters
    ----------
    inner:
        The backend actually holding the elements.
    write_latency:
        Simulated seconds charged per put/delete (the WAN round trip a
        write-through to the remote tier would cost).
    read_latency:
        Simulated seconds charged per :meth:`get`. Scans and the live
        ``elements`` mapping are *not* charged: the retrieval tier is the
        local replica; the remote tier is the durability/coherence medium.
    touch_latency:
        Simulated seconds per touch (hit-state sync); often 0 — most
        deployments batch or drop these.
    real_sleep_scale:
        When > 0, each charged latency also really sleeps
        ``latency * scale`` seconds.
    """

    name = "simulated_remote"

    def __init__(
        self,
        inner: CacheBackend,
        write_latency: float = 0.08,
        read_latency: float = 0.02,
        touch_latency: float = 0.0,
        real_sleep_scale: float = 0.0,
    ) -> None:
        super().__init__(inner)
        self.write_latency = write_latency
        self.read_latency = read_latency
        self.touch_latency = touch_latency
        self.real_sleep_scale = real_sleep_scale
        #: Total simulated seconds charged, by op kind.
        self.simulated_seconds = {"put": 0.0, "get": 0.0, "delete": 0.0, "touch": 0.0}
        self.remote_ops = 0

    def _charge(self, kind: str, latency: float) -> None:
        if latency <= 0.0:
            return
        self.simulated_seconds[kind] += latency
        self.remote_ops += 1
        if self.real_sleep_scale > 0.0:
            time.sleep(latency * self.real_sleep_scale)

    @property
    def total_simulated_seconds(self) -> float:
        return sum(self.simulated_seconds.values())

    def get(self, element_id: int):
        self._charge("get", self.read_latency)
        return self.inner.get(element_id)

    def put(self, element) -> None:
        self._charge("put", self.write_latency)
        self.inner.put(element)

    def touch(self, element) -> None:
        self._charge("touch", self.touch_latency)
        self.inner.touch(element)

    def delete(self, element_id: int, reason: str = "delete"):
        self._charge("delete", self.write_latency)
        return self.inner.delete(element_id, reason=reason)

    def stats(self) -> dict:
        return {
            **self.inner.stats(),
            "remote": {
                "write_latency": self.write_latency,
                "read_latency": self.read_latency,
                "remote_ops": self.remote_ops,
                "simulated_seconds": dict(self.simulated_seconds),
                "total_simulated_seconds": self.total_simulated_seconds,
            },
        }

    def __repr__(self) -> str:
        return (
            f"SimulatedRemoteStore(write={self.write_latency}, "
            f"read={self.read_latency}, ops={self.remote_ops})"
        )
