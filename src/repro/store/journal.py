"""Append-only JSONL write-ahead journal for the semantic cache.

Every cache mutation the backend sees becomes one JSON line:

* ``{"seq": n, "op": "admit", "id": i, "record": {...}}`` — admission, with
  the full :func:`~repro.core.persistence.element_record` payload;
* ``{"seq": n, "op": "evict", "id": i, "reason": r}`` — removal, with the
  cache's reason ("evict" capacity, "expire" TTL, "invalidate", "delete");
* ``{"seq": n, "op": "touch", "id": i, "f": freq, "a": last_access}`` — a
  validated hit, carrying *absolute* frequency and last-access values so
  replaying a touch twice is a no-op.

``seq`` is a monotonically increasing log sequence number. Replay applies
only records with ``seq`` above the cache's high-water mark
(``journal_applied_seq``), which makes replay **idempotent by
construction**: replaying the same WAL twice — the crash-during-restore
case — leaves the cache byte-identical to a single replay.

Durability is batched: the writer ``fsync``\\ s every ``fsync_every``
records (and on explicit :meth:`JournalWriter.flush`, which the serving
stop paths call on SIGTERM). After ``kill -9``, everything up to the last
fsynced batch replays; a torn final line (the crash-mid-write case) is
detected and dropped by :func:`read_journal`.

Compaction is snapshot+truncate: :class:`~repro.store.persist.PersistentStore`
writes a fresh snapshot (atomic rename), then :meth:`JournalWriter.truncate`
resets the log and its sequence counter.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.cache import AsteriaCache
from repro.core.persistence import element_record
from repro.store.backend import CacheBackend, WrappingBackend


class JournalWriter:
    """Appends journal records to a JSONL file with batched fsync.

    Parameters
    ----------
    path:
        Journal file (created if missing; appended to if present — the
        sequence counter resumes after the last intact record).
    fsync_every:
        Records per fsync batch. 1 = fsync every record (safest, slowest);
        larger batches amortise the disk flush at the cost of losing up to
        ``fsync_every - 1`` records on a hard kill.
    """

    def __init__(self, path: "str | Path", fsync_every: int = 8) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.seq = 0
        if self.path.exists():
            records, _truncated = read_journal(self.path)
            if records:
                self.seq = records[-1]["seq"]
        self._file = open(self.path, "a", encoding="utf-8")
        self._pending = 0
        #: Highest sequence number guaranteed on disk (fsynced).
        self.durable_seq = self.seq
        self.appended = 0
        self.fsyncs = 0

    def append(self, payload: dict) -> int:
        """Write one record (``seq`` is stamped here); returns its seq."""
        self.seq += 1
        payload = {"seq": self.seq, **payload}
        self._file.write(json.dumps(payload, allow_nan=False) + "\n")
        self._pending += 1
        self.appended += 1
        if self._pending >= self.fsync_every:
            self.flush()
        return self.seq

    def flush(self) -> None:
        """Flush buffered records and fsync — everything appended so far is
        durable when this returns."""
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        self._pending = 0
        self.durable_seq = self.seq

    def truncate(self) -> None:
        """Reset the journal to empty (post-snapshot compaction)."""
        self._file.close()
        self._file = open(self.path, "w", encoding="utf-8")
        self._file.flush()
        os.fsync(self._file.fileno())
        self.seq = 0
        self.durable_seq = 0
        self._pending = 0

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()

    def stats(self) -> dict:
        return {
            "seq": self.seq,
            "durable_seq": self.durable_seq,
            "appended": self.appended,
            "fsyncs": self.fsyncs,
            "fsync_every": self.fsync_every,
        }

    def __repr__(self) -> str:
        return f"JournalWriter(path={str(self.path)!r}, seq={self.seq})"


def read_journal(path: "str | Path") -> tuple[list[dict], bool]:
    """Read every intact record from a journal file.

    Returns ``(records, truncated_tail)``. A process killed mid-append can
    leave a torn final line; parsing stops there and ``truncated_tail`` is
    True. A torn line anywhere *before* the end means real corruption and
    raises ``ValueError`` instead of silently dropping committed records.
    """
    path = Path(path)
    if not path.exists():
        return [], False
    records: list[dict] = []
    torn_at: int | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if torn_at is not None:
                raise ValueError(
                    f"journal {path} corrupt: undecodable record at line "
                    f"{torn_at} is not the final line"
                )
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                torn_at = line_no
                continue
            if not isinstance(record, dict) or "seq" not in record:
                torn_at = line_no
                continue
            records.append(record)
    return records, torn_at is not None


def replay_journal(cache: AsteriaCache, records: list[dict]) -> dict:
    """Apply journal records to ``cache``; returns a replay report.

    Only records with ``seq`` above ``cache.journal_applied_seq`` are
    applied (the high-water mark advances as they are), so calling this
    twice with the same WAL is exactly equivalent to calling it once.
    Admits preserve element ids and do **not** enforce capacity — the
    journal's own evict records reproduce the membership trajectory.
    Cache stats advance the way the live run advanced them: admits count
    as inserts, capacity evictions as evictions, TTL removals as
    expirations.
    """
    applied_seq = getattr(cache, "journal_applied_seq", 0)
    report = {"applied": 0, "skipped": 0, "admits": 0, "evicts": 0, "touches": 0}
    elements = cache.elements
    for record in records:
        seq = record["seq"]
        if seq <= applied_seq:
            report["skipped"] += 1
            continue
        op = record["op"]
        if op == "admit":
            element = cache.admit_restored(
                record["record"], element_id=record["id"], drop_expired=False
            )
            if element is not None:
                cache.stats.inserts += 1
                if element.prefetched:
                    cache.stats.prefetch_inserts += 1
                report["admits"] += 1
        elif op == "evict":
            if record["id"] in elements:
                cache.remove(record["id"], reason=record.get("reason", "delete"))
                reason = record.get("reason")
                if reason == "evict":
                    cache.stats.evictions += 1
                elif reason == "expire":
                    cache.stats.expirations += 1
                report["evicts"] += 1
        elif op == "touch":
            element = elements.get(record["id"])
            if element is not None:
                element.frequency = record["f"]
                element.last_accessed_at = record["a"]
                report["touches"] += 1
        applied_seq = seq
        report["applied"] += 1
    cache.journal_applied_seq = applied_seq
    return report


class JournaledBackend(WrappingBackend):
    """Backend decorator that writes every mutation to a :class:`JournalWriter`.

    Attach *after* restore completes (see
    :meth:`repro.core.cache.AsteriaCache.wrap_backend`) so replayed
    admissions are not re-journaled. ``log_touches=False`` trades exact
    frequency/recency recovery for a much smaller journal — membership is
    still exact.
    """

    name = "journaled"

    def __init__(
        self,
        inner: CacheBackend,
        writer: JournalWriter,
        log_touches: bool = True,
    ) -> None:
        super().__init__(inner)
        self.writer = writer
        self.log_touches = log_touches

    def put(self, element) -> None:
        self.inner.put(element)
        self.writer.append(
            {"op": "admit", "id": element.element_id, "record": element_record(element)}
        )

    def touch(self, element) -> None:
        self.inner.touch(element)
        if self.log_touches:
            self.writer.append(
                {
                    "op": "touch",
                    "id": element.element_id,
                    "f": element.frequency,
                    "a": element.last_accessed_at,
                }
            )

    def delete(self, element_id: int, reason: str = "delete"):
        element = self.inner.delete(element_id, reason=reason)
        if element is not None:
            self.writer.append({"op": "evict", "id": element_id, "reason": reason})
        return element

    def stats(self) -> dict:
        return {**self.inner.stats(), "journal": self.writer.stats()}

    def flush(self) -> None:
        self.writer.flush()
        self.inner.flush()

    def close(self) -> None:
        self.writer.close()
        self.inner.close()
