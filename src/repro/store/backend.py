"""Pluggable element storage behind :class:`~repro.core.cache.AsteriaCache`.

The cache's semantic machinery (two-stage lookup, LCFU eviction, TTL aging)
is independent of *where* elements live. :class:`CacheBackend` is the
protocol separating the two: the cache decides *what* to admit, evict, and
touch; the backend decides *how* the element map is stored. Three
implementations ship:

* :class:`InProcessBackend` — the classic dict (+ optional embedding arena)
  store the cache always had, now behind the protocol. Zero-copy: the
  ``elements`` mapping it exposes is the live dict the Sine pipeline scans.
* :class:`~repro.store.filestore.FileStoreBackend` — write-through
  per-element JSON files for durable single-node stores.
* :class:`~repro.store.remote.SimulatedRemoteStore` — wraps another backend
  and charges simulated WAN latency per mutation, for replication studies.

Decorator backends (:class:`~repro.store.journal.JournaledBackend`,
:class:`~repro.store.replication.ReplicatingBackend`) wrap an inner backend
and observe the same mutation stream, which is how durability and
replication attach to a running cache without touching its hot path.

Embedding-slot hooks (:meth:`CacheBackend.bind_embedding` /
:meth:`CacheBackend.release_embedding`) keep the arena fast path intact:
for the in-process backend, binding allocates an arena row and returns a
zero-copy view, exactly as the pre-protocol cache did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.core.element import SemanticElement

#: Delete reasons stamped by the cache so decorator backends (journal,
#: replication) can tell capacity evictions from TTL expiry from explicit
#: invalidation without re-deriving the cause.
DELETE_REASONS = ("delete", "evict", "expire", "invalidate")


@dataclass
class BackendOpStats:
    """Mutation counters every backend keeps (observability + tests)."""

    gets: int = 0
    puts: int = 0
    touches: int = 0
    deletes: int = 0
    deletes_by_reason: dict = field(default_factory=dict)

    def note_delete(self, reason: str) -> None:
        self.deletes += 1
        self.deletes_by_reason[reason] = self.deletes_by_reason.get(reason, 0) + 1

    def as_dict(self) -> dict:
        return {
            "gets": self.gets,
            "puts": self.puts,
            "touches": self.touches,
            "deletes": self.deletes,
            "deletes_by_reason": dict(self.deletes_by_reason),
        }


@runtime_checkable
class CacheBackend(Protocol):
    """Element storage protocol the cache constructs through.

    Implementations own the ``{element_id: SemanticElement}`` mapping and
    (optionally) the embedding arena. The cache routes every mutation
    through :meth:`put` / :meth:`delete` / :meth:`touch`, so a decorator
    backend sees the complete, ordered mutation stream.
    """

    @property
    def elements(self) -> Mapping[int, SemanticElement]:
        """Live element mapping (the Sine pipeline scans this zero-copy)."""
        ...

    @property
    def arena(self):
        """The embedding arena rows live in, or None."""
        ...

    def get(self, element_id: int) -> SemanticElement | None: ...

    def put(self, element: SemanticElement) -> None: ...

    def touch(self, element: SemanticElement) -> None:
        """Record a hit-driven state change (frequency / last access)."""
        ...

    def delete(
        self, element_id: int, reason: str = "delete"
    ) -> SemanticElement | None:
        """Remove an element; releases its arena slot. ``reason`` is one of
        :data:`DELETE_REASONS`."""
        ...

    def scan(self) -> Iterator[SemanticElement]: ...

    def stats(self) -> dict: ...

    # -- embedding-slot hooks ------------------------------------------------
    def bind_embedding(self, embedding: np.ndarray) -> tuple[np.ndarray, int | None]:
        """Take ownership of a new element's embedding.

        Returns ``(embedding, arena_slot)`` — for arena-backed stores the
        returned embedding is a zero-copy view of the allocated row.
        """
        ...

    def release_embedding(self, slot: int | None) -> None: ...

    def flush(self) -> None:
        """Push any buffered state to the durable medium (no-op in memory)."""
        ...

    def close(self) -> None: ...


class InProcessBackend:
    """The classic in-memory dict (+ optional arena) store.

    This is byte-for-byte the storage behaviour :class:`AsteriaCache` had
    before the backend split: a plain dict the retrieval path scans
    directly, and an optional :class:`~repro.core.arena.EmbeddingArena`
    whose rows back element embeddings zero-copy.
    """

    name = "inprocess"
    durable = False

    def __init__(self, arena=None) -> None:
        self._elements: dict[int, SemanticElement] = {}
        self._arena = arena
        self.ops = BackendOpStats()

    # -- protocol ------------------------------------------------------------
    @property
    def elements(self) -> dict[int, SemanticElement]:
        return self._elements

    @property
    def arena(self):
        return self._arena

    def get(self, element_id: int) -> SemanticElement | None:
        self.ops.gets += 1
        return self._elements.get(element_id)

    def put(self, element: SemanticElement) -> None:
        self._elements[element.element_id] = element
        self.ops.puts += 1

    def touch(self, element: SemanticElement) -> None:
        self.ops.touches += 1

    def delete(
        self, element_id: int, reason: str = "delete"
    ) -> SemanticElement | None:
        element = self._elements.pop(element_id, None)
        if element is None:
            return None
        if element.arena_slot is not None:
            self._arena.release(element.arena_slot)
            element.arena_slot = None
        self.ops.note_delete(reason)
        return element

    def scan(self) -> Iterator[SemanticElement]:
        return iter(list(self._elements.values()))

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._elements

    def stats(self) -> dict:
        return {"backend": self.name, "items": len(self._elements), **self.ops.as_dict()}

    def bind_embedding(self, embedding: np.ndarray) -> tuple[np.ndarray, int | None]:
        if self._arena is None:
            return embedding, None
        slot = self._arena.allocate(embedding)
        return self._arena.get(slot), slot

    def release_embedding(self, slot: int | None) -> None:
        if slot is not None and self._arena is not None:
            self._arena.release(slot)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"InProcessBackend(items={len(self._elements)}, arena={self._arena!r})"


class WrappingBackend:
    """Base for decorator backends: delegate everything to ``inner``.

    Subclasses override the mutation methods they observe and call
    ``super()`` (or ``self.inner``) to keep the chain intact. The element
    mapping and arena are always the innermost store's — wrapping never
    copies state, so a cache can be wrapped mid-life (see
    :meth:`repro.core.cache.AsteriaCache.wrap_backend`).
    """

    def __init__(self, inner: CacheBackend) -> None:
        self.inner = inner

    @property
    def elements(self) -> Mapping[int, SemanticElement]:
        return self.inner.elements

    @property
    def arena(self):
        return self.inner.arena

    def get(self, element_id: int) -> SemanticElement | None:
        return self.inner.get(element_id)

    def put(self, element: SemanticElement) -> None:
        self.inner.put(element)

    def touch(self, element: SemanticElement) -> None:
        self.inner.touch(element)

    def delete(
        self, element_id: int, reason: str = "delete"
    ) -> SemanticElement | None:
        return self.inner.delete(element_id, reason=reason)

    def scan(self) -> Iterator[SemanticElement]:
        return self.inner.scan()

    def __len__(self) -> int:
        return len(self.inner.elements)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self.inner.elements

    def stats(self) -> dict:
        return self.inner.stats()

    def bind_embedding(self, embedding: np.ndarray) -> tuple[np.ndarray, int | None]:
        return self.inner.bind_embedding(embedding)

    def release_embedding(self, slot: int | None) -> None:
        self.inner.release_embedding(slot)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def unwrap(self) -> CacheBackend:
        """The innermost backend (skips every decorator layer)."""
        node = self.inner
        while isinstance(node, WrappingBackend):
            node = node.inner
        return node
