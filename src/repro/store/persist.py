"""Snapshot + journal durability behind ``--persist DIR``.

Directory layout (one per cache; sharded caches get one subdirectory per
shard):

.. code-block:: text

    DIR/
      snapshot.json    # CacheSnapshot v2, atomically replaced at checkpoint
      journal.jsonl    # WAL of mutations since the snapshot

Attach sequence (:meth:`PersistentStore.attach`):

1. **Restore** — load the snapshot (zero time-shift: a restarted process
   continues the original timeline) and replay the journal over it. Ids,
   frequencies, timestamps, and cumulative cache stats all resume exactly.
2. **Checkpoint** — write a fresh snapshot of the recovered state
   (write-tmp-rename) and truncate the journal. A crash at any point in
   this window recovers from either the old snapshot+journal or the new
   snapshot; never from a half state.
3. **Wrap** — decorate the cache's backend with a
   :class:`~repro.store.journal.JournaledBackend` so every subsequent
   mutation lands in the (now empty) journal.

``flush()`` (wired to SIGTERM in the serving paths) makes everything
appended so far durable; ``kill -9`` loses at most the last unfsynced
batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.cache import AsteriaCache
from repro.core.persistence import CacheSnapshot
from repro.store.journal import JournaledBackend, JournalWriter, read_journal, replay_journal

SNAPSHOT_FILE = "snapshot.json"
JOURNAL_FILE = "journal.jsonl"


@dataclass
class RestoreReport:
    """What :meth:`PersistentStore.attach` recovered."""

    cold: bool = True
    snapshot_records: int = 0
    snapshot_restored: int = 0
    journal_records: int = 0
    journal_truncated_tail: bool = False
    journal_applied: int = 0
    journal_admits: int = 0
    journal_evicts: int = 0
    journal_touches: int = 0
    restored_items: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class PersistentStore:
    """One cache's durable home: ``snapshot.json`` + ``journal.jsonl``."""

    def __init__(
        self,
        directory: "str | Path",
        fsync_every: int = 8,
        log_touches: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_every = fsync_every
        self.log_touches = log_touches
        self.writer: JournalWriter | None = None
        self.cache: AsteriaCache | None = None

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_FILE

    # -- lifecycle -----------------------------------------------------------
    def attach(self, cache: AsteriaCache, now: float | None = None) -> RestoreReport:
        """Restore ``cache`` from disk, checkpoint, and start journaling.

        ``cache`` must be empty. ``now=None`` restores on the snapshot's own
        clock (zero shift — the warm-restart mode); pass a wall-clock style
        ``now`` to age entries across downtime instead.
        """
        if self.cache is not None:
            raise RuntimeError("store already attached")
        report = RestoreReport()
        if self.snapshot_path.exists():
            snapshot = CacheSnapshot.load(self.snapshot_path)
            report.cold = False
            report.snapshot_records = len(snapshot)
            report.snapshot_restored = snapshot.restore_into(
                cache, now=now, restore_stats=True
            )
        records, truncated = read_journal(self.journal_path)
        if records:
            report.cold = False
        report.journal_records = len(records)
        report.journal_truncated_tail = truncated
        if records:
            replay = replay_journal(cache, records)
            report.journal_applied = replay["applied"]
            report.journal_admits = replay["admits"]
            report.journal_evicts = replay["evicts"]
            report.journal_touches = replay["touches"]
        report.restored_items = len(cache)
        # Compact what we just recovered, then journal from a clean slate.
        CacheSnapshot.of(cache).save(self.snapshot_path)
        self.journal_path.unlink(missing_ok=True)
        self.writer = JournalWriter(self.journal_path, fsync_every=self.fsync_every)
        cache.journal_applied_seq = 0
        cache.wrap_backend(
            lambda inner: JournaledBackend(
                inner, self.writer, log_touches=self.log_touches
            )
        )
        self.cache = cache
        return report

    def checkpoint(self) -> None:
        """Snapshot the live cache and truncate the journal (compaction)."""
        if self.cache is None or self.writer is None:
            raise RuntimeError("store not attached")
        CacheSnapshot.of(self.cache).save(self.snapshot_path)
        self.writer.truncate()
        self.cache.journal_applied_seq = 0

    def flush(self) -> None:
        """Force-fsync the journal (graceful-stop path)."""
        if self.writer is not None:
            self.writer.flush()

    def close(self, checkpoint: bool = False) -> None:
        """Flush and close; optionally compact first so the next start
        restores from the snapshot alone."""
        if checkpoint and self.cache is not None:
            self.checkpoint()
        if self.writer is not None:
            self.writer.close()

    def stats(self) -> dict:
        return {
            "directory": str(self.directory),
            "journal": self.writer.stats() if self.writer is not None else None,
        }


class ShardedPersistentStore:
    """Per-shard :class:`PersistentStore` fan-out for a sharded cache.

    Shard ``i`` persists under ``DIR/shard_NN`` — the same layout a proc-tier
    worker uses for its shard, so a thread-engine persist dir warm-starts a
    proc engine with the same shard count and vice versa.
    """

    def __init__(
        self,
        directory: "str | Path",
        n_shards: int,
        fsync_every: int = 8,
        log_touches: bool = True,
    ) -> None:
        self.directory = Path(directory)
        existing = sorted(self.directory.glob("shard_*")) if self.directory.exists() else []
        if existing and len(existing) != n_shards:
            # Restoring a 2-shard layout into a 3-shard cache would route
            # restored entries to the wrong shards (stable-hash routing is
            # a function of the shard count) — refuse rather than corrupt.
            raise ValueError(
                f"persist dir {self.directory} holds {len(existing)} shard "
                f"stores but the cache has {n_shards} shards; use the "
                f"original shard count or a fresh directory"
            )
        self.stores = [
            PersistentStore(
                shard_directory(self.directory, shard),
                fsync_every=fsync_every,
                log_touches=log_touches,
            )
            for shard in range(n_shards)
        ]

    def attach(self, sharded_cache, now: float | None = None) -> list[RestoreReport]:
        shards = sharded_cache.shards
        if len(shards) != len(self.stores):
            raise ValueError(
                f"persist dir has {len(self.stores)} shard stores but the "
                f"cache has {len(shards)} shards"
            )
        return [
            store.attach(shard, now=now)
            for store, shard in zip(self.stores, shards)
        ]

    def checkpoint(self) -> None:
        for store in self.stores:
            store.checkpoint()

    def flush(self) -> None:
        for store in self.stores:
            store.flush()

    def close(self, checkpoint: bool = False) -> None:
        for store in self.stores:
            store.close(checkpoint=checkpoint)


def restore_preview(directory: "str | Path") -> dict:
    """What a process attaching over ``directory`` would warm-restore,
    without loading anything into a cache.

    The proc-tier supervisor calls this before respawning a persisted shard
    worker: the counts feed the ``worker_respawn`` trace span and let an
    operator distinguish a warm comeback (snapshot/journal records waiting)
    from a cold one. Read-only, and it tolerates the same torn journal tail
    :meth:`PersistentStore.attach` does (``read_journal`` drops it).
    """
    directory = Path(directory)
    snapshot_path = directory / SNAPSHOT_FILE
    snapshot_records = 0
    if snapshot_path.exists():
        snapshot_records = len(CacheSnapshot.load(snapshot_path))
    records, truncated = read_journal(directory / JOURNAL_FILE)
    return {
        "cold": snapshot_records == 0 and not records,
        "snapshot_records": snapshot_records,
        "journal_records": len(records),
        "journal_truncated_tail": truncated,
    }


def shard_directory(directory: "str | Path", shard: int) -> Path:
    """The persist subdirectory for shard ``shard`` (shared naming between
    the thread-tier and proc-tier persistence paths)."""
    return Path(directory) / f"shard_{shard:02d}"
