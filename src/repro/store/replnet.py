"""Socket transport for the replication layer: ``repro replicate``.

Two ``python -m repro replicate`` processes — one ``--listen PORT``, one
``--peer HOST:PORT`` — each drive their own workload into their own cache
and exchange the same diff records the simulated
:class:`~repro.store.replication.ReplicationDriver` exchanges, but over a
real TCP connection using the proc tier's frame protocol.

Session protocol (every frame is a codec-encoded dict):

``{"op": "hello", "magic": ..., "node": id}``
    Handshake; sent immediately after connecting.
``{"op": "diff", "from": id, "sent_at": t, "records": [...]}``
    One sync's worth of diff records (see
    :mod:`repro.store.replication` for the record schema). Sent every
    ``sync_interval`` wall seconds while either side has pending records.
    With a tracer attached the message also carries a ``"trace"`` context
    (``[trace_id, span_id]`` of the sender's ``repl_sync`` span); the
    receiver hangs its ``apply_diff`` span under it, so merged exports
    show one send->apply edge per sync. Untraced sessions omit the key.
``{"op": "done", "node": id}``
    The sender's workload is finished and its outbound queue is drained.
``{"op": "digest", "node": id, "digest": {truth_key: [version, origin]}}``
    The sender's live LWW registry, sent once both sides are done. Each
    side compares the peer digest against its own to score convergence —
    TCP ordering guarantees every diff preceding the digest has already
    been applied, so matching digests mean the pair actually converged.
``{"op": "bye"}``
    Clean teardown.

Both roles run the *same* loop (:func:`replicate_session`); only who dials
differs. SIGTERM/SIGINT (the ``stop`` event) ends the workload early,
flushes pending diffs, and still completes the digest exchange when the
peer cooperates.
"""

from __future__ import annotations

import select
import socket
import time

from repro.obs.distributed import record_remote_leaf
from repro.serving.proc.protocol import get_codec, recv_frame, send_frame
from repro.store.replication import ReplicaNode

#: Handshake magic; bumping it breaks mixed-version pairs loudly.
HELLO_MAGIC = "repro-replica-v1"

#: Seconds a session blocks in ``recv`` before advancing its workload.
POLL_TIMEOUT = 0.02

#: Wall seconds a finished node waits for the peer's digest before giving up.
SETTLE_TIMEOUT = 15.0


def open_listener(host: str, port: int) -> socket.socket:
    """Bind and listen for exactly one replication peer."""
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(1)
    return server


def accept_peer(server: socket.socket, stop=None, timeout: float = 120.0):
    """Accept the peer connection, polling ``stop`` between attempts.

    Returns the connected socket, or None if stopped/timed out first.
    """
    server.settimeout(0.5)
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            if stop is not None and stop.is_set():
                return None
            try:
                sock, _ = server.accept()
            except socket.timeout:
                continue
            return sock
        return None
    finally:
        server.close()


def connect_peer(host: str, port: int, timeout: float = 30.0) -> socket.socket:
    """Dial the listening replica, retrying until it is up."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


def node_digest(node: ReplicaNode) -> dict:
    """The node's live LWW registry: truth_key -> [version, origin].

    Only keys with a cached element are included — tombstone-only keys in
    ``versions`` describe entries both sides dropped, and lists (not
    tuples) keep the wire form codec-agnostic.
    """
    return {
        key: list(node.versions[key])
        for key, ids in node.truth_index.items()
        if ids and key in node.versions
    }


def digest_agreement(mine: dict, theirs: dict) -> dict:
    """Score two digests: fraction of union truth keys with equal versions."""
    keys = set(mine) | set(theirs)
    if not keys:
        return {"agreement": 1.0, "union_keys": 0, "stale_keys": 0}
    agree = sum(
        1
        for key in keys
        if key in mine
        and key in theirs
        and list(mine[key]) == list(theirs[key])
    )
    return {
        "agreement": agree / len(keys),
        "union_keys": len(keys),
        "stale_keys": len(keys) - agree,
    }


def replicate_session(
    node: ReplicaNode,
    sock: socket.socket,
    workload=None,
    sync_interval: float = 0.5,
    codec: str = "pickle",
    stop=None,
    pace: float = 0.0,
    settle_timeout: float = SETTLE_TIMEOUT,
    tracer=None,
) -> dict:
    """Run one replication session over a connected socket.

    ``workload`` is an iterator of callables ``step(now)`` — typically
    ``engine.handle`` closures — executed one per loop turn so diff
    application interleaves with local writes the way a live region's
    would. ``pace`` sleeps that many wall seconds after each step.

    ``tracer`` (optional) records a ``repl_sync`` span per outgoing diff
    (its context rides in the message) and an ``apply_diff`` span per
    incoming one, parented under the *sender's* context via
    :func:`~repro.obs.distributed.record_remote_leaf`.

    Returns a report dict with the convergence score from the digest
    exchange (``agreement`` is None if the peer vanished first).
    """
    wire_codec = get_codec(codec)
    # Frames are tiny and, once select says readable, arriving; a generous
    # per-frame timeout only guards against a wedged peer.
    sock.settimeout(1.0)
    start = time.monotonic()
    frames_out = frames_in = 0

    def send(message: dict) -> bool:
        # A peer that already said bye and closed is not an error at this
        # layer — the caller sees peer_closed and winds down.
        nonlocal frames_out
        try:
            send_frame(sock, wire_codec.dumps(message))
        except OSError:
            return False
        frames_out += 1
        return True

    def send_diff() -> bool:
        # One repl_sync span per outgoing diff; its context rides in the
        # message so the peer's apply_diff span hangs under it.
        message = node.diff_message()
        if tracer is None:
            return send(message)
        with tracer.request(
            "repl_sync", node=node.node_id, records=len(message["records"])
        ) as span:
            message["trace"] = [span.trace_id, span.span_id]
            return send(message)

    send({"op": "hello", "magic": HELLO_MAGIC, "node": node.node_id})
    work = iter(workload or ())
    steps = 0
    peer_id = None
    peer_done = False
    peer_digest = None
    local_done = workload is None
    sent_done = False
    sent_digest = False
    agreement = None
    peer_closed = False
    next_sync = sync_interval
    settle_deadline = None
    try:
        while True:
            now = time.monotonic() - start
            node.now = max(node.now, now)
            if stop is not None and stop.is_set():
                local_done = True
            # -- pump one incoming frame -----------------------------------
            # Poll (not block) while the workload still has steps, so local
            # writes aren't rate-limited by an idle link; once done, block
            # briefly to avoid spinning while waiting on the peer.
            wait = POLL_TIMEOUT if local_done else 0.0
            readable, _, _ = select.select([sock], [], [], wait)
            payload = None
            if readable:
                try:
                    payload = recv_frame(sock)
                except socket.timeout:
                    payload = None
                else:
                    if payload is None:
                        peer_closed = True
                        break
            if payload:
                frames_in += 1
                message = wire_codec.loads(payload)
                op = message.get("op")
                if op == "hello":
                    if message.get("magic") != HELLO_MAGIC:
                        raise RuntimeError(
                            f"peer handshake mismatch: {message.get('magic')!r}"
                        )
                    peer_id = message.get("node")
                elif op == "diff":
                    t0 = tracer.clock() if tracer is not None else 0.0
                    node.apply_diff(message["records"], now=now)
                    record_remote_leaf(
                        tracer,
                        message.get("trace"),
                        "apply_diff",
                        t0,
                        attrs={
                            "records": len(message["records"]),
                            "from": message.get("from"),
                        },
                    )
                elif op == "done":
                    peer_done = True
                elif op == "digest":
                    peer_digest = message["digest"]
                elif op == "bye":
                    peer_closed = True
                    break
            # -- advance the local workload one step -----------------------
            if not local_done:
                try:
                    step = next(work)
                except StopIteration:
                    local_done = True
                else:
                    step(now)
                    steps += 1
                    if pace > 0.0:
                        time.sleep(pace)
            # -- periodic diff sync ----------------------------------------
            if now >= next_sync and node.pending:
                if not send_diff():
                    peer_closed = True
                    break
                next_sync = now + sync_interval
            # -- done / digest handshake -----------------------------------
            if local_done and not sent_done:
                if node.pending:
                    send_diff()
                if not send({"op": "done", "node": node.node_id}):
                    peer_closed = True
                    break
                sent_done = True
                settle_deadline = now + settle_timeout
            if sent_done and peer_done and not sent_digest:
                # Every peer diff preceding its "done" has been applied
                # (TCP ordering + the one-frame pump above runs first), so
                # the digest reflects the merged state.
                if not send(
                    {
                        "op": "digest",
                        "node": node.node_id,
                        "digest": node_digest(node),
                    }
                ):
                    peer_closed = True
                    break
                sent_digest = True
            if sent_digest and peer_digest is not None:
                agreement = digest_agreement(node_digest(node), peer_digest)
                send({"op": "bye"})
                break
            if settle_deadline is not None and now > settle_deadline:
                break
    finally:
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        sock.close()
    return {
        "node": node.node_id,
        "peer": peer_id,
        "peer_closed_first": peer_closed,
        "steps": steps,
        "frames_out": frames_out,
        "frames_in": frames_in,
        "items": len(node.cache),
        "agreement": agreement,
        "replication": node.stats(),
    }
