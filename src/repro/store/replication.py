"""Cross-region cache replication: incremental diffs, LWW, simulated WAN.

Two cache instances ("regions") each serve their own query stream and
exchange **incremental diffs** — admissions and invalidations observed by a
:class:`ReplicatingBackend` decorator — every ``sync_interval`` simulated
seconds. Records are versioned per entry and conflicts resolve
**last-writer-wins on** ``truth_key`` (the remote fact identity): the
highest ``(version, origin)`` pair for a truth key wins on both sides, so
the pair converges without coordination, remote-settings style.

Diff wire schema (one frame per sync, payload = codec-encoded dict):

.. code-block:: text

    {"op": "diff", "from": node_id, "sent_at": t, "records": [
        {"truth_key": k, "version": t_write, "origin": node_id,
         "op": "upsert", "record": {<element_record>}},
        {"truth_key": k, "version": t_write, "origin": node_id,
         "op": "invalidate", "record": null},
    ]}

Diffs travel as real frame-protocol bytes (:func:`encode_frame` on the
sender, :class:`FrameSplitter` on the receiver) through a
:class:`FrameLink` that delivers them after a configurable one-way latency
on the simulated clock — the two directions of a pair get *asymmetric*
latencies, like an actual inter-region path. The same schema serves over a
real TCP socket for ``python -m repro replicate --peer`` /``--listen``.

What replicates: admissions (upserts) and explicit invalidations. Capacity
evictions and TTL expirations do **not** — they are local resource
decisions; region B with a colder working set should not lose an entry
because region A ran out of room.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache import AsteriaCache
from repro.core.persistence import element_record
from repro.serving.proc.protocol import Codec, FrameSplitter, encode_frame, get_codec
from repro.store.backend import CacheBackend, WrappingBackend


class ReplicatingBackend(WrappingBackend):
    """Backend decorator feeding a :class:`ReplicaNode`'s outbound diff log.

    Observes the cache's mutation stream: every put becomes an ``upsert``
    diff, every ``reason="invalidate"`` delete an ``invalidate`` diff.
    Mutations performed while the node is *applying* a remote diff are
    suppressed (no echo ping-pong).
    """

    name = "replicating"

    def __init__(self, inner: CacheBackend, node: "ReplicaNode") -> None:
        super().__init__(inner)
        self.node = node

    def put(self, element) -> None:
        self.inner.put(element)
        self.node.note_put(element)

    def delete(self, element_id: int, reason: str = "delete"):
        element = self.inner.delete(element_id, reason=reason)
        if element is not None:
            self.node.note_delete(element, reason)
        return element

    def stats(self) -> dict:
        return {**self.inner.stats(), "replication": self.node.stats()}


@dataclass
class ReplicaStats:
    records_out: int = 0
    records_in: int = 0
    applied_upserts: int = 0
    applied_invalidations: int = 0
    lww_rejects: int = 0
    syncs_sent: int = 0
    syncs_received: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class ReplicaNode:
    """One region's cache plus its replication state.

    Wraps ``cache``'s backend on construction; afterwards every local
    admission/invalidation is queued for the next sync, and
    :meth:`apply_diff` merges remote records under LWW.

    ``now`` is the node's view of the shared simulated clock — callers
    (driver, CLI loops) advance it as their workload advances; it versions
    invalidations and ages incoming entries.
    """

    def __init__(self, node_id: str, cache: AsteriaCache) -> None:
        self.node_id = node_id
        self.cache = cache
        self.now = 0.0
        #: Outbound diff records accumulated since the last sync.
        self.pending: list[dict] = []
        #: LWW registry: truth_key -> (version, origin) of the latest write
        #: this node knows about (including tombstones).
        self.versions: dict[str, tuple[float, str]] = {}
        #: truth_key -> set of local element ids currently caching it.
        self.truth_index: dict[str, set[int]] = {}
        self._applying = False
        self._superseding = False
        self.stats_rep = ReplicaStats()
        cache.wrap_backend(lambda inner: ReplicatingBackend(inner, self))
        # Adopt any pre-existing population (warm-started caches).
        for element in cache.elements.values():
            if element.truth_key is not None:
                self.truth_index.setdefault(element.truth_key, set()).add(
                    element.element_id
                )
                self.versions[element.truth_key] = (element.created_at, node_id)

    # -- local mutation observers (called by ReplicatingBackend) -----------
    def note_put(self, element) -> None:
        truth_key = element.truth_key
        if truth_key is None:
            return
        if not self._applying:
            # A write to a truth key supersedes every older cached entry
            # for that key — same rule apply_diff enforces for remote
            # writes, so content (not just versions) converges. The upsert
            # diff itself carries this, so the removals emit nothing.
            stale = [
                element_id
                for element_id in self.truth_index.get(truth_key, ())
                if element_id != element.element_id
            ]
            if stale:
                self._superseding = True
                try:
                    for element_id in stale:
                        self.cache.remove(element_id, reason="invalidate")
                finally:
                    self._superseding = False
        self.truth_index.setdefault(truth_key, set()).add(element.element_id)
        if self._applying:
            return
        version = self._next_version(truth_key, element.created_at)
        self.versions[truth_key] = (version, self.node_id)
        self.pending.append(
            {
                "truth_key": truth_key,
                "version": version,
                "origin": self.node_id,
                "op": "upsert",
                "record": element_record(element),
            }
        )

    def note_delete(self, element, reason: str) -> None:
        truth_key = element.truth_key
        if truth_key is None:
            return
        ids = self.truth_index.get(truth_key)
        if ids is not None:
            ids.discard(element.element_id)
            if not ids:
                del self.truth_index[truth_key]
        if self._applying or self._superseding or reason != "invalidate":
            # Capacity/TTL removals are local decisions, and supersede
            # removals ride the upsert that caused them; only explicit
            # invalidation is a statement about the truth itself.
            return
        version = self._next_version(truth_key, self.now)
        self.versions[truth_key] = (version, self.node_id)
        self.pending.append(
            {
                "truth_key": truth_key,
                "version": version,
                "origin": self.node_id,
                "op": "invalidate",
                "record": None,
            }
        )

    def _next_version(self, truth_key: str, at: float) -> float:
        """Lamport-style version for a local write to ``truth_key``.

        Normally the write's own timestamp — but never at or below the
        version this node already knows for the key. Two regions keep
        independent clocks (socket sessions run one per process), so a
        lagging region's fresh write can carry a timestamp *below* the
        peer-originated version it supersedes locally; shipping that stale
        number would make the peer LWW-reject the diff and the pair would
        never re-agree on the key. Bumping past the known version keeps
        "local write supersedes what it observed" true in wire order too.
        """
        known = self.versions.get(truth_key)
        if known is not None and at <= known[0]:
            return known[0] + 1e-6
        return at

    # -- diff exchange -------------------------------------------------------
    def collect_diff(self) -> list[dict]:
        """Drain the outbound record queue (one sync's worth of diffs)."""
        records, self.pending = self.pending, []
        self.stats_rep.records_out += len(records)
        if records:
            self.stats_rep.syncs_sent += 1
        return records

    def diff_message(self) -> dict:
        return {
            "op": "diff",
            "from": self.node_id,
            "sent_at": self.now,
            "records": self.collect_diff(),
        }

    def apply_diff(self, records: list[dict], now: float | None = None) -> int:
        """Merge remote diff records under last-writer-wins; returns applied
        count."""
        if now is not None:
            self.now = max(self.now, now)
        applied = 0
        self.stats_rep.records_in += len(records)
        if records:
            self.stats_rep.syncs_received += 1
        self._applying = True
        try:
            for wire in records:
                truth_key = wire["truth_key"]
                incoming = (wire["version"], wire["origin"])
                known = self.versions.get(truth_key)
                if known is not None and incoming <= known:
                    self.stats_rep.lww_rejects += 1
                    continue
                self.versions[truth_key] = incoming
                # The incoming write supersedes whatever we cache for this
                # truth key, regardless of op.
                for element_id in list(self.truth_index.get(truth_key, ())):
                    self.cache.remove(element_id, reason="invalidate")
                if wire["op"] == "upsert":
                    record = dict(wire["record"])
                    record.pop("element_id", None)  # ids are region-local
                    element = self.cache.admit_restored(
                        record, now=self.now, drop_expired=True
                    )
                    if element is not None:
                        applied += 1
                        self.stats_rep.applied_upserts += 1
                else:
                    applied += 1
                    self.stats_rep.applied_invalidations += 1
        finally:
            self._applying = False
        # Replicated admissions count against capacity like local ones.
        self.cache._enforce_capacity(self.now)
        return applied

    def stats(self) -> dict:
        return {"node": self.node_id, **self.stats_rep.as_dict()}

    def __repr__(self) -> str:
        return f"ReplicaNode(id={self.node_id!r}, items={len(self.cache)})"


class FrameLink:
    """A one-way simulated WAN link carrying real frame-protocol bytes.

    ``send`` encodes the message through the codec and frame protocol and
    schedules its delivery ``latency`` simulated seconds later; ``deliver``
    feeds everything due through a :class:`FrameSplitter` and decodes the
    completed frames. Asymmetric pairs are just two links with different
    latencies.
    """

    def __init__(self, latency: float, codec: "Codec | str" = "pickle") -> None:
        self.latency = latency
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self._in_flight: list[tuple[float, bytes]] = []
        self._splitter = FrameSplitter()
        self.frames_sent = 0
        self.bytes_sent = 0

    def send(self, message: dict, now: float) -> None:
        data = encode_frame(self.codec.dumps(message))
        self._in_flight.append((now + self.latency, data))
        self.frames_sent += 1
        self.bytes_sent += len(data)

    def deliver(self, now: float) -> list[dict]:
        """Messages whose delivery time has arrived, in send order."""
        due, still = [], []
        for deliver_at, data in self._in_flight:
            (due if deliver_at <= now else still).append((deliver_at, data))
        self._in_flight = still
        messages = []
        for _, data in due:
            for payload in self._splitter.feed(data):
                messages.append(self.codec.loads(payload))
        return messages

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)


@dataclass
class ConvergenceSample:
    """One measurement of cross-region agreement at time ``t``."""

    t: float
    agreement: float
    union_keys: int
    stale_keys: int
    max_staleness: float


def agreement_between(a: ReplicaNode, b: ReplicaNode) -> ConvergenceSample:
    """Fraction of truth keys (union of both LWW registries) on which the
    two nodes agree about the latest version, plus staleness of the rest."""
    keys = set(a.versions) | set(b.versions)
    if not keys:
        return ConvergenceSample(
            t=max(a.now, b.now), agreement=1.0, union_keys=0, stale_keys=0,
            max_staleness=0.0,
        )
    agree = 0
    max_staleness = 0.0
    for key in keys:
        va = a.versions.get(key)
        vb = b.versions.get(key)
        if va == vb:
            agree += 1
        else:
            lag = abs((va[0] if va else 0.0) - (vb[0] if vb else 0.0))
            max_staleness = max(max_staleness, lag)
    return ConvergenceSample(
        t=max(a.now, b.now),
        agreement=agree / len(keys),
        union_keys=len(keys),
        stale_keys=len(keys) - agree,
        max_staleness=max_staleness,
    )


class ReplicationDriver:
    """Steps a two-node replica pair over a shared simulated clock.

    Owns the sync schedule and the pair of asymmetric links. Call
    :meth:`tick` with the advancing clock from the workload loop; it
    delivers due diffs into each node and emits fresh diffs every
    ``sync_interval`` seconds.
    """

    def __init__(
        self,
        node_a: ReplicaNode,
        node_b: ReplicaNode,
        sync_interval: float = 1.0,
        latency_ab: float = 0.08,
        latency_ba: float = 0.12,
        codec: str = "pickle",
    ) -> None:
        self.node_a = node_a
        self.node_b = node_b
        self.sync_interval = sync_interval
        self.link_ab = FrameLink(latency_ab, codec)
        self.link_ba = FrameLink(latency_ba, codec)
        self._next_sync = sync_interval

    def tick(self, now: float) -> None:
        self.node_a.now = max(self.node_a.now, now)
        self.node_b.now = max(self.node_b.now, now)
        for message in self.link_ab.deliver(now):
            self.node_b.apply_diff(message["records"], now=now)
        for message in self.link_ba.deliver(now):
            self.node_a.apply_diff(message["records"], now=now)
        while now >= self._next_sync:
            self.link_ab.send(self.node_a.diff_message(), now)
            self.link_ba.send(self.node_b.diff_message(), now)
            self._next_sync += self.sync_interval

    def drain(self, now: float) -> float:
        """Flush pending diffs and deliver everything in flight (end of a
        run); returns the time at which the last diff lands."""
        self.link_ab.send(self.node_a.diff_message(), now)
        self.link_ba.send(self.node_b.diff_message(), now)
        settle = now + max(self.link_ab.latency, self.link_ba.latency)
        for message in self.link_ab.deliver(settle):
            self.node_b.apply_diff(message["records"], now=settle)
        for message in self.link_ba.deliver(settle):
            self.node_a.apply_diff(message["records"], now=settle)
        return settle

    def agreement(self) -> ConvergenceSample:
        return agreement_between(self.node_a, self.node_b)
