"""Write-through file-backed cache backend.

Every admitted element is mirrored to ``DIR/elements/NNNNNNNN.json`` as its
:func:`~repro.core.persistence.element_record`; deletes unlink the file.
The in-memory dict remains the retrieval tier (the ANN index needs resident
embeddings regardless), so lookups cost exactly what the in-process backend
costs — durability rides the mutation path only.

This is the "Redis-style durable store" point in the backend design space:
per-entry files a restarted process (or an external tool) can enumerate,
versus the snapshot+journal layout of
:class:`~repro.store.persist.PersistentStore` which optimises for replay
speed. Restore with :func:`restore_file_backend`, which re-admits every
stored record through the cache (re-embedding keys).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro.core.element import SemanticElement
from repro.core.persistence import element_record
from repro.store.backend import BackendOpStats

ELEMENTS_DIR = "elements"


class FileStoreBackend:
    """Durable per-element file store (write-through over an in-memory tier).

    Parameters
    ----------
    directory:
        Store root; element files live under ``directory/elements/``.
    arena:
        Optional embedding arena for the in-memory tier (same semantics as
        :class:`~repro.store.backend.InProcessBackend`).
    fsync:
        fsync each element file on write. Off by default: the directory
        entry itself survives a process kill either way, and the journal
        tier is the crash-consistency story; turn on for paranoia against
        filesystem-level loss.
    """

    name = "filestore"
    durable = True

    def __init__(self, directory: "str | Path", arena=None, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self._elements_dir = self.directory / ELEMENTS_DIR
        self._elements_dir.mkdir(parents=True, exist_ok=True)
        self._elements: dict[int, SemanticElement] = {}
        self._arena = arena
        self._fsync = fsync
        #: Ids whose hit state changed since their file was last written.
        self._dirty: set[int] = set()
        self.ops = BackendOpStats()

    def _path_for(self, element_id: int) -> Path:
        return self._elements_dir / f"{element_id:08d}.json"

    # -- protocol ------------------------------------------------------------
    @property
    def elements(self) -> dict[int, SemanticElement]:
        return self._elements

    @property
    def arena(self):
        return self._arena

    def get(self, element_id: int) -> SemanticElement | None:
        self.ops.gets += 1
        return self._elements.get(element_id)

    def put(self, element: SemanticElement) -> None:
        self._elements[element.element_id] = element
        path = self._path_for(element.element_id)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(element_record(element), handle, allow_nan=False)
            if self._fsync:
                handle.flush()
                os.fsync(handle.fileno())
        tmp.replace(path)
        self.ops.puts += 1

    def touch(self, element: SemanticElement) -> None:
        # Hit state (frequency / last access) is rewritten lazily: touches
        # are frequent and per-touch rewrites would turn every cache hit
        # into disk I/O. flush() persists the current hit state of every
        # live element instead.
        self.ops.touches += 1
        self._dirty.add(element.element_id)

    def delete(self, element_id: int, reason: str = "delete") -> SemanticElement | None:
        element = self._elements.pop(element_id, None)
        if element is None:
            return None
        if element.arena_slot is not None:
            self._arena.release(element.arena_slot)
            element.arena_slot = None
        self._path_for(element_id).unlink(missing_ok=True)
        self._dirty.discard(element_id)
        self.ops.note_delete(reason)
        return element

    def scan(self) -> Iterator[SemanticElement]:
        return iter(list(self._elements.values()))

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element_id: int) -> bool:
        return element_id in self._elements

    def stats(self) -> dict:
        return {
            "backend": self.name,
            "items": len(self._elements),
            "directory": str(self.directory),
            "dirty": len(self._dirty),
            **self.ops.as_dict(),
        }

    def bind_embedding(self, embedding):
        if self._arena is None:
            return embedding, None
        slot = self._arena.allocate(embedding)
        return self._arena.get(slot), slot

    def release_embedding(self, slot) -> None:
        if slot is not None and self._arena is not None:
            self._arena.release(slot)

    def flush(self) -> None:
        """Rewrite files for elements whose hit state changed since admit."""
        for element_id in list(self._dirty):
            element = self._elements.get(element_id)
            if element is not None:
                path = self._path_for(element_id)
                tmp = path.with_name(path.name + ".tmp")
                tmp.write_text(json.dumps(element_record(element), allow_nan=False))
                tmp.replace(path)
        self._dirty.clear()

    def close(self) -> None:
        self.flush()

    # -- restore --------------------------------------------------------------
    def stored_records(self) -> list[dict]:
        """Element records currently on disk, in element-id order."""
        records = []
        for path in sorted(self._elements_dir.glob("*.json")):
            records.append(json.loads(path.read_text()))
        return records

    def __repr__(self) -> str:
        return (
            f"FileStoreBackend(items={len(self._elements)}, "
            f"directory={str(self.directory)!r})"
        )


def restore_file_backend(cache, drop_expired: bool = True, now: float | None = None) -> int:
    """Re-admit every record the cache's file backend has on disk.

    The cache must be empty and constructed over a :class:`FileStoreBackend`
    (possibly wrapped). Returns the number of elements restored; the id
    counter resumes past the highest stored id.
    """
    backend = cache.backend
    unwrap = getattr(backend, "unwrap", None)
    if unwrap is not None:
        backend = unwrap()
    if not isinstance(backend, FileStoreBackend):
        raise TypeError(f"cache backend is {type(backend).__name__}, not FileStoreBackend")
    if len(cache):
        raise ValueError("restore_file_backend requires an empty cache")
    restored = 0
    for record in backend.stored_records():
        element = cache.admit_restored(record, drop_expired=drop_expired, now=now)
        if element is not None:
            restored += 1
    return restored
