"""`repro.store` — pluggable cache backends, durability, and replication.

The fifth subsystem alongside ``core``/``serving``/``obs``/``network``:

* :mod:`repro.store.backend` — the :class:`CacheBackend` protocol and the
  in-process dict/arena implementation every engine constructs through.
* :mod:`repro.store.filestore` — write-through per-element file store.
* :mod:`repro.store.remote` — simulated remote store with WAN latency.
* :mod:`repro.store.journal` — append-only JSONL WAL with fsync batching
  and idempotent replay.
* :mod:`repro.store.persist` — snapshot + journal durability
  (:class:`PersistentStore`) behind ``--persist DIR``.
* :mod:`repro.store.replication` — cross-region diff exchange with
  last-writer-wins conflict resolution over the frame protocol.

Only the backend protocol is imported eagerly (the cache core depends on
it); the durability and replication layers load on first attribute access
to keep ``import repro.core.cache`` cycle-free and cheap.
"""

from __future__ import annotations

import importlib

from repro.store.backend import (
    BackendOpStats,
    CacheBackend,
    DELETE_REASONS,
    InProcessBackend,
    WrappingBackend,
)

__all__ = [
    "BackendOpStats",
    "CacheBackend",
    "DELETE_REASONS",
    "InProcessBackend",
    "WrappingBackend",
    "FileStoreBackend",
    "SimulatedRemoteStore",
    "JournalWriter",
    "JournaledBackend",
    "read_journal",
    "replay_journal",
    "PersistentStore",
    "ShardedPersistentStore",
    "ReplicaNode",
    "ReplicationDriver",
    "replicate_session",
]

#: Lazily-resolved exports: name -> (submodule, attribute).
_LAZY = {
    "FileStoreBackend": ("repro.store.filestore", "FileStoreBackend"),
    "SimulatedRemoteStore": ("repro.store.remote", "SimulatedRemoteStore"),
    "JournalWriter": ("repro.store.journal", "JournalWriter"),
    "JournaledBackend": ("repro.store.journal", "JournaledBackend"),
    "read_journal": ("repro.store.journal", "read_journal"),
    "replay_journal": ("repro.store.journal", "replay_journal"),
    "PersistentStore": ("repro.store.persist", "PersistentStore"),
    "ShardedPersistentStore": ("repro.store.persist", "ShardedPersistentStore"),
    "ReplicaNode": ("repro.store.replication", "ReplicaNode"),
    "ReplicationDriver": ("repro.store.replication", "ReplicationDriver"),
    "replicate_session": ("repro.store.replnet", "replicate_session"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), attr)
