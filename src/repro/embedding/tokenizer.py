"""A small, deterministic tokenizer for query text.

Lowercases, strips punctuation, and splits on whitespace. The tokenizer also
classifies stopwords so the embedder can downweight them — content words are
what make two paraphrases of the same question similar.
"""

from __future__ import annotations

import re
from typing import Iterable

#: Function words that carry little query intent. Deliberately small — the
#: goal is to damp syntactic filler, not to do linguistics.
STOPWORDS = frozenset(
    """
    a an and are as at be but by can could did do does for from had has have
    how i in is it its me my of on or s shall should so tell that the their
    them then there these they this those to us was we were what when where
    which who whom whose why will with would you your please
    about know knows want wants need needs give gives show shows find finds
    get gets just really also quick question
    now ok okay hey well hmm oh um uh right
    """.split()
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9']+")

#: Suffixes stripped by the light stemmer, longest first.
_SUFFIXES = ("ings", "ing", "edly", "ed", "ers", "er", "es", "s", "ly")


def light_stem(token: str) -> str:
    """A tiny suffix stripper (not Porter; just enough to merge inflections).

    Real embedding models place "painted" and "painter" close together; a
    hashing embedder would not, so we conflate common inflections before
    hashing. Stems shorter than 3 characters are never produced. A doubled
    final consonant left by -ing/-ed stripping is collapsed ("running" ->
    "run"), except the stable doubles "ll"/"ss" ("falling" -> "fall").
    """
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= 3:
            stem = token[: -len(suffix)]
            if (
                suffix in ("ing", "ings", "ed", "edly")
                and len(stem) >= 4
                and stem[-1] == stem[-2]
                and stem[-1] not in "ls"
            ):
                stem = stem[:-1]
            return stem
    return token


class SimpleTokenizer:
    """Deterministic lowercase word tokenizer with stopword tagging.

    Parameters
    ----------
    stopwords:
        Words to tag as low-information. Defaults to :data:`STOPWORDS`.
    stem:
        Apply :func:`light_stem` to non-stopword tokens (default True).
    """

    def __init__(
        self, stopwords: Iterable[str] | None = None, stem: bool = True
    ) -> None:
        self.stopwords = frozenset(stopwords) if stopwords is not None else STOPWORDS
        self.stem = stem

    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into lowercase alphanumeric tokens (stemmed)."""
        if not isinstance(text, str):
            raise TypeError(f"expected str, got {type(text).__name__}")
        raw = _TOKEN_PATTERN.findall(text.lower())
        if not self.stem:
            return raw
        return [t if t in self.stopwords else light_stem(t) for t in raw]

    def is_stopword(self, token: str) -> bool:
        """True if ``token`` is tagged as a stopword."""
        return token in self.stopwords

    def content_tokens(self, text: str) -> list[str]:
        """Tokens of ``text`` with stopwords removed."""
        return [t for t in self.tokenize(text) if t not in self.stopwords]

    def bigrams(self, tokens: list[str]) -> list[str]:
        """Adjacent token pairs joined with an underscore."""
        return [f"{a}_{b}" for a, b in zip(tokens, tokens[1:])]
