"""Embedding substrate.

The paper embeds tool-call queries with Qwen3-Embedding-0.6B. Offline we
substitute a deterministic *hashing embedder*: every token maps to a seeded
Gaussian direction, a query's embedding is the weighted, L2-normalised sum of
its token vectors (stopwords are downweighted, bigrams add a little word-order
signal). This reproduces the property the system design depends on —
paraphrases that share content words land close in cosine space, while
*confusable* queries (shared surface tokens, different intent) also land
close, which is exactly the false-positive regime the semantic judger exists
to catch.

The :class:`EmbeddingModel` protocol is the integration point: a real model
client can be dropped in anywhere the simulated one is used.
"""

from repro.embedding.model import (
    CachedEmbedder,
    EmbeddingModel,
    HashingEmbedder,
    cosine_similarity,
)
from repro.embedding.tokenizer import STOPWORDS, SimpleTokenizer

__all__ = [
    "CachedEmbedder",
    "EmbeddingModel",
    "HashingEmbedder",
    "STOPWORDS",
    "SimpleTokenizer",
    "cosine_similarity",
]
