"""Embedding models: the protocol and the deterministic hashing substitute.

See the package docstring for why a hashing embedder is a faithful stand-in
for the paper's Qwen3-Embedding-0.6B at the *system* level.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.sim.random import derive_seed
from repro.embedding.tokenizer import SimpleTokenizer


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0.0 if either is all-zero."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


@runtime_checkable
class EmbeddingModel(Protocol):
    """What the cache needs from an embedding model.

    Implementations must be deterministic for a given input so that cache
    behaviour is reproducible.
    """

    @property
    def dim(self) -> int:
        """Dimensionality of produced embeddings."""
        ...

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm float32 vector of length ``dim``."""
        ...

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts; returns an (n, dim) array."""
        ...


class HashingEmbedder:
    """Deterministic bag-of-hashed-tokens embedder.

    Each distinct token deterministically seeds a Gaussian direction in
    ``dim`` dimensions. A text's embedding is the weighted sum of its token
    directions (stopwords at ``stopword_weight``, content words at 1.0) plus
    lightly weighted bigram directions for word-order sensitivity, finally
    L2-normalised.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 256).
    seed:
        Root seed for token directions. Two embedders with the same seed and
        dim agree exactly.
    stopword_weight:
        Relative weight of stopword tokens (default 0.15).
    bigram_weight:
        Relative weight of adjacent-token bigram features (default 0.25).
        Set to 0 for a pure bag-of-words model.
    """

    def __init__(
        self,
        dim: int = 256,
        seed: int = 0,
        stopword_weight: float = 0.15,
        bigram_weight: float = 0.25,
        tokenizer: SimpleTokenizer | None = None,
    ) -> None:
        if dim < 8:
            raise ValueError(f"dim must be >= 8 for meaningful similarity, got {dim}")
        if stopword_weight < 0 or bigram_weight < 0:
            raise ValueError("feature weights must be non-negative")
        self._dim = dim
        self.seed = seed
        self.stopword_weight = stopword_weight
        self.bigram_weight = bigram_weight
        self.tokenizer = tokenizer or SimpleTokenizer()
        self._token_vectors: dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        return self._dim

    def _vector_for(self, token: str) -> np.ndarray:
        vector = self._token_vectors.get(token)
        if vector is None:
            rng = np.random.default_rng(derive_seed(self.seed, f"tok:{token}"))
            vector = rng.standard_normal(self._dim).astype(np.float32)
            vector /= np.linalg.norm(vector)
            self._token_vectors[token] = vector
        return vector

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text``; empty/stopword-only text returns a zero vector."""
        tokens = self.tokenizer.tokenize(text)
        accumulator = np.zeros(self._dim, dtype=np.float32)
        for token in tokens:
            weight = (
                self.stopword_weight if self.tokenizer.is_stopword(token) else 1.0
            )
            if weight > 0:
                accumulator += weight * self._vector_for(token)
        if self.bigram_weight > 0:
            content = [t for t in tokens if not self.tokenizer.is_stopword(t)]
            for bigram in self.tokenizer.bigrams(content):
                accumulator += self.bigram_weight * self._vector_for(bigram)
        norm = float(np.linalg.norm(accumulator))
        if norm > 0:
            accumulator /= norm
        return accumulator

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts into an (n, dim) float32 array."""
        rows = [self.embed(text) for text in texts]
        if not rows:
            return np.zeros((0, self._dim), dtype=np.float32)
        return np.stack(rows)

    def __repr__(self) -> str:
        return (
            f"HashingEmbedder(dim={self._dim}, seed={self.seed}, "
            f"stopword_weight={self.stopword_weight}, "
            f"bigram_weight={self.bigram_weight})"
        )


class CachedEmbedder:
    """LRU memoisation wrapper around any :class:`EmbeddingModel`.

    Agent workloads re-issue the same surface forms often; memoising keeps
    the simulated embedding cost honest (the engine charges embedding latency
    only on memoisation misses, mirroring a production embedding cache).
    """

    def __init__(self, inner: EmbeddingModel, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.inner = inner
        self.max_entries = max_entries
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def dim(self) -> int:
        return self.inner.dim

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text``, serving repeats from the LRU memo."""
        cached = self._cache.get(text)
        if cached is not None:
            self._cache.move_to_end(text)
            self.hits += 1
            return cached
        self.misses += 1
        vector = self.inner.embed(text)
        self._cache[text] = vector
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return vector

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts (each individually memoised)."""
        rows = [self.embed(text) for text in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.stack(rows)

    def __contains__(self, text: str) -> bool:
        return text in self._cache

    def __repr__(self) -> str:
        return (
            f"CachedEmbedder(entries={len(self._cache)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
