"""Embedding models: the protocol and the deterministic hashing substitute.

See the package docstring for why a hashing embedder is a faithful stand-in
for the paper's Qwen3-Embedding-0.6B at the *system* level.

The hashing embedder is a hot path (every cache lookup embeds its query), so
it is built for vectorized execution: token directions live in one growable
``(tokens, dim)`` matrix, each text reduces to a cached ``(rows, weights)``
feature pair, and the batch entry point
:meth:`HashingEmbedder.embed_batch` computes a whole batch of embeddings as
one sparse matrix product over the token directions. The scalar
:meth:`HashingEmbedder.embed` is the one-row case of the same code path, so
batch and scalar results agree to float32 summation order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.sim.random import derive_seed
from repro.embedding.tokenizer import SimpleTokenizer

try:  # pragma: no cover - exercised implicitly on scipy-equipped hosts
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _csr_matvecs = getattr(_scipy_sparsetools, "csr_matvecs", None)
except ImportError:  # pragma: no cover
    _csr_matvecs = None


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0.0 if either is all-zero."""
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


@runtime_checkable
class EmbeddingModel(Protocol):
    """What the cache needs from an embedding model.

    Implementations must be deterministic for a given input so that cache
    behaviour is reproducible.
    """

    @property
    def dim(self) -> int:
        """Dimensionality of produced embeddings."""
        ...

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm float32 vector of length ``dim``."""
        ...

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts; returns an (n, dim) array."""
        ...


class HashingEmbedder:
    """Deterministic bag-of-hashed-tokens embedder.

    Each distinct token deterministically seeds a Gaussian direction in
    ``dim`` dimensions. A text's embedding is the weighted sum of its token
    directions (stopwords at ``stopword_weight``, content words at 1.0) plus
    lightly weighted bigram directions for word-order sensitivity, finally
    L2-normalised.

    Token directions are stored as rows of one growable matrix and each
    text's tokenisation is memoised as ``(row_indices, weights)`` arrays, so
    an embedding is a single gather + weighted reduction instead of a
    per-token Python loop.

    Parameters
    ----------
    dim:
        Embedding dimensionality (default 256).
    seed:
        Root seed for token directions. Two embedders with the same seed and
        dim agree exactly.
    stopword_weight:
        Relative weight of stopword tokens (default 0.15).
    bigram_weight:
        Relative weight of adjacent-token bigram features (default 0.25).
        Set to 0 for a pure bag-of-words model.
    """

    #: Memoised (rows, weights) feature pairs kept per embedder.
    FEATURE_CACHE_MAX = 65536

    def __init__(
        self,
        dim: int = 256,
        seed: int = 0,
        stopword_weight: float = 0.15,
        bigram_weight: float = 0.25,
        tokenizer: SimpleTokenizer | None = None,
    ) -> None:
        if dim < 8:
            raise ValueError(f"dim must be >= 8 for meaningful similarity, got {dim}")
        if stopword_weight < 0 or bigram_weight < 0:
            raise ValueError("feature weights must be non-negative")
        self._dim = dim
        self.seed = seed
        self.stopword_weight = stopword_weight
        self.bigram_weight = bigram_weight
        self.tokenizer = tokenizer or SimpleTokenizer()
        #: token -> row in the direction matrix
        self._token_rows: dict[str, int] = {}
        self._matrix = np.zeros((256, dim), dtype=np.float32)
        #: text -> (row indices, weights), LRU-bounded
        self._features: OrderedDict[str, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )

    @property
    def dim(self) -> int:
        return self._dim

    def _row_for(self, token: str) -> int:
        row = self._token_rows.get(token)
        if row is None:
            row = len(self._token_rows)
            if row >= self._matrix.shape[0]:
                grown = np.zeros(
                    (self._matrix.shape[0] * 2, self._dim), dtype=np.float32
                )
                grown[: self._matrix.shape[0]] = self._matrix
                self._matrix = grown
            rng = np.random.default_rng(derive_seed(self.seed, f"tok:{token}"))
            vector = rng.standard_normal(self._dim).astype(np.float32)
            vector /= np.linalg.norm(vector)
            self._matrix[row] = vector
            self._token_rows[token] = row
        return row

    def _vector_for(self, token: str) -> np.ndarray:
        """The unit direction of one token (kept for tests/introspection)."""
        return self._matrix[self._row_for(token)].copy()

    def _features_for(self, text: str) -> tuple[np.ndarray, np.ndarray]:
        """Memoised (row indices, weights) of ``text``'s weighted features."""
        cached = self._features.get(text)
        if cached is not None:
            self._features.move_to_end(text)
            return cached
        tokens = self.tokenizer.tokenize(text)
        rows: list[int] = []
        weights: list[float] = []
        for token in tokens:
            weight = (
                self.stopword_weight if self.tokenizer.is_stopword(token) else 1.0
            )
            if weight > 0:
                rows.append(self._row_for(token))
                weights.append(weight)
        if self.bigram_weight > 0:
            content = [t for t in tokens if not self.tokenizer.is_stopword(t)]
            for bigram in self.tokenizer.bigrams(content):
                rows.append(self._row_for(bigram))
                weights.append(self.bigram_weight)
        # int32 rows double as CSR indices in embed_batch's sparse product.
        features = (
            np.asarray(rows, dtype=np.int32),
            np.asarray(weights, dtype=np.float32),
        )
        self._features[text] = features
        if len(self._features) > self.FEATURE_CACHE_MAX:
            self._features.popitem(last=False)
        return features

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text``; empty/stopword-only text returns a zero vector."""
        return self.embed_batch((text,))[0]

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts into an (n, dim) float32 array.

        The whole batch is one sparse-matrix product: each text is a CSR row
        of feature weights over the token-direction matrix, multiplied
        through scipy's ``csr_matvecs`` kernel (falling back to a dense
        coefficient GEMM when scipy is absent), then row-normalised.
        Results match :meth:`embed` up to float32 summation order; every
        downstream decision compares against thresholds, so batch and scalar
        lookups still agree exactly.
        """
        features = [self._features_for(text) for text in texts]
        n = len(features)
        out = np.zeros((n, self._dim), dtype=np.float32)
        if n == 0:
            return out
        if n == 1:
            # Scalar fast path: skip the CSR assembly.
            rows, weights = features[0]
            if rows.size:
                out[0] = weights @ self._matrix[rows]
                norm = np.sqrt(np.sum(np.square(out[0])))
                if norm > 0:
                    out[0] /= norm
            return out
        lengths = np.fromiter(
            (rows.size for rows, _ in features), count=n, dtype=np.int32
        )
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(lengths, out=indptr[1:])
        if indptr[-1]:
            rows = np.concatenate([f[0] for f in features])
            weights = np.concatenate([f[1] for f in features])
            if _csr_matvecs is not None:
                tokens = len(self._token_rows)
                _csr_matvecs(
                    n,
                    tokens,
                    self._dim,
                    indptr,
                    rows,
                    weights,
                    self._matrix[:tokens].ravel(),
                    out.ravel(),
                )
            else:
                unique_rows, inverse = np.unique(rows, return_inverse=True)
                segments = np.repeat(np.arange(n, dtype=np.intp), lengths)
                coefficients = np.zeros(
                    (n, unique_rows.size), dtype=np.float32
                )
                # add.at, not assignment: a token can repeat within one text.
                np.add.at(coefficients, (segments, inverse), weights)
                out[:] = coefficients @ self._matrix[unique_rows]
        norms = np.sqrt(np.sum(np.square(out), axis=1, keepdims=True))
        np.divide(out, norms, out=out, where=norms > 0)
        return out

    def __repr__(self) -> str:
        return (
            f"HashingEmbedder(dim={self._dim}, seed={self.seed}, "
            f"stopword_weight={self.stopword_weight}, "
            f"bigram_weight={self.bigram_weight})"
        )


class CachedEmbedder:
    """LRU memoisation wrapper around any :class:`EmbeddingModel`.

    Agent workloads re-issue the same surface forms often; memoising keeps
    the simulated embedding cost honest (the engine charges embedding latency
    only on memoisation misses, mirroring a production embedding cache).
    """

    def __init__(self, inner: EmbeddingModel, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.inner = inner
        self.max_entries = max_entries
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def dim(self) -> int:
        return self.inner.dim

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text``, serving repeats from the LRU memo."""
        cached = self._cache.get(text)
        if cached is not None:
            self._cache.move_to_end(text)
            self.hits += 1
            return cached
        self.misses += 1
        vector = self.inner.embed(text)
        self._cache[text] = vector
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return vector

    def embed_batch(self, texts: Iterable[str]) -> np.ndarray:
        """Embed many texts with one inner batch call for the misses.

        Hit/miss counters and the final LRU state match a sequence of
        :meth:`embed` calls: repeats of a missing text within the batch count
        as hits (the first occurrence would have populated the memo).
        """
        texts = list(texts)
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        missing: list[str] = []
        seen: set[str] = set()
        for text in texts:
            if text not in self._cache and text not in seen:
                missing.append(text)
                seen.add(text)
        batch = self.inner.embed_batch(missing) if missing else None
        fresh = {text: batch[i] for i, text in enumerate(missing)} if batch is not None else {}
        rows: list[np.ndarray] = []
        for text in texts:
            cached = self._cache.get(text)
            if cached is not None:
                self._cache.move_to_end(text)
                self.hits += 1
                rows.append(cached)
                continue
            self.misses += 1
            vector = fresh.get(text)
            if vector is None:
                # A mid-batch LRU eviction dropped a text we expected to hit;
                # recompute it scalar (rare, keeps replay exact).
                vector = self.inner.embed(text)
            self._cache[text] = vector
            if len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
            rows.append(vector)
        return np.stack(rows)

    def __contains__(self, text: str) -> bool:
        return text in self._cache

    def __repr__(self) -> str:
        return (
            f"CachedEmbedder(entries={len(self._cache)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
