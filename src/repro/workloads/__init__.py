"""Workload substrate: synthetic fact universes and the paper's traffic shapes.

Public datasets (HotpotQA, Musique, 2Wiki, Zilliz-GPT, SWE-bench/sqlfluff)
and Google Trends traces are unavailable offline, so this package generates
synthetic equivalents whose *access patterns* match the paper's §2.3
measurements: Zipf(0.99) popularity with paraphrase multiplicity and
confusable pairs for search; bursty, topic-correlated spikes for trends; and
the Table-2 file-access skew for SWE-bench-style coding.

Layers
------
``Fact`` / ``FactUniverse``
    The knowledge world: each fact has a content core, an authoritative
    answer, a topic, staticity, and (optionally heterogeneous) retrieval
    cost/latency. The universe doubles as the remote service's resolver.
``Paraphraser``
    Deterministic surface forms per fact — same content stems, different
    filler/order — so semantically equivalent queries are textually distinct
    (what defeats exact caches) yet embed nearby.
``QADataset`` builders
    Four search datasets plus a StrategyQA-like accuracy set, with
    per-dataset size/ambiguity/EM profiles.
``SkewedWorkload`` / ``TrendWorkload`` / ``SWEBenchWorkload``
    Query streams and agent-task scripts for Figures 7-10, 8, and 9.
``replay``
    Closed-loop and open-loop drivers over any engine.
"""

from repro.workloads.datasets import (
    DATASET_NAMES,
    QADataset,
    build_dataset,
)
from repro.workloads.facts import Fact, FactUniverse
from repro.workloads.paraphrase import Paraphraser
from repro.workloads.replay import (
    run_closed_loop,
    run_open_loop,
    run_task_closed_loop,
    run_task_concurrent,
    run_task_open_loop,
)
from repro.workloads.swebench import SWEBenchWorkload, TABLE2_ACCESS_FREQUENCIES
from repro.workloads.tracefile import (
    load_tasks,
    load_timed_queries,
    save_tasks,
    save_timed_queries,
)
from repro.workloads.trend import TrendEvent, TrendWorkload
from repro.workloads.zipf import ZipfSampler
from repro.workloads.skewed import SkewedWorkload

__all__ = [
    "DATASET_NAMES",
    "Fact",
    "FactUniverse",
    "Paraphraser",
    "QADataset",
    "SWEBenchWorkload",
    "SkewedWorkload",
    "TABLE2_ACCESS_FREQUENCIES",
    "TrendEvent",
    "TrendWorkload",
    "ZipfSampler",
    "build_dataset",
    "load_tasks",
    "load_timed_queries",
    "run_closed_loop",
    "run_open_loop",
    "run_task_closed_loop",
    "run_task_concurrent",
    "run_task_open_loop",
    "save_tasks",
    "save_timed_queries",
]
