"""Workload drivers: replay query/task streams against an engine.

Analytic drivers step a local clock through sequential requests (fast, good
for policy studies); discrete-event drivers run on the simulator so
concurrency, rate limits, prefetch asynchrony, and GPU contention interact
for real. Both return enough to compute the paper's metrics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.agent.base import ScriptedAgent
from repro.agent.model import AgentStats, AgentTask
from repro.core.engine import EngineResponse, KnowledgeEngine
from repro.core.types import Query
from repro.sim.kernel import Simulator


def run_closed_loop(
    engine: KnowledgeEngine,
    queries: Sequence[Query],
    think_time: float = 0.0,
    start: float = 0.0,
) -> tuple[list[EngineResponse], float]:
    """Sequential analytic replay of a flat query stream.

    Each query is issued ``think_time`` seconds after the previous response.
    Returns (responses, finish_time).
    """
    if think_time < 0:
        raise ValueError("think_time must be >= 0")
    now = start
    responses = []
    for query in queries:
        response = engine.handle(query, now)
        responses.append(response)
        now += response.latency + think_time
    return responses, now


def run_task_closed_loop(
    agent: ScriptedAgent, tasks: Sequence[AgentTask], start: float = 0.0
) -> AgentStats:
    """Sequential analytic replay of agent tasks."""
    stats = AgentStats()
    now = start
    for task in tasks:
        result = agent.run_task(task, now)
        stats.add(result)
        now = result.finished_at
    return stats


def run_open_loop(
    sim: Simulator,
    engine: KnowledgeEngine,
    timed_queries: Sequence[tuple[float, Query]],
    run: bool = True,
) -> list[EngineResponse]:
    """Discrete-event replay of (arrival_time, query) pairs.

    Every arrival spawns an independent request process at its timestamp;
    contention happens inside the engine/remote. With ``run=True`` the
    simulation is driven to completion before returning.
    """
    responses: list[EngineResponse] = []

    def request(query: Query):
        response = yield from engine.process(sim, query)
        responses.append(response)

    def emitter():
        last = 0.0
        for at, query in timed_queries:
            if at < last:
                raise ValueError("timed_queries must be time-ordered")
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            sim.process(request(query), name="request")
            last = at

    sim.process(emitter(), name="arrivals")
    if run:
        sim.run()
    return responses


def run_task_open_loop(
    sim: Simulator,
    agent: ScriptedAgent,
    tasks: Sequence[AgentTask],
    rate: float,
    rng: np.random.Generator,
    run: bool = True,
) -> AgentStats:
    """Poisson open-loop task arrivals at ``rate`` tasks/second."""
    if rate <= 0:
        raise ValueError("rate must be > 0")
    stats = AgentStats()

    def one_task(task: AgentTask):
        result = yield from agent.run_task_process(sim, task)
        stats.add(result)

    def emitter():
        for task in tasks:
            yield sim.timeout(float(rng.exponential(1.0 / rate)))
            sim.process(one_task(task), name=task.task_id)

    sim.process(emitter(), name="task-arrivals")
    if run:
        sim.run()
    return stats


def run_task_concurrent(
    sim: Simulator,
    agent: ScriptedAgent,
    tasks: Sequence[AgentTask],
    concurrency: int,
    run: bool = True,
) -> AgentStats:
    """Closed-loop with ``concurrency`` parallel clients sharing a task list.

    This is the Figure 10 load model: each client immediately starts its
    next task when the previous one finishes.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    stats = AgentStats()
    queue = list(tasks)

    def worker():
        while queue:
            task = queue.pop(0)
            result = yield from agent.run_task_process(sim, task)
            stats.add(result)

    for _ in range(min(concurrency, max(1, len(queue)))):
        sim.process(worker(), name="client")
    if run:
        sim.run()
    return stats
