"""Zipfian rank sampling (§2.3, Figure 2).

Search interest follows a Zipf law: the paper's skewed workloads use
exponent 0.99. :class:`ZipfSampler` draws 0-based popularity ranks with
P(rank=k) ∝ 1/(k+1)^s via an exact inverse-CDF over the finite support.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draws ranks in ``[0, n)`` with probability ∝ ``1/(rank+1)**s``.

    >>> sampler = ZipfSampler(n=100, s=0.99)
    >>> rng = np.random.default_rng(0)
    >>> 0 <= sampler.sample(rng) < 100
    True
    """

    def __init__(self, n: int, s: float = 0.99) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if s < 0:
            raise ValueError(f"s must be >= 0, got {s}")
        self.n = n
        self.s = s
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)

    def probability(self, rank: int) -> float:
        """P(rank); rank is 0-based."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of [0, {self.n})")
        return float(self._probabilities[rank])

    def sample(self, rng: np.random.Generator) -> int:
        """One rank draw."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``count`` i.i.d. rank draws."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return np.searchsorted(
            self._cdf, rng.random(count), side="right"
        ).astype(np.int64)

    def head_mass(self, k: int) -> float:
        """Total probability of the top-``k`` ranks (the cacheable head)."""
        if not 0 <= k <= self.n:
            raise ValueError(f"k must be in [0, {self.n}]")
        return float(self._probabilities[:k].sum())

    def __repr__(self) -> str:
        return f"ZipfSampler(n={self.n}, s={self.s})"
