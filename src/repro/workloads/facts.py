"""The knowledge world: facts and fact universes.

A :class:`Fact` is one atomic piece of external knowledge — the hidden
ground truth behind many surface-form queries. A :class:`FactUniverse`
collects the facts of one dataset, ranks them by popularity (the Zipf order),
and acts as the authoritative resolver for the remote data service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable

from repro.core.types import Query

#: Base epoch length (seconds) for the most ephemeral facts; doubling per
#: staticity point makes staticity-10 facts effectively immutable.
VOLATILITY_BASE_PERIOD = 30.0


@dataclass(frozen=True)
class Fact:
    """One unit of external knowledge.

    Attributes
    ----------
    fact_id:
        Globally unique identity (the hidden ground-truth key).
    core:
        The content phrase all paraphrases share (e.g. ``"painted mona
        lisa"``); paraphrase templates wrap it in filler.
    answer:
        The authoritative answer text.
    topic:
        Topic label (drives trend workloads and correlation structure).
    staticity:
        True time-invariance on the paper's 1-10 scale.
    cost:
        Per-call fee of the service answering this fact; None = the remote
        service's default. Heterogeneous costs drive LCFU's advantage.
    latency_scale:
        Multiplier on the remote service's sampled latency (slow vs fast
        backends).
    answer_tokens:
        Approximate answer size; the resolver pads the answer to it.
    confusable_group:
        Facts sharing a group have nearly identical content words but
        different meanings (the "apple nutrition" vs "apple stock" regime).
    """

    fact_id: str
    core: str
    answer: str
    topic: str = "general"
    staticity: int = 6
    cost: float | None = None
    latency_scale: float = 1.0
    answer_tokens: int = 64
    confusable_group: str | None = None

    def __post_init__(self) -> None:
        if not self.fact_id or not self.core:
            raise ValueError("fact_id and core must be non-empty")
        if not 1 <= self.staticity <= 10:
            raise ValueError(f"staticity must be in [1, 10], got {self.staticity}")
        if self.latency_scale <= 0:
            raise ValueError("latency_scale must be > 0")
        if self.answer_tokens < 1:
            raise ValueError("answer_tokens must be >= 1")


class FactUniverse:
    """All facts of one dataset, in popularity order.

    Index 0 is the most popular fact; Zipf samplers draw ranks against this
    order. The universe also provides the ground-truth ``resolver`` used by
    :class:`~repro.network.remote.RemoteDataService`.
    """

    def __init__(self, name: str, facts: list[Fact]) -> None:
        if not facts:
            raise ValueError(f"universe {name!r} needs at least one fact")
        self.name = name
        self.facts = list(facts)
        self._by_id = {fact.fact_id: fact for fact in self.facts}
        if len(self._by_id) != len(self.facts):
            raise ValueError(f"duplicate fact ids in universe {name!r}")

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self):
        return iter(self.facts)

    def __contains__(self, fact_id: str) -> bool:
        return fact_id in self._by_id

    def get(self, fact_id: str) -> Fact:
        """The fact with ``fact_id``; raises KeyError if unknown."""
        fact = self._by_id.get(fact_id)
        if fact is None:
            raise KeyError(f"unknown fact {fact_id!r} in universe {self.name!r}")
        return fact

    def by_rank(self, rank: int) -> Fact:
        """The ``rank``-th most popular fact (0-based)."""
        return self.facts[rank]

    def topics(self) -> list[str]:
        """Distinct topics in first-appearance order."""
        seen: dict[str, None] = {}
        for fact in self.facts:
            seen.setdefault(fact.topic, None)
        return list(seen)

    def facts_for_topic(self, topic: str) -> list[Fact]:
        """All facts with the given topic, in popularity order."""
        return [fact for fact in self.facts if fact.topic == topic]

    def resolve(self, query: Query) -> str:
        """Authoritative answer for ``query`` (the remote service's resolver).

        Queries carrying an unknown or missing ``fact_id`` get deterministic
        fallback text keyed on the query itself, so the remote service never
        fails — it is the source of truth.
        """
        if query.fact_id is not None and query.fact_id in self._by_id:
            fact = self._by_id[query.fact_id]
            return self._render_answer(fact)
        return f"[{self.name}] no indexed knowledge; raw result for: {query.text}"

    @staticmethod
    def epoch_period(staticity: int) -> float:
        """Seconds between answer changes for a fact of this staticity.

        Doubles per staticity point: an ephemeral fact (2) changes every two
        minutes of simulated time, a stable one (10) roughly never within an
        experiment — the ground truth the 1-10 score claims to describe.
        """
        if not 1 <= staticity <= 10:
            raise ValueError(f"staticity must be in [1, 10], got {staticity}")
        return VOLATILITY_BASE_PERIOD * 2.0**staticity

    def resolve_at(self, query: Query, now: float) -> str:
        """Authoritative answer at simulated time ``now``.

        Volatile facts' answers change every :meth:`epoch_period` seconds
        (weather, prices, rankings); a cached copy from a previous epoch is
        *stale* — textually present but factually wrong. Stable facts answer
        identically to :meth:`resolve` for any realistic horizon.
        """
        if now < 0:
            raise ValueError(f"now must be >= 0, got {now}")
        if query.fact_id is None or query.fact_id not in self._by_id:
            return self.resolve(query)
        fact = self._by_id[query.fact_id]
        epoch = int(now / self.epoch_period(fact.staticity))
        base = self._render_answer(fact)
        if epoch == 0:
            return base
        return f"{base} [rev {epoch}]"

    def time_resolver(self) -> Callable[[Query, float], str]:
        """A ``(query, now) -> str`` resolver for time-aware remote services."""
        return self.resolve_at

    @staticmethod
    def _render_answer(fact: Fact) -> str:
        """Answer text padded to roughly ``answer_tokens`` tokens."""
        header = f"{fact.answer} (re: {fact.core})"
        header_tokens = max(1, len(header) // 4)
        missing = max(0, fact.answer_tokens - header_tokens)
        # Deterministic filler, ~1 token per word.
        padding = " ".join(f"ctx{i}" for i in range(missing))
        return f"{header} {padding}".strip()

    def __repr__(self) -> str:
        return f"FactUniverse({self.name!r}, facts={len(self.facts)})"
