"""Skewed (Zipf) search workloads — the Figure 7 traffic shape.

Queries target facts by Zipf(0.99) popularity; each arrival phrases its fact
through a uniformly chosen paraphrase, so the same knowledge is requested
under many surface forms (high semantic locality, low textual locality).
Task mode samples multi-hop chains instead, producing the correlated
query-to-query transitions prefetching can learn.
"""

from __future__ import annotations

import numpy as np

from repro.agent.model import AgentTask
from repro.core.types import Query
from repro.sim.random import derive_seed
from repro.workloads.datasets import QADataset
from repro.workloads.zipf import ZipfSampler


class SkewedWorkload:
    """Zipf-skewed query/task streams over one dataset.

    Parameters
    ----------
    dataset:
        The :class:`~repro.workloads.datasets.QADataset` to draw from.
    seed:
        Stream seed (derive different seeds for repeated trials).
    zipf_s:
        Popularity skew; defaults to the dataset profile's (0.99).
    """

    def __init__(self, dataset: QADataset, seed: int = 0, zipf_s: float | None = None) -> None:
        self.dataset = dataset
        self.seed = seed
        s = zipf_s if zipf_s is not None else dataset.profile.zipf_s
        self._fact_sampler = ZipfSampler(len(dataset.universe), s)
        self._chain_sampler = ZipfSampler(len(dataset.chains), s)
        self._rng = np.random.default_rng(
            derive_seed(seed, f"skewed:{dataset.name}")
        )

    def next_query(self) -> Query:
        """One Zipf-popularity query with a random paraphrase."""
        rank = self._fact_sampler.sample(self._rng)
        fact = self.dataset.universe.by_rank(rank)
        variant = int(self._rng.integers(self.dataset.paraphraser.variants))
        return self.dataset.query_for(fact, variant)

    def queries(self, count: int) -> list[Query]:
        """A flat stream of ``count`` queries."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next_query() for _ in range(count)]

    def next_task(self) -> AgentTask:
        """One multi-hop task following a Zipf-popular reasoning chain."""
        chain_rank = self._chain_sampler.sample(self._rng)
        chain = self.dataset.chains[chain_rank]
        task_id = (
            f"{self.dataset.name}:chain{chain_rank}:{self._rng.integers(1 << 30)}"
        )
        queries = []
        for fact_id in chain:
            fact = self.dataset.universe.get(fact_id)
            variant = int(self._rng.integers(self.dataset.paraphraser.variants))
            queries.append(self.dataset.query_for(fact, variant, session=task_id))
        final_fact = self.dataset.universe.get(chain[-1])
        return AgentTask(
            task_id=task_id,
            question=f"multi-hop question about {chain[0]}",
            queries=tuple(queries),
            answer=final_fact.answer,
            answer_fact=final_fact.fact_id,
        )

    def tasks(self, count: int) -> list[AgentTask]:
        """A stream of ``count`` tasks."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next_task() for _ in range(count)]

    def next_single_hop_task(self) -> AgentTask:
        """One single-query task whose fact is drawn by fact-level Zipf.

        This is the Figure 7 shape: each request is one question whose
        popularity follows the dataset's head-tail skew directly (chains
        would flatten the skew).
        """
        query = self.next_query()
        assert query.fact_id is not None
        fact = self.dataset.universe.get(query.fact_id)
        return AgentTask(
            task_id=f"{self.dataset.name}:q:{self._rng.integers(1 << 30)}",
            question=query.text,
            queries=(query,),
            answer=fact.answer,
            answer_fact=fact.fact_id,
        )

    def single_hop_tasks(self, count: int) -> list[AgentTask]:
        """``count`` single-hop tasks (the skewed-benchmark request unit)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next_single_hop_task() for _ in range(count)]

    def __repr__(self) -> str:
        return f"SkewedWorkload({self.dataset.name!r}, seed={self.seed})"
