"""Trend-driven bursty workloads (§2.3 Figure 3, evaluated in Figure 8).

Interest in a topic spikes when an external event fires (a model release, a
royal succession) and decays exponentially; related topics surge in sympathy.
The paper captures 12-hour Google Trends series for four topics and
compresses them into a 10-minute trace; we synthesise the same shape: a
Zipf background plus four timed :class:`TrendEvent` spikes with correlated
topic mass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.types import Query
from repro.sim.random import derive_seed
from repro.workloads.datasets import QADataset
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class TrendEvent:
    """One external event driving a topic surge.

    ``magnitude`` is the extra arrival rate (queries/s) at the spike peak;
    it decays as ``exp(-(t - start) / decay)``. ``related`` lists
    (topic, weight) pairs that surge in sympathy — weight is the fraction of
    the event's rate routed to that topic.
    """

    topic: str
    start: float
    magnitude: float
    decay: float = 60.0
    related: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.magnitude < 0 or self.decay <= 0:
            raise ValueError("invalid trend event parameters")
        if any(weight < 0 for _, weight in self.related):
            raise ValueError("related weights must be >= 0")

    def rate_at(self, t: float) -> float:
        """Extra arrival rate this event contributes at time ``t``."""
        if t < self.start:
            return 0.0
        return self.magnitude * math.exp(-(t - self.start) / self.decay)


def default_events(dataset: QADataset, duration: float = 600.0) -> list[TrendEvent]:
    """Four spaced events over the trace, with one related topic each."""
    topics = dataset.universe.topics()
    if len(topics) < 2:
        raise ValueError("trend events need at least two topics")
    events = []
    for index in range(4):
        topic = topics[index % len(topics)]
        related_topic = topics[(index + 1) % len(topics)]
        events.append(
            TrendEvent(
                topic=topic,
                start=duration * (0.1 + 0.2 * index),
                magnitude=6.0 - index,
                decay=45.0 + 15.0 * index,
                related=((related_topic, 0.25),),
            )
        )
    return events


class TrendWorkload:
    """Timed query stream: Zipf background + event-driven topic bursts.

    Parameters
    ----------
    dataset:
        Source of facts and topics.
    events:
        Trend events; defaults to :func:`default_events`.
    duration:
        Trace length in seconds (default 600 — the paper's compressed
        10 minutes).
    base_rate:
        Background arrival rate in queries/second.
    followup_probability:
        Probability that an event-driven query triggers a correlated
        follow-up a few seconds later ("gpt-5 release" then "gpt-5
        benchmarks" — the Figure 3 correlation Markov prefetching learns).
        Each fact has one deterministic follow-up fact within its topic.
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        dataset: QADataset,
        events: list[TrendEvent] | None = None,
        duration: float = 600.0,
        base_rate: float = 1.0,
        followup_probability: float = 0.35,
        seed: int = 0,
    ) -> None:
        if duration <= 0 or base_rate < 0:
            raise ValueError("duration must be > 0 and base_rate >= 0")
        if not 0.0 <= followup_probability <= 1.0:
            raise ValueError("followup_probability must be in [0, 1]")
        self.dataset = dataset
        self.duration = duration
        self.base_rate = base_rate
        self.followup_probability = followup_probability
        self.events = events if events is not None else default_events(dataset, duration)
        self.seed = seed
        self._rng = np.random.default_rng(derive_seed(seed, f"trend:{dataset.name}"))
        self._background = ZipfSampler(len(dataset.universe), dataset.profile.zipf_s)
        self._topic_facts = {
            topic: dataset.universe.facts_for_topic(topic)
            for topic in dataset.universe.topics()
        }
        # Within a surging topic, interest is itself skewed.
        self._topic_samplers = {
            topic: ZipfSampler(len(facts), 0.8)
            for topic, facts in self._topic_facts.items()
            if facts
        }
        # Deterministic follow-up: each fact maps to the next fact of its
        # topic, so burst sessions repeat the same A -> B transitions.
        self._followup: dict[str, str] = {}
        for facts in self._topic_facts.values():
            if len(facts) < 2:
                continue
            for index, fact in enumerate(facts):
                self._followup[fact.fact_id] = facts[(index + 1) % len(facts)].fact_id

    def rate_at(self, t: float) -> float:
        """Total arrival rate at time ``t``."""
        return self.base_rate + sum(event.rate_at(t) for event in self.events)

    def _topic_rates_at(self, t: float) -> dict[str, float]:
        rates: dict[str, float] = {}
        for event in self.events:
            rate = event.rate_at(t)
            if rate <= 0:
                continue
            related_mass = sum(weight for _, weight in event.related)
            rates[event.topic] = rates.get(event.topic, 0.0) + rate * (
                1.0 - min(1.0, related_mass)
            )
            for topic, weight in event.related:
                rates[topic] = rates.get(topic, 0.0) + rate * weight
        return rates

    def _sample_query_at(self, t: float) -> tuple[Query, bool]:
        """One arrival; the bool marks event-driven (surge) traffic."""
        topic_rates = self._topic_rates_at(t)
        surge = sum(topic_rates.values())
        total = self.base_rate + surge
        surged = bool(total > 0 and self._rng.random() < surge / total)
        if surged:
            topics = sorted(topic_rates)
            weights = np.array([topic_rates[topic] for topic in topics])
            topic = topics[
                int(self._rng.choice(len(topics), p=weights / weights.sum()))
            ]
            facts = self._topic_facts.get(topic) or self.dataset.universe.facts
            if topic in self._topic_samplers:
                fact = facts[self._topic_samplers[topic].sample(self._rng)]
            else:
                fact = facts[int(self._rng.integers(len(facts)))]
        else:
            fact = self.dataset.universe.by_rank(self._background.sample(self._rng))
        variant = int(self._rng.integers(self.dataset.paraphraser.variants))
        return self.dataset.query_for(fact, variant), surged

    def timed_queries(self, bin_width: float = 1.0) -> list[tuple[float, Query]]:
        """The full trace: (arrival_time, query) pairs, time-ordered.

        Arrivals are Poisson within each ``bin_width`` window at the
        window's instantaneous rate.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be > 0")
        arrivals: list[tuple[float, Query]] = []
        t = 0.0
        while t < self.duration:
            rate = self.rate_at(t)
            count = int(self._rng.poisson(rate * bin_width))
            for _ in range(count):
                at = t + float(self._rng.uniform(0.0, bin_width))
                if at >= self.duration:
                    continue
                query, surged = self._sample_query_at(at)
                if (
                    surged
                    and self._rng.random() < self.followup_probability
                    and query.fact_id in self._followup
                ):
                    # A correlated two-query session; both carry the same
                    # session tag so the prefetcher sees the transition.
                    session = f"trend-session-{len(arrivals)}"
                    fact = self.dataset.universe.get(query.fact_id)
                    variant = int(
                        self._rng.integers(self.dataset.paraphraser.variants)
                    )
                    query = self.dataset.query_for(fact, variant, session=session)
                    arrivals.append((at, query))
                    follow_at = at + float(self._rng.exponential(3.0))
                    if follow_at < self.duration:
                        follow_fact = self.dataset.universe.get(
                            self._followup[query.fact_id]
                        )
                        follow_variant = int(
                            self._rng.integers(self.dataset.paraphraser.variants)
                        )
                        arrivals.append(
                            (
                                follow_at,
                                self.dataset.query_for(
                                    follow_fact, follow_variant, session=session
                                ),
                            )
                        )
                else:
                    arrivals.append((at, query))
            t += bin_width
        arrivals.sort(key=lambda pair: pair[0])
        return arrivals

    def __repr__(self) -> str:
        return (
            f"TrendWorkload({self.dataset.name!r}, duration={self.duration}, "
            f"events={len(self.events)})"
        )
