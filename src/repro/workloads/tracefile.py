"""Workload trace files: freeze a generated workload to JSONL and replay it.

Generated workloads are deterministic per seed, but pinning an exact trace
to disk is what makes results portable across versions, machines, and
engine configurations — every system replays byte-identical traffic.
Supports both flat timed-query traces (open-loop experiments) and agent
task scripts (closed-loop experiments).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.agent.model import AgentTask
from repro.core.types import Query

#: Format marker written into every trace file.
TRACE_FORMAT = "asteria-trace-v1"


def _query_record(query: Query) -> dict:
    return {
        "text": query.text,
        "tool": query.tool,
        "fact_id": query.fact_id,
        "staticity": query.staticity,
        "cost": query.cost,
        "metadata": dict(query.metadata),
    }


def _query_from(record: dict) -> Query:
    return Query(
        text=record["text"],
        tool=record.get("tool", "search"),
        fact_id=record.get("fact_id"),
        staticity=record.get("staticity"),
        cost=record.get("cost"),
        metadata=record.get("metadata", {}),
    )


def save_timed_queries(
    arrivals: Sequence[tuple[float, Query]], path: "str | Path"
) -> None:
    """Write an open-loop trace: header line, then one arrival per line."""
    lines = [json.dumps({"format": TRACE_FORMAT, "kind": "timed-queries"})]
    for at, query in arrivals:
        lines.append(json.dumps({"at": at, **_query_record(query)}, allow_nan=False))
    Path(path).write_text("\n".join(lines) + "\n")


def load_timed_queries(path: "str | Path") -> list[tuple[float, Query]]:
    """Read an open-loop trace written by :func:`save_timed_queries`."""
    lines = Path(path).read_text().splitlines()
    header = _check_header(lines, expected_kind="timed-queries", path=path)
    arrivals = []
    for line in lines[1:]:
        if not line.strip():
            continue
        record = json.loads(line)
        arrivals.append((float(record["at"]), _query_from(record)))
    return arrivals


def save_tasks(tasks: Sequence[AgentTask], path: "str | Path") -> None:
    """Write a closed-loop task trace."""
    lines = [json.dumps({"format": TRACE_FORMAT, "kind": "tasks"})]
    for task in tasks:
        lines.append(
            json.dumps(
                {
                    "task_id": task.task_id,
                    "question": task.question,
                    "answer": task.answer,
                    "answer_fact": task.answer_fact,
                    "queries": [_query_record(query) for query in task.queries],
                },
                allow_nan=False,
            )
        )
    Path(path).write_text("\n".join(lines) + "\n")


def load_tasks(path: "str | Path") -> list[AgentTask]:
    """Read a task trace written by :func:`save_tasks`."""
    lines = Path(path).read_text().splitlines()
    _check_header(lines, expected_kind="tasks", path=path)
    tasks = []
    for line in lines[1:]:
        if not line.strip():
            continue
        record = json.loads(line)
        tasks.append(
            AgentTask(
                task_id=record["task_id"],
                question=record["question"],
                queries=tuple(_query_from(q) for q in record["queries"]),
                answer=record.get("answer", ""),
                answer_fact=record.get("answer_fact"),
            )
        )
    return tasks


def _check_header(lines: list[str], expected_kind: str, path) -> dict:
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"{path}: not an {TRACE_FORMAT} file (format={header.get('format')!r})"
        )
    if header.get("kind") != expected_kind:
        raise ValueError(
            f"{path}: trace kind {header.get('kind')!r}, expected {expected_kind!r}"
        )
    return header
