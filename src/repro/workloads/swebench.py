"""SWE-bench-style coding workload on an sqlfluff-like repository (§2.3, §6.2).

Table 2 of the paper measures how often each sqlfluff file is needed across
SWE-bench Dev tasks: one file by *every* task, a few core modules heavily,
and a long tail rarely. Issues are modelled as tasks whose tool calls fetch
the files the fix depends on; because core files recur across issues, the
file-fetch stream has the near-Zipf locality a semantic cache can exploit —
while distinct files sharing most path tokens give the judger real work.
"""

from __future__ import annotations

import numpy as np

from repro.agent.model import AgentTask
from repro.core.types import Query
from repro.sim.random import derive_seed
from repro.workloads.facts import Fact, FactUniverse
from repro.workloads.paraphrase import Paraphraser

#: Table 2: per-file access frequency across SWE-bench Dev tasks.
TABLE2_ACCESS_FREQUENCIES = (1.0, 0.28, 0.22, 0.14, 0.10, 0.08, 0.04, 0.04, 0.04)

#: The nine head files (frequencies above) plus tail structure below. Paths
#: follow sqlfluff's real layout.
_HEAD_FILES = (
    "src/sqlfluff/core/linter/linter.py",
    "src/sqlfluff/core/parser/segments/base.py",
    "src/sqlfluff/core/rules/base.py",
    "src/sqlfluff/core/parser/grammar/base.py",
    "src/sqlfluff/core/config.py",
    "src/sqlfluff/core/parser/lexer.py",
    "src/sqlfluff/core/templaters/jinja.py",
    "src/sqlfluff/core/dialects/dialect_ansi.py",
    "src/sqlfluff/core/errors.py",
)

#: File-fetch phrasing templates (filler words are embedding stopwords).
FILE_TEMPLATES = (
    "{core}",
    "show me {core}",
    "i need {core}",
    "please give me {core}",
    "what is in {core}",
    "find {core}",
    "can you get {core}",
    "{core} please",
)

#: Frequency assigned to every tail file.
_TAIL_FREQUENCY = 0.02


def _path_core(path: str) -> str:
    """Content core of a file path (tokens the embedder fingerprints)."""
    return path.replace("/", " ").replace(".", " ").replace("_", " ")


def build_repo_universe(
    n_tail_files: int = 40, seed: int = 0, mean_file_tokens: int = 400
) -> FactUniverse:
    """The sqlfluff-like repository as a fact universe (fact = file).

    Head files carry the Table 2 frequencies in their metadata-bearing
    order; tail files follow. File contents are deterministic synthetic
    text sized like real modules.
    """
    if n_tail_files < 0:
        raise ValueError("n_tail_files must be >= 0")
    rng = np.random.default_rng(derive_seed(seed, "swebench:repo"))
    facts = []
    paths = list(_HEAD_FILES) + [
        f"src/sqlfluff/rules/L{index:03d}.py" for index in range(1, n_tail_files + 1)
    ]
    for index, path in enumerate(paths):
        tokens = max(50, int(rng.normal(mean_file_tokens, mean_file_tokens / 3)))
        facts.append(
            Fact(
                fact_id=path,
                core=_path_core(path),
                answer=f"<file {path}> module source",
                topic="code",
                staticity=8,  # Source files change slowly between issues.
                cost=0.0,  # Self-hosted RAG service: no per-call fee (§6.4).
                answer_tokens=tokens,
            )
        )
    return FactUniverse("sqlfluff", facts)


class SWEBenchWorkload:
    """Issue-resolution tasks over the synthetic sqlfluff repository.

    Each issue (task) reads the always-needed linter core, each head file
    independently with its Table 2 probability, and 1-3 tail files specific
    to the issue. Tool calls use the ``file`` tool and varied phrasing.

    Parameters
    ----------
    universe:
        A repository universe (defaults to :func:`build_repo_universe`).
    seed:
        Determinism seed.
    max_files_per_issue:
        Upper bound on files one issue touches (keeps tasks bounded).
    """

    def __init__(
        self,
        universe: FactUniverse | None = None,
        seed: int = 0,
        max_files_per_issue: int = 6,
    ) -> None:
        if max_files_per_issue < 1:
            raise ValueError("max_files_per_issue must be >= 1")
        self.universe = universe if universe is not None else build_repo_universe(seed=seed)
        self.seed = seed
        self.max_files_per_issue = max_files_per_issue
        self._rng = np.random.default_rng(derive_seed(seed, "swebench:issues"))
        self.paraphraser = Paraphraser(templates=FILE_TEMPLATES)
        self._head = [self.universe.get(path) for path in _HEAD_FILES]
        self._tail = [
            fact for fact in self.universe if fact.fact_id not in _HEAD_FILES
        ]

    def _file_query(self, fact: Fact) -> Query:
        variant = int(self._rng.integers(self.paraphraser.variants))
        return Query(
            text=self.paraphraser.phrase(fact.core, variant),
            tool="file",
            fact_id=fact.fact_id,
            staticity=fact.staticity,
            cost=fact.cost,
        )

    def next_issue(self, issue_number: int) -> AgentTask:
        """Generate one issue-resolution task."""
        files: list[Fact] = []
        for fact, frequency in zip(self._head, TABLE2_ACCESS_FREQUENCIES):
            if self._rng.random() < frequency:
                files.append(fact)
        tail_count = int(self._rng.integers(1, 4)) if self._tail else 0
        if tail_count:
            picks = self._rng.choice(
                len(self._tail), size=min(tail_count, len(self._tail)), replace=False
            )
            files.extend(self._tail[int(i)] for i in picks)
        files = files[: self.max_files_per_issue]
        if not files:  # Frequencies are probabilistic; guarantee >= 1 file.
            files = [self._head[0]]
        queries = tuple(self._file_query(fact) for fact in files)
        return AgentTask(
            task_id=f"sqlfluff:issue-{issue_number}",
            question=f"resolve github issue #{issue_number} in sqlfluff",
            queries=queries,
            answer=f"patch for issue #{issue_number}",
            answer_fact=files[-1].fact_id,
        )

    def issues(self, count: int) -> list[AgentTask]:
        """``count`` sequential issues."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.next_issue(number) for number in range(count)]

    def empirical_file_frequencies(self, issues: list[AgentTask]) -> dict[str, float]:
        """Fraction of issues touching each file (reproduces Table 2)."""
        if not issues:
            return {}
        counts: dict[str, int] = {}
        for issue in issues:
            touched = {query.fact_id for query in issue.queries}
            for fact_id in touched:
                if fact_id is not None:
                    counts[fact_id] = counts.get(fact_id, 0) + 1
        return {
            fact_id: count / len(issues) for fact_id, count in counts.items()
        }

    def __repr__(self) -> str:
        return f"SWEBenchWorkload(files={len(self.universe)}, seed={self.seed})"
