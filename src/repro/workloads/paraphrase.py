"""Deterministic paraphrase generation.

Real users phrase the same information need many ways; that is exactly what
defeats exact-match caches (§2.4). The paraphraser wraps a fact's content
core in templates whose filler words are all embedding stopwords, so:

* paraphrases of the same fact keep identical content stems → cosine ≥ ~0.95
  under the hashing embedder (inside the coarse filter);
* different facts share few stems → well below the filter;
* confusable facts (same stems, one differing qualifier) land in between —
  above the filter, caught only by the judger.

Everything is deterministic: variant ``i`` of a given core is always the
same string.
"""

from __future__ import annotations

#: Filler-only templates. Every non-``{core}`` word must be a tokenizer
#: stopword (tests enforce this), so templates perturb word order and length
#: without touching the content fingerprint.
DEFAULT_TEMPLATES = (
    "{core}",
    "what is {core}",
    "tell me about {core}",
    "can you tell me {core}",
    "do you know {core}",
    "i want to know {core}",
    "please show me {core}",
    "i need to find {core}",
    "what do you know about {core}",
    "just tell me {core}",
    "give me {core}",
    "{core} please",
    "quick question about {core}",
    "could you find {core} for me",
)

#: Template indices at which the core's word order is reversed (models
#: keyword-style re-orderings such as "mona lisa painter").
_REVERSED_VARIANTS = frozenset({3, 7, 11})

#: Interjection prefixes (all stopwords) forming the second paraphrase axis.
#: A live agent regenerates its tool query every time, so even the same
#: question rarely produces byte-identical strings — this axis models that.
DEFAULT_FILLERS = (
    "",
    "ok so",
    "well",
    "now then",
    "hey",
    "um",
    "oh right",
    "so",
)


class Paraphraser:
    """Deterministic surface forms for fact cores.

    The variant space is ``templates x fillers`` (14 x 8 = 112 by default):
    variant ``i`` uses template ``i % len(templates)`` with interjection
    prefix ``(i // len(templates)) % len(fillers)``. All filler material is
    stopwords, so every variant of one core shares the same content
    fingerprint.

    Parameters
    ----------
    templates:
        Filler templates containing one ``{core}`` placeholder.
    fillers:
        Interjection prefixes (may include the empty string).
    variants:
        Size of the variant space exposed; defaults to the full grid.
    """

    def __init__(
        self,
        templates: tuple[str, ...] = DEFAULT_TEMPLATES,
        fillers: tuple[str, ...] = DEFAULT_FILLERS,
        variants: int | None = None,
    ) -> None:
        if not templates:
            raise ValueError("need at least one template")
        for template in templates:
            if "{core}" not in template:
                raise ValueError(f"template {template!r} lacks a {{core}} slot")
        if not fillers:
            raise ValueError("need at least one filler (may be the empty string)")
        self.templates = tuple(templates)
        self.fillers = tuple(fillers)
        grid = len(self.templates) * len(self.fillers)
        if variants is None:
            variants = grid
        if not 1 <= variants <= grid:
            raise ValueError(f"variants must be in [1, {grid}], got {variants}")
        self.variants = variants

    def phrase(self, core: str, variant: int) -> str:
        """Variant ``variant`` (mod ``variants``) of ``core``."""
        if not core:
            raise ValueError("core must be non-empty")
        index = variant % self.variants
        template_index = index % len(self.templates)
        filler_index = (index // len(self.templates)) % len(self.fillers)
        body = core
        if template_index in _REVERSED_VARIANTS:
            body = " ".join(reversed(core.split()))
        text = self.templates[template_index].format(core=body)
        filler = self.fillers[filler_index]
        return f"{filler} {text}".strip()

    def all_phrases(self, core: str) -> list[str]:
        """Every distinct paraphrase of ``core``."""
        return [self.phrase(core, index) for index in range(self.variants)]

    def __repr__(self) -> str:
        return f"Paraphraser(variants={self.variants})"
