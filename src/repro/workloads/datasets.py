"""Synthetic QA datasets standing in for the paper's search benchmarks.

The paper samples ~250 questions from each of Zilliz-GPT, HotpotQA, Musique,
and 2WikiMultiHop (§6.1), and a StrategyQA-like set for accuracy. Offline we
generate universes whose *cache-relevant structure* matches:

* ~60 distinct knowledge units behind a nominal ~250 questions per dataset
  (several questions ask for the same knowledge — the semantic-locality
  ratio), ranked by Zipf(0.99) popularity;
* each fact reachable through ~112 deterministic paraphrases (a live agent
  regenerates its tool query every time, so strings rarely repeat — which is
  why exact caches miss);
* a per-dataset fraction of *confusable* fact pairs (same content words,
  one differing qualifier) that defeat similarity-only matching;
* multi-hop *chains* (Musique > 2Wiki ≈ HotpotQA > Zilliz single-hop) that
  create the query-to-query correlations prefetching exploits;
* heterogeneous retrieval cost/latency (a premium slice) that LCFU values;
* attribute-driven staticity (capitals are stable, prices are ephemeral);
* a per-dataset base Exact-Match score for the vanilla agent, used by the
  Figure 13 accuracy analysis.

Everything is deterministic given the dataset name and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.types import Query
from repro.sim.random import derive_seed
from repro.workloads.facts import Fact, FactUniverse
from repro.workloads.paraphrase import Paraphraser

#: (entity, topic) bank. Entities are multi-token where natural; content
#: stems are what the embedder fingerprints.
_ENTITIES: tuple[tuple[str, str], ...] = (
    ("mount everest", "geography"), ("kilimanjaro", "geography"),
    ("amazon river", "geography"), ("nile delta", "geography"),
    ("sahara desert", "geography"), ("lake baikal", "geography"),
    ("grand canyon", "geography"), ("great barrier reef", "geography"),
    ("mariana trench", "geography"), ("angel falls", "geography"),
    ("mona lisa", "art"), ("starry night", "art"),
    ("sistine chapel", "art"), ("girl pearl earring", "art"),
    ("guernica painting", "art"), ("venus milo", "art"),
    ("david sculpture", "art"), ("persistence memory", "art"),
    ("water lilies", "art"), ("scream painting", "art"),
    ("leonardo vinci", "history"), ("isaac newton", "history"),
    ("marie curie", "history"), ("albert einstein", "history"),
    ("cleopatra egypt", "history"), ("julius caesar", "history"),
    ("napoleon bonaparte", "history"), ("genghis khan", "history"),
    ("abraham lincoln", "history"), ("winston churchill", "history"),
    ("solar panel", "technology"), ("lithium battery", "technology"),
    ("quantum computer", "technology"), ("neural network", "technology"),
    ("jet engine", "technology"), ("fiber optic", "technology"),
    ("microchip fabrication", "technology"), ("electric vehicle", "technology"),
    ("space telescope", "technology"), ("fusion reactor", "technology"),
    ("world cup", "sports"), ("olympic marathon", "sports"),
    ("tour france", "sports"), ("wimbledon tennis", "sports"),
    ("super bowl", "sports"), ("cricket ashes", "sports"),
    ("formula racing", "sports"), ("boston marathon", "sports"),
    ("chess championship", "sports"), ("rugby nations", "sports"),
    ("aspirin tablet", "health"), ("penicillin antibiotic", "health"),
    ("insulin hormone", "health"), ("vitamin d", "health"),
    ("malaria vaccine", "health"), ("blood pressure", "health"),
    ("caffeine metabolism", "health"), ("gut microbiome", "health"),
    ("measles outbreak", "health"), ("influenza strain", "health"),
    ("stock exchange", "finance"), ("federal reserve", "finance"),
    ("crypto currency", "finance"), ("mortgage rate", "finance"),
    ("hedge fund", "finance"), ("carbon tax", "finance"),
    ("trade tariff", "finance"), ("pension fund", "finance"),
    ("venture capital", "finance"), ("inflation index", "finance"),
    ("jazz festival", "entertainment"), ("opera house", "entertainment"),
    ("film noir", "entertainment"), ("broadway musical", "entertainment"),
    ("anime studio", "entertainment"), ("rock album", "entertainment"),
    ("video game", "entertainment"), ("comic convention", "entertainment"),
    ("streaming series", "entertainment"), ("puppet theatre", "entertainment"),
    ("photosynthesis process", "science"), ("plate tectonics", "science"),
    ("dna helix", "science"), ("black hole", "science"),
    ("higgs boson", "science"), ("crispr editing", "science"),
    ("dark matter", "science"), ("exoplanet survey", "science"),
    ("coral bleaching", "science"), ("permafrost methane", "science"),
)

#: (attribute, true staticity) bank — capitals are stable, prices ephemeral.
_ATTRIBUTES: tuple[tuple[str, int], ...] = (
    ("height", 9), ("length", 9), ("origin", 10), ("inventor", 10),
    ("discovery year", 10), ("author", 10), ("location", 9),
    ("composition", 8), ("founder", 10), ("meaning", 8),
    ("history", 9), ("structure", 8), ("capacity", 7),
    ("winner", 7), ("record", 6), ("schedule", 3),
    ("price", 2), ("forecast", 2), ("ranking", 3),
    ("availability", 3), ("population", 5), ("budget", 4),
    ("membership", 5), ("duration", 8),
)

#: Qualifier pairs used to build confusable fact groups; the two facts share
#: every content stem except the qualifier.
_CONFUSABLE_QUALIFIERS: tuple[tuple[str, str], ...] = (
    ("2018", "2022"), ("summer", "winter"), ("northern", "southern"),
    ("original", "modern"), ("indoor", "outdoor"), ("junior", "senior"),
    ("opening", "closing"), ("eastern", "western"),
)


@dataclass(frozen=True)
class DatasetProfile:
    """Shape parameters of one synthetic dataset.

    ``n_facts`` counts distinct knowledge units; ``n_questions`` is the
    dataset's nominal question count (the paper samples ~250 questions per
    dataset, several of which ask for the same knowledge — that ratio is
    what makes semantic caching effective where exact caching is not).
    Cache-size ratios are expressed against ``n_questions``.
    """

    name: str
    n_facts: int = 60
    n_questions: int = 250
    zipf_s: float = 0.99
    confusable_fraction: float = 0.2
    premium_fraction: float = 0.2
    premium_cost: float = 0.02
    premium_latency_scale: float = 2.0
    mean_answer_tokens: int = 64
    min_hops: int = 1
    max_hops: int = 1
    n_chains: int = 120
    base_em: float = 0.6


#: Per-dataset profiles. ``base_em`` values follow the relative difficulty
#: the literature reports (Musique hardest, Zilliz easiest); StrategyQA's
#: 0.79 matches the number quoted in §6.6.
PROFILES: dict[str, DatasetProfile] = {
    "zilliz_gpt": DatasetProfile(
        name="zilliz_gpt", confusable_fraction=0.10, min_hops=1, max_hops=1,
        base_em=0.82,
    ),
    "hotpotqa": DatasetProfile(
        name="hotpotqa", confusable_fraction=0.20, min_hops=2, max_hops=2,
        base_em=0.62,
    ),
    "musique": DatasetProfile(
        name="musique", confusable_fraction=0.30, min_hops=2, max_hops=4,
        base_em=0.45,
    ),
    "two_wiki": DatasetProfile(
        name="two_wiki", confusable_fraction=0.20, min_hops=2, max_hops=2,
        base_em=0.55,
    ),
    "strategyqa": DatasetProfile(
        name="strategyqa", n_facts=50, n_questions=200,
        confusable_fraction=0.25, min_hops=2, max_hops=3, base_em=0.79,
    ),
}

DATASET_NAMES = tuple(name for name in PROFILES if name != "strategyqa")


class QADataset:
    """A synthetic QA dataset: universe + chains + paraphraser + profile."""

    def __init__(
        self,
        profile: DatasetProfile,
        universe: FactUniverse,
        chains: list[tuple[str, ...]],
        paraphraser: Paraphraser,
    ) -> None:
        self.profile = profile
        self.universe = universe
        self.chains = chains
        self.paraphraser = paraphraser

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def base_em(self) -> float:
        """Vanilla agent Exact-Match score on this dataset."""
        return self.profile.base_em

    def capacity_for(self, cache_ratio: float) -> int:
        """Cache capacity (items) for a ratio of the nominal dataset size."""
        if not 0.0 < cache_ratio:
            raise ValueError(f"cache_ratio must be > 0, got {cache_ratio}")
        return max(1, int(cache_ratio * self.profile.n_questions))

    def query_for(
        self, fact: Fact, variant: int, session: str | None = None
    ) -> Query:
        """A :class:`Query` asking ``fact`` with paraphrase ``variant``.

        ``session`` tags the query with the requesting workflow's identity
        (the prefetcher learns transitions per session).
        """
        metadata = {}
        if fact.latency_scale != 1.0:
            metadata["latency_scale"] = fact.latency_scale
        if session is not None:
            metadata["session"] = session
        return Query(
            text=self.paraphraser.phrase(fact.core, variant),
            tool="search",
            fact_id=fact.fact_id,
            staticity=fact.staticity,
            cost=fact.cost,
            metadata=metadata,
        )

    def __repr__(self) -> str:
        return (
            f"QADataset({self.name!r}, facts={len(self.universe)}, "
            f"chains={len(self.chains)})"
        )


def _build_facts(profile: DatasetProfile, rng: np.random.Generator) -> list[Fact]:
    """Generate the fact list for ``profile`` in popularity order."""
    facts: list[Fact] = []
    entity_order = rng.permutation(len(_ENTITIES))
    attribute_order = rng.permutation(len(_ATTRIBUTES))
    n_confusable_groups = int(
        profile.n_facts * profile.confusable_fraction / 2
    )
    pair_cursor = 0
    combo_index = 0

    def next_combo() -> tuple[str, str, str, int]:
        nonlocal combo_index
        entity, topic = _ENTITIES[entity_order[combo_index % len(_ENTITIES)]]
        attr_step = combo_index // len(_ENTITIES)
        attribute, staticity = _ATTRIBUTES[
            attribute_order[(combo_index + attr_step) % len(_ATTRIBUTES)]
        ]
        combo_index += 1
        return entity, topic, attribute, staticity

    while len(facts) < profile.n_facts:
        entity, topic, attribute, staticity = next_combo()
        premium = bool(rng.random() < profile.premium_fraction)
        cost = profile.premium_cost if premium else None
        latency_scale = profile.premium_latency_scale if premium else 1.0
        answer_tokens = max(
            8, int(rng.normal(profile.mean_answer_tokens, profile.mean_answer_tokens / 4))
        )
        if pair_cursor < n_confusable_groups and len(facts) + 2 <= profile.n_facts:
            qual_a, qual_b = _CONFUSABLE_QUALIFIERS[
                pair_cursor % len(_CONFUSABLE_QUALIFIERS)
            ]
            group = f"{profile.name}:grp{pair_cursor}"
            for qualifier in (qual_a, qual_b):
                core = f"{attribute} {entity} {qualifier}"
                facts.append(
                    Fact(
                        fact_id=f"{profile.name}:{len(facts)}",
                        core=core,
                        answer=f"The {attribute} of {entity} ({qualifier}) is "
                        f"value-{len(facts)}",
                        topic=topic,
                        staticity=staticity,
                        cost=cost,
                        latency_scale=latency_scale,
                        answer_tokens=answer_tokens,
                        confusable_group=group,
                    )
                )
            pair_cursor += 1
        else:
            core = f"{attribute} {entity}"
            facts.append(
                Fact(
                    fact_id=f"{profile.name}:{len(facts)}",
                    core=core,
                    answer=f"The {attribute} of {entity} is value-{len(facts)}",
                    topic=topic,
                    staticity=staticity,
                    cost=cost,
                    latency_scale=latency_scale,
                    answer_tokens=answer_tokens,
                )
            )
    # Popularity order: shuffle so confusables are spread across ranks.
    rng.shuffle(facts)
    return facts[: profile.n_facts]


def _build_chains(
    profile: DatasetProfile, facts: list[Fact], rng: np.random.Generator
) -> list[tuple[str, ...]]:
    """Multi-hop reasoning chains (fact-id tuples), popularity-ordered.

    Chains prefer popular facts for their first hop (questions about popular
    topics are themselves popular) and reuse a stable successor per fact so
    prefetchable transition structure exists.
    """
    n = len(facts)
    chains: list[tuple[str, ...]] = []
    # A stable "related fact" mapping: fact i -> fact (i * 7 + 3) % n, which
    # is deterministic and avoids self-loops for n not divisible by 7.
    for chain_index in range(profile.n_chains):
        hops = int(rng.integers(profile.min_hops, profile.max_hops + 1))
        start = chain_index % n
        chain = [start]
        current = start
        while len(chain) < hops:
            current = (current * 7 + 3) % n
            if current == chain[0]:
                current = (current + 1) % n
            chain.append(current)
        chains.append(tuple(facts[i].fact_id for i in chain))
    return chains


def build_dataset(name: str, seed: int = 0, **overrides) -> QADataset:
    """Construct the named dataset deterministically.

    ``name`` is one of ``zilliz_gpt``, ``hotpotqa``, ``musique``,
    ``two_wiki``, ``strategyqa``. Keyword ``overrides`` replace profile
    fields (e.g. ``premium_latency_scale=4.0`` for cost-heterogeneity
    studies).
    """
    profile = PROFILES.get(name)
    if profile is None:
        raise ValueError(f"unknown dataset {name!r}; known: {sorted(PROFILES)}")
    if overrides:
        profile = replace(profile, **overrides)
    rng = np.random.default_rng(derive_seed(seed, f"dataset:{name}"))
    facts = _build_facts(profile, rng)
    universe = FactUniverse(name, facts)
    chains = _build_chains(profile, facts, rng)
    return QADataset(profile, universe, chains, Paraphraser())
