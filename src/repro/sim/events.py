"""Awaitable event primitives for the simulation kernel.

Processes (see :mod:`repro.sim.kernel`) are Python generators that ``yield``
the objects defined here. Yielding suspends the process until the event
*triggers*, at which point the kernel resumes the generator with the event's
value (or throws the event's exception into it).

The primitives mirror a small, well-trodden subset of SimPy's API:

``Event``
    A one-shot event triggered manually via :meth:`Event.succeed` or
    :meth:`Event.fail`.
``Timeout``
    An event that triggers after a fixed simulated delay.
``AllOf`` / ``AnyOf``
    Composite events over a list of child events.
``Interrupt``
    The exception raised inside a process that another process interrupted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.kernel import Simulator

_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    ``cause`` carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; it can be triggered exactly once, either
    successfully (with a value) or as a failure (with an exception). Callbacks
    registered before the trigger fire when it triggers; callbacks registered
    afterwards fire immediately (via the simulator, preserving event
    ordering).
    """

    def __init__(self, sim: "Simulator | None" = None) -> None:
        self._sim = sim
        self._value: Any = _PENDING
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Event"], None]] = []
        #: Set when at least one consumer observed the failure, suppressing
        #: the kernel's crash-on-unhandled-failure behaviour.
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event is pending or failed."""
        if not self.triggered:
            raise RuntimeError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        """The failure exception, or None."""
        return self._exception

    # -- binding ----------------------------------------------------------
    def _bind(self, sim: "Simulator") -> None:
        if self._sim is None:
            self._sim = sim
        elif self._sim is not sim:
            raise RuntimeError("event is bound to a different simulator")

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._value = value
        self._run_callbacks()
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as a failure carrying ``exception``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._exception = exception
        self._run_callbacks()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run once the event triggers."""
        if self.triggered:
            self._dispatch(callback)
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._dispatch(callback)

    def _dispatch(self, callback: Callable[["Event"], None]) -> None:
        if self._sim is not None:
            self._sim._schedule(0.0, lambda: callback(self))
        else:
            callback(self)

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self.ok else f"failed({self._exception!r})"
        return f"{type(self).__name__}({state})"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after it is yielded.

    The timeout is armed lazily: construction records the delay, and the
    kernel schedules the trigger when a process yields it (or when it is
    created through :meth:`Simulator.timeout`, which arms it immediately).
    """

    def __init__(self, delay: float, value: Any = None) -> None:
        super().__init__(sim=None)
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)
        self._timeout_value = value
        self._armed = False

    def _arm(self, sim: "Simulator") -> None:
        if self._armed:
            return
        self._bind(sim)
        self._armed = True
        sim._schedule(self.delay, lambda: self.succeed(self._timeout_value))


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    def __init__(self, events: Sequence[Event]) -> None:
        super().__init__(sim=None)
        self.events = list(events)
        if not self.events:
            raise ValueError("condition requires at least one event")
        self._armed = False

    def _arm(self, sim: "Simulator") -> None:
        if self._armed:
            return
        self._bind(sim)
        self._armed = True
        for event in self.events:
            event._bind(sim)
            if isinstance(event, (Timeout, _Condition)):
                event._arm(sim)
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has succeeded.

    The value is the list of child values in construction order. If any child
    fails, the condition fails with that child's exception.
    """

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        if all(child.triggered and child.ok for child in self.events):
            self.succeed([child.value for child in self.events])


class AnyOf(_Condition):
    """Triggers when the first child event succeeds.

    The value is ``(index, value)`` for the first successful child. If a child
    fails before any succeeds, the condition fails.
    """

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        index = self.events.index(event)
        self.succeed((index, event.value))
