"""The discrete-event simulator and its process abstraction.

A :class:`Simulator` owns a virtual clock and a priority queue of scheduled
callbacks. *Processes* are plain Python generators that model concurrent
activities: each ``yield`` hands an awaitable event to the kernel, which
suspends the generator until the event triggers and then resumes it with the
event's value.

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker("a", 2.0))
>>> _ = sim.process(worker("b", 1.0))
>>> sim.run()
2.0
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from repro.sim.clock import SimClock
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout, _Condition


class Process(Event):
    """A running process; also an event that triggers when the process ends.

    The process's success value is the generator's ``return`` value. If the
    generator raises, the process fails with that exception; if nothing is
    waiting on the process, the exception propagates out of
    :meth:`Simulator.run` so that bugs never pass silently.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        self._stale_events: set[int] = set()
        self._had_waiters = False
        self._crash: BaseException | None = None
        sim._schedule(0.0, lambda: self._step(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def add_callback(self, callback: Callable[[Event], None]) -> None:
        """Register a completion callback (marks the failure as handled)."""
        self._had_waiters = True
        super().add_callback(callback)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.sim.events.Interrupt` into the process.

        The interrupt is delivered at the current simulated time. It is an
        error to interrupt a finished process.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        interrupt = Interrupt(cause)
        waiting_on = self._waiting_on
        if waiting_on is not None:
            self._waiting_on = None
            # The stale wakeup from the abandoned event must be ignored.
            self._stale_events.add(id(waiting_on))
        assert self._sim is not None
        self._sim._schedule(0.0, lambda: self._step(None, interrupt))

    def _step(self, value: Any, exception: BaseException | None) -> None:
        if self.triggered:
            return
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagated via the event
            self._crash = exc
            self.fail(exc)
            assert self._sim is not None
            self._sim._note_failed_process(self)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        assert self._sim is not None
        sim = self._sim
        if isinstance(target, Generator):
            target = sim.process(target)
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; "
                "processes must yield Event instances or generators"
            )
        target._bind(sim)
        if isinstance(target, (Timeout, _Condition)):
            target._arm(sim)
        self._waiting_on = target
        target.add_callback(self._on_wakeup)

    def _on_wakeup(self, event: Event) -> None:
        if id(event) in self._stale_events:
            self._stale_events.discard(id(event))
            return
        if self._waiting_on is not event:
            return
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            event.defused = True
            self._step(None, event.exception)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else ("ok" if self.ok else "failed")
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Scheduled callbacks fire in (time, insertion order) so that two runs of
    the same program produce identical traces. The simulator never consults
    wall-clock time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = SimClock(start)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._failed: list[Process] = []

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def clock(self) -> SimClock:
        """The underlying :class:`~repro.sim.clock.SimClock`."""
        return self._clock

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._clock.now + delay, next(self._counter), callback)
        )

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` simulated seconds."""
        self._schedule(delay, callback)

    # -- factories ------------------------------------------------------------
    def event(self) -> Event:
        """Create a pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create and arm a :class:`Timeout`."""
        timeout = Timeout(delay, value)
        timeout._arm(self)
        return timeout

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a process; returns the process handle."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create and arm an :class:`AllOf` condition."""
        condition = AllOf(list(events))
        condition._arm(self)
        return condition

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create and arm an :class:`AnyOf` condition."""
        condition = AnyOf(list(events))
        condition._arm(self)
        return condition

    # -- execution --------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback; returns False if none remain."""
        if not self._queue:
            return False
        timestamp, _, callback = heapq.heappop(self._queue)
        self._clock.advance_to(timestamp)
        callback()
        self._raise_unhandled_failures()
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the event queue drains or simulated time reaches ``until``.

        Returns the simulated time at which the run stopped.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue:
            timestamp = self._queue[0][0]
            if until is not None and timestamp > until:
                self._clock.advance_to(until)
                return self.now
            self.step()
        if until is not None:
            self._clock.advance_to(until)
        return self.now

    def peek(self) -> float | None:
        """Timestamp of the next scheduled callback, or None if idle."""
        return self._queue[0][0] if self._queue else None

    # -- failure policy ----------------------------------------------------------
    def _note_failed_process(self, process: Process) -> None:
        self._failed.append(process)
        # Give same-timestamp consumers a chance to observe the failure
        # before the run loop decides whether it is unhandled.
        self._schedule(0.0, lambda: None)

    def _raise_unhandled_failures(self) -> None:
        if not self._failed:
            return
        failed, self._failed = self._failed, []
        for process in failed:
            if process.defused or process._had_waiters:
                continue
            assert process._crash is not None
            raise process._crash

    def __repr__(self) -> str:
        return f"Simulator(now={self.now:.6f}, pending={len(self._queue)})"


__all__ = ["Interrupt", "Process", "Simulator"]
