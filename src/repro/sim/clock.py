"""A monotonically advancing virtual clock.

The clock is deliberately tiny: it only knows the current simulated time and
how to advance it. The :class:`~repro.sim.kernel.Simulator` owns a clock and
advances it as events fire; sequential (non-event-driven) experiment code can
also drive a clock directly for simple latency accounting.
"""

from __future__ import annotations


class SimClock:
    """Virtual time in seconds, starting at ``start`` (default 0.0).

    Time can only move forward; attempting to move it backwards raises
    ``ValueError`` so that accounting bugs surface immediately instead of
    corrupting measurements.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta: {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump the clock forward to ``timestamp`` (must not be in the past)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
