"""Named, reproducible random-number streams.

Every stochastic component in the reproduction (embedder noise, judger noise,
network jitter, workload sampling, ...) draws from its own named stream so
that changing one component's consumption pattern never perturbs another's.
Streams are derived deterministically from a root seed and the stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that similar names yield unrelated seeds and the mapping
    is stable across Python versions (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent ``numpy.random.Generator`` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("workload")
    >>> b = rngs.stream("network")
    >>> a is rngs.stream("workload")   # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose root seed is derived from ``name``.

        Useful for giving each experiment trial its own namespace of streams.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
