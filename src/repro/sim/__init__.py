"""Discrete-event simulation kernel.

This package provides the virtual-time substrate used by every experiment in
the reproduction: a deterministic event-driven simulator with cooperative
processes (Python generators), counted resources with priority queueing, and
seeded random-variate distributions.

All latency, throughput, and cost numbers in the benchmarks are measured in
*simulated* seconds on this kernel, which makes the experiments fast,
deterministic, and independent of the host machine.

Public classes
--------------
``Simulator``
    The event loop: schedules callbacks and drives processes.
``Timeout``, ``Event``, ``AllOf``, ``AnyOf``
    Awaitable primitives yielded by process generators.
``Resource``
    A counted resource with FIFO or priority admission.
``Store``
    An unbounded FIFO queue between processes.
``RngRegistry``
    Named, independently seeded ``numpy`` random generators.
``Distribution`` and its concrete subclasses
    Seedable random variates for service and network latencies.
"""

from repro.sim.clock import SimClock
from repro.sim.distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    TruncatedNormal,
    Uniform,
    distribution_from_spec,
)
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.kernel import Process, Simulator
from repro.sim.random import RngRegistry
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Constant",
    "Distribution",
    "Empirical",
    "Event",
    "Exponential",
    "Interrupt",
    "LogNormal",
    "Process",
    "Resource",
    "RngRegistry",
    "SimClock",
    "Simulator",
    "Store",
    "Timeout",
    "TruncatedNormal",
    "Uniform",
    "distribution_from_spec",
]
