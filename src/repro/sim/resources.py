"""Counted resources and FIFO stores for simulated processes.

These model contended capacity (GPU slots, API connections) and producer /
consumer queues. A :class:`Resource` hands out grants in priority order
(lower number first, FIFO within a priority); a :class:`Store` moves items
between processes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Yields control back to the process once capacity is granted. Use it as a
    context manager inside a process for automatic release::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, resource: "Resource", priority: float) -> None:
        super().__init__(resource._sim_ref)
        self.resource = resource
        self.priority = priority
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw an ungranted request (e.g. the waiter timed out)."""
        if self.triggered:
            raise RuntimeError("cannot cancel a granted request; release instead")
        self.cancelled = True


class Resource:
    """A counted resource with priority admission.

    ``capacity`` concurrent holders are allowed. :meth:`request` returns a
    :class:`Request` event that succeeds when a slot is granted; the holder
    must call :meth:`release` with the same request object when done.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim_ref = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: list[tuple[float, int, Request]] = []
        self._ticket = itertools.count()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of ungranted, uncancelled requests."""
        return sum(1 for _, _, req in self._waiting if not req.cancelled)

    def request(self, priority: float = 0.0) -> Request:
        """Claim one slot; lower ``priority`` values are served first."""
        req = Request(self, priority)
        heapq.heappush(self._waiting, (priority, next(self._ticket), req))
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        """Return the slot held by ``request``."""
        if not request.triggered:
            raise RuntimeError("releasing a request that was never granted")
        self._in_use -= 1
        if self._in_use < 0:
            raise RuntimeError("resource released more times than granted")
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiting and self._in_use < self.capacity:
            _, _, req = heapq.heappop(self._waiting)
            if req.cancelled:
                continue
            self._in_use += 1
            req.succeed(req)

    def __repr__(self) -> str:
        return (
            f"Resource(capacity={self.capacity}, in_use={self._in_use}, "
            f"waiting={self.queue_length})"
        )


class Store:
    """An unbounded FIFO channel between processes.

    :meth:`put` never blocks; :meth:`get` returns an event that succeeds with
    the next item (immediately if one is buffered).
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim_ref = sim
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item in FIFO order."""
        event = Event(self._sim_ref)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event

    def __repr__(self) -> str:
        return f"Store(buffered={len(self._items)}, waiting={len(self._getters)})"
