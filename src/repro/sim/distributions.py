"""Seedable random variates for service times and network latencies.

Each distribution is a small immutable object with a ``sample(rng)`` method
taking a ``numpy.random.Generator``. Keeping the generator external lets the
same distribution be sampled from different named streams (see
:class:`repro.sim.random.RngRegistry`) without hidden state.

``distribution_from_spec`` builds a distribution from a plain dict, which is
how experiment configs describe latency models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


class Distribution:
    """Base class for random variates; subclasses implement :meth:`sample`."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean of the distribution."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Distribution):
    """A degenerate distribution: always ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"latency cannot be negative: {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        """Always ``value``."""
        return self.value

    def mean(self) -> float:
        """``value`` itself."""
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"invalid uniform bounds [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        """One uniform draw."""
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        """Midpoint of the interval."""
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given ``mean_value`` (scale)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError(f"exponential mean must be > 0: {self.mean_value}")

    def sample(self, rng: np.random.Generator) -> float:
        """One exponential draw."""
        return float(rng.exponential(self.mean_value))

    def mean(self) -> float:
        """The configured mean."""
        return self.mean_value


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal(mu, sigma) clipped below at ``floor`` (default 0).

    The mean reported is the untruncated mu, which is accurate enough for the
    small relative sigmas used in latency models.
    """

    mu: float
    sigma: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0: {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        """One clipped normal draw."""
        return max(self.floor, float(rng.normal(self.mu, self.sigma)))

    def mean(self) -> float:
        """The (untruncated) mu, floored."""
        return max(self.floor, self.mu)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterised by the mean and sigma of the *underlying* normal."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0: {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        """One log-normal draw."""
        return float(rng.lognormal(self.mu, self.sigma))

    def mean(self) -> float:
        """Analytic mean exp(mu + sigma^2 / 2)."""
        return float(np.exp(self.mu + self.sigma**2 / 2.0))

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Construct from a target mean and coefficient of variation."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0: {mean}")
        if cv < 0:
            raise ValueError(f"cv must be >= 0: {cv}")
        sigma2 = np.log(1.0 + cv**2)
        mu = np.log(mean) - sigma2 / 2.0
        return cls(mu=float(mu), sigma=float(np.sqrt(sigma2)))


class Empirical(Distribution):
    """Resamples uniformly from observed ``values``."""

    def __init__(self, values: Sequence[float]) -> None:
        if len(values) == 0:
            raise ValueError("empirical distribution needs at least one value")
        self._values = np.asarray(values, dtype=float)
        if np.any(self._values < 0):
            raise ValueError("empirical latency values must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        """One uniform resample of the observed values."""
        return float(rng.choice(self._values))

    def mean(self) -> float:
        """Mean of the observed values."""
        return float(self._values.mean())

    def __repr__(self) -> str:
        return f"Empirical(n={len(self._values)}, mean={self.mean():.4f})"


_SPEC_BUILDERS = {
    "constant": lambda spec: Constant(spec["value"]),
    "uniform": lambda spec: Uniform(spec["low"], spec["high"]),
    "exponential": lambda spec: Exponential(spec["mean"]),
    "normal": lambda spec: TruncatedNormal(
        spec["mu"], spec["sigma"], spec.get("floor", 0.0)
    ),
    "lognormal": lambda spec: (
        LogNormal.from_mean_cv(spec["mean"], spec["cv"])
        if "mean" in spec
        else LogNormal(spec["mu"], spec["sigma"])
    ),
    "empirical": lambda spec: Empirical(spec["values"]),
}


def distribution_from_spec(spec: "dict | Distribution | float") -> Distribution:
    """Build a :class:`Distribution` from a config value.

    Accepts an existing distribution (returned as-is), a bare number
    (treated as :class:`Constant`), or a dict with a ``kind`` key, e.g.
    ``{"kind": "uniform", "low": 0.3, "high": 0.5}``.
    """
    if isinstance(spec, Distribution):
        return spec
    if isinstance(spec, (int, float)):
        return Constant(float(spec))
    if not isinstance(spec, dict):
        raise TypeError(f"cannot build a distribution from {spec!r}")
    kind = spec.get("kind")
    if kind not in _SPEC_BUILDERS:
        raise ValueError(
            f"unknown distribution kind {kind!r}; expected one of "
            f"{sorted(_SPEC_BUILDERS)}"
        )
    return _SPEC_BUILDERS[kind](spec)
