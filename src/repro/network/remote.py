"""The remote data service the cache's miss path talks to.

A :class:`RemoteDataService` composes a latency model, an optional rate
limiter with client-side exponential backoff, and per-call fees. It answers
queries through a pluggable ``resolver`` callable (the workload's fact
universe provides one; the default fabricates deterministic text).

Two execution styles are supported:

* **Analytic** — :meth:`fetch_at` computes the whole fetch (throttle waits,
  retries, service time) given a start time; used by sequential examples and
  unit tests.
* **Discrete-event** — :meth:`fetch` is a generator to be driven with
  ``yield from`` inside a simulated process; contention between concurrent
  clients then emerges from the shared limiter and the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

import numpy as np

from repro.core.types import FetchResult, Query, estimate_tokens
from repro.network.cost import CostMeter
from repro.network.ratelimit import RateLimiter
from repro.sim.distributions import Distribution, Uniform, distribution_from_spec
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports us)
    from repro.network.faults import FaultInjector


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for throttled calls.

    Delay for attempt ``k`` (0-based retry count) is
    ``min(base * multiplier**k, max_delay)`` plus uniform jitter of up to
    ``jitter`` seconds. The default retry budget is effectively unbounded
    (clients keep waiting under sustained throttling, which is what inflates
    the baselines' latencies in §6.2); lower it to study fail-fast clients.
    """

    base: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    max_retries: int = 1000
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base <= 0 or self.multiplier < 1 or self.max_delay < self.base:
            raise ValueError("invalid backoff parameters")
        if self.max_retries < 0 or self.jitter < 0:
            raise ValueError("max_retries and jitter must be >= 0")

    def delay(self, retry_index: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        delay = min(self.base * self.multiplier**retry_index, self.max_delay)
        if self.jitter > 0:
            delay += float(rng.uniform(0.0, self.jitter))
        return delay


class RemoteFetchError(RuntimeError):
    """Base class for anything a remote fetch can fail with.

    ``latency`` is the simulated time the caller wasted before learning of
    the failure (backoff waits, a burnt timeout deadline, ...); engines
    charge it to the request before degrading.
    """

    def __init__(self, message: str, latency: float = 0.0) -> None:
        super().__init__(message)
        self.latency = latency


class RateLimitExceeded(RemoteFetchError):
    """Raised when a fetch exhausts its retry budget."""


def _default_resolver(query: Query) -> str:
    identity = query.fact_id if query.fact_id is not None else query.text
    return f"[remote] canonical result for {identity}"


class RemoteDataService:
    """A cross-region data service with latency, throttling, and fees.

    Parameters
    ----------
    name:
        Service name, used in stats and cost breakdowns.
    latency:
        Per-call service latency — a :class:`Distribution`, a number, or a
        spec dict. Defaults to U(0.3 s, 0.5 s), the paper's search API range.
    resolver:
        ``resolver(query) -> str`` produces the authoritative result.
    time_resolver:
        Optional ``(query, now) -> str`` resolver for sources whose answers
        change over time (takes precedence over ``resolver``); ``now`` is
        the simulated completion time of the fetch.
    rate_limiter:
        Optional :class:`RateLimiter`; None means unthrottled.
    cost_per_call:
        Fee charged per *successful* call (throttled attempts are free, as
        with real providers). A query's own ``cost`` annotation overrides it.
    retry_policy:
        Backoff shape for throttled attempts.
    rng:
        Generator used for latency draws and jitter.
    cost_meter:
        Optional shared meter; a private one is created otherwise.
    """

    def __init__(
        self,
        name: str = "search-api",
        latency: "Distribution | float | dict | None" = None,
        resolver: Callable[[Query], str] | None = None,
        time_resolver: "Callable[[Query, float], str] | None" = None,
        rate_limiter: RateLimiter | None = None,
        cost_per_call: float = 0.005,
        retry_policy: RetryPolicy | None = None,
        rng: np.random.Generator | None = None,
        cost_meter: CostMeter | None = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        if cost_per_call < 0:
            raise ValueError(f"cost_per_call must be >= 0: {cost_per_call}")
        self.name = name
        self.latency = (
            distribution_from_spec(latency) if latency is not None else Uniform(0.3, 0.5)
        )
        self.resolver = resolver or _default_resolver
        self.time_resolver = time_resolver
        self.rate_limiter = rate_limiter
        self.cost_per_call = cost_per_call
        self.retry_policy = retry_policy or RetryPolicy()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.cost_meter = cost_meter if cost_meter is not None else CostMeter()
        self.fault_injector = fault_injector
        # -- statistics --
        self.calls = 0
        self.attempts = 0
        self.retries = 0

    # -- shared pieces -------------------------------------------------------
    def _admission_plan(self, start: float) -> tuple[float, int, bool]:
        """Walk the throttle/backoff loop; returns (grant_time, retries, limited).

        Consumes limiter permits and RNG draws, so call exactly once per fetch.
        """
        now = start
        retries = 0
        limited = False
        if self.rate_limiter is None:
            return now, 0, False
        while not self.rate_limiter.try_acquire(now):
            limited = True
            if retries >= self.retry_policy.max_retries:
                raise RateLimitExceeded(
                    f"{self.name}: gave up after {retries} retries",
                    latency=now - start,
                )
            backoff = self.retry_policy.delay(retries, self.rng)
            earliest = self.rate_limiter.next_available(now)
            now = max(now + backoff, earliest)
            retries += 1
        return now, retries, limited

    def _complete(
        self, query: Query, waited: float, now: float = 0.0, fault_scale: float = 1.0
    ) -> FetchResult:
        # Heterogeneous backends: a query may declare that its data source is
        # slower/faster than the service baseline (drives LCFU's cost focus).
        # fault_scale > 1 models an injected latency spike.
        scale = float(query.metadata.get("latency_scale", 1.0)) * fault_scale
        service_time = self.latency.sample(self.rng) * scale
        if self.time_resolver is not None:
            result = self.time_resolver(query, now + service_time)
        else:
            result = self.resolver(query)
        fee = query.cost if query.cost is not None else self.cost_per_call
        self.cost_meter.charge_api_call(fee, tool=query.tool)
        self.calls += 1
        return FetchResult(
            result=result,
            latency=waited + service_time,
            service_latency=service_time,
            cost=fee,
            retries=0,  # filled in by callers
            rate_limited=False,
            size_tokens=estimate_tokens(result),
        )

    # -- analytic execution -------------------------------------------------------
    def fetch_at(self, query: Query, now: float = 0.0) -> FetchResult:
        """Perform a whole fetch starting at time ``now`` (analytic mode).

        Raises :class:`RemoteFetchError` subclasses on injected faults and
        exhausted retry budgets; the exception's ``latency`` is the simulated
        time wasted before the failure surfaced.
        """
        fault_scale = 1.0
        if self.fault_injector is not None:
            fault_scale = self.fault_injector.check(now)
        grant_time, retries, limited = self._admission_plan(now)
        self.attempts += 1 + retries
        self.retries += retries
        base = self._complete(
            query, waited=grant_time - now, now=grant_time, fault_scale=fault_scale
        )
        return FetchResult(
            result=base.result,
            latency=base.latency,
            service_latency=base.service_latency,
            cost=base.cost,
            retries=retries,
            rate_limited=limited,
            size_tokens=base.size_tokens,
        )

    # -- discrete-event execution ----------------------------------------------------
    def fetch(self, sim: Simulator, query: Query) -> Generator:
        """Process-style fetch; drive with ``yield from`` inside a process.

        Returns a :class:`FetchResult` whose latency is measured on the
        simulator clock, so queueing across concurrent callers is real.
        """
        start = sim.now
        fault_scale = 1.0
        if self.fault_injector is not None:
            try:
                fault_scale = self.fault_injector.check(sim.now)
            except RemoteFetchError as exc:
                # Burn the wasted round-trip on the simulator clock before
                # surfacing the failure, so DES latencies stay honest.
                if exc.latency > 0:
                    yield sim.timeout(exc.latency)
                raise
        retries = 0
        limited = False
        if self.rate_limiter is not None:
            while not self.rate_limiter.try_acquire(sim.now):
                limited = True
                if retries >= self.retry_policy.max_retries:
                    raise RateLimitExceeded(
                        f"{self.name}: gave up after {retries} retries",
                        latency=sim.now - start,
                    )
                backoff = self.retry_policy.delay(retries, self.rng)
                earliest = self.rate_limiter.next_available(sim.now)
                wait = max(backoff, earliest - sim.now)
                retries += 1
                self.attempts += 1
                self.retries += 1
                yield sim.timeout(wait)
        base = self._complete(query, waited=0.0, now=sim.now, fault_scale=fault_scale)
        self.attempts += 1
        yield sim.timeout(base.service_latency)
        return FetchResult(
            result=base.result,
            latency=sim.now - start,
            service_latency=base.service_latency,
            cost=base.cost,
            retries=retries,
            rate_limited=limited,
            size_tokens=base.size_tokens,
        )

    @property
    def retry_ratio(self) -> float:
        """Fraction of attempts that were retries (the paper's Figure 12 metric)."""
        if self.attempts == 0:
            return 0.0
        return self.retries / self.attempts

    def __repr__(self) -> str:
        return (
            f"RemoteDataService({self.name!r}, calls={self.calls}, "
            f"retries={self.retries}, cost=${self.cost_meter.api_cost:.4f})"
        )
