"""Inter-region latency topology.

A :class:`RegionTopology` maps ordered region pairs to latency
distributions. The default topology reflects the paper's deployment numbers:
an agent region and a remote data region separated by a WAN with 100-300 ms
of network delay, yielding 300-500 ms end-to-end service latencies for
search-API calls (§2.2, §6.1).
"""

from __future__ import annotations

import numpy as np

from repro.sim.distributions import Constant, Distribution, Uniform


class RegionTopology:
    """Latency distributions between named regions.

    Pairs are directional; :meth:`connect` registers both directions unless
    ``symmetric=False``. Intra-region latency defaults to
    ``local_latency`` (1 ms) unless overridden.
    """

    def __init__(self, local_latency: float = 0.001) -> None:
        if local_latency < 0:
            raise ValueError(f"local_latency must be >= 0: {local_latency}")
        self._links: dict[tuple[str, str], Distribution] = {}
        self._regions: set[str] = set()
        self.local_latency = local_latency

    @property
    def regions(self) -> frozenset[str]:
        """All regions mentioned by any link."""
        return frozenset(self._regions)

    def connect(
        self,
        src: str,
        dst: str,
        latency: Distribution,
        symmetric: bool = True,
    ) -> None:
        """Register the latency distribution for ``src -> dst``."""
        if src == dst:
            raise ValueError("use local_latency for intra-region latency")
        self._links[(src, dst)] = latency
        self._regions.update((src, dst))
        if symmetric:
            self._links[(dst, src)] = latency

    def latency_distribution(self, src: str, dst: str) -> Distribution:
        """The latency distribution for ``src -> dst``."""
        if src == dst:
            return Constant(self.local_latency)
        link = self._links.get((src, dst))
        if link is None:
            raise KeyError(f"no link registered for {src!r} -> {dst!r}")
        return link

    def sample_latency(
        self, src: str, dst: str, rng: np.random.Generator
    ) -> float:
        """One latency draw for ``src -> dst``."""
        return self.latency_distribution(src, dst).sample(rng)

    def __repr__(self) -> str:
        return f"RegionTopology(regions={sorted(self._regions)}, links={len(self._links)})"


def default_topology() -> RegionTopology:
    """The paper's two-region deployment plus a same-region reference.

    * ``agent`` — the on-premise H100 cluster region.
    * ``remote`` — the data-service region; one-way delivery time is drawn
      U(0.10 s, 0.30 s) per §2.2's 100-300 ms cross-region delay (the
      service adds its own processing time on top).
    * ``local-dc`` — a same-metro data centre (2 ms) for ablations.
    """
    topology = RegionTopology()
    topology.connect("agent", "remote", Uniform(0.10, 0.30))
    topology.connect("agent", "local-dc", Constant(0.002))
    return topology
