"""Client-visible API rate limiting.

Two classic schemes are provided behind one tiny interface:

``TokenBucket``
    Continuous refill at ``rate`` tokens/second up to ``burst``; the model
    used for the paper's "100 queries per minute" Google Search limit.
``FixedWindowLimiter``
    At most ``limit`` grants per aligned window of ``window`` seconds — the
    blunter scheme some providers use; exhibits boundary bursts.

Both work in simulated time: callers pass ``now`` explicitly, and
``next_available`` lets a simulated client compute how long to back off
without busy-waiting.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class RateLimiter(Protocol):
    """What a throttled client needs from a limiter."""

    def try_acquire(self, now: float) -> bool:
        """Consume one permit if available at time ``now``."""
        ...

    def next_available(self, now: float) -> float:
        """Earliest time ≥ ``now`` at which a permit could be granted."""
        ...


class TokenBucket:
    """Token bucket: ``rate`` permits/second, capacity ``burst``.

    >>> bucket = TokenBucket(rate=2.0, burst=1)
    >>> bucket.try_acquire(0.0)
    True
    >>> bucket.try_acquire(0.0)
    False
    >>> bucket.next_available(0.0)
    0.5
    """

    def __init__(self, rate: float, burst: int = 1) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._updated_at = 0.0
        self.granted = 0
        self.rejected = 0

    @classmethod
    def per_minute(cls, limit: int, burst: int | None = None) -> "TokenBucket":
        """A bucket expressed as requests/minute (e.g. ``per_minute(100)``)."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        return cls(rate=limit / 60.0, burst=burst if burst is not None else limit)

    def _refill(self, now: float) -> None:
        if now < self._updated_at:
            raise ValueError(
                f"time went backwards: {now} < {self._updated_at}"
            )
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated_at) * self.rate
        )
        self._updated_at = now

    def try_acquire(self, now: float) -> bool:
        """Consume one token if available at ``now``."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.granted += 1
            return True
        self.rejected += 1
        return False

    def next_available(self, now: float) -> float:
        """Earliest time a token will exist (now if one does)."""
        self._refill(now)
        if self._tokens >= 1.0:
            return now
        deficit = 1.0 - self._tokens
        return now + deficit / self.rate

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate:.4f}/s, burst={self.burst}, "
            f"granted={self.granted}, rejected={self.rejected})"
        )


class FixedWindowLimiter:
    """At most ``limit`` grants per aligned ``window``-second window."""

    def __init__(self, limit: int, window: float = 60.0) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.limit = int(limit)
        self.window = float(window)
        self._window_start = 0.0
        self._count = 0
        self.granted = 0
        self.rejected = 0

    def _roll(self, now: float) -> None:
        if now < self._window_start:
            raise ValueError(f"time went backwards: {now} < {self._window_start}")
        window_index = int(now // self.window)
        window_start = window_index * self.window
        if window_start > self._window_start:
            self._window_start = window_start
            self._count = 0

    def try_acquire(self, now: float) -> bool:
        """Consume one permit of the current window if any remain."""
        self._roll(now)
        if self._count < self.limit:
            self._count += 1
            self.granted += 1
            return True
        self.rejected += 1
        return False

    def next_available(self, now: float) -> float:
        """Now if permits remain, else the next window boundary."""
        self._roll(now)
        if self._count < self.limit:
            return now
        return self._window_start + self.window

    def __repr__(self) -> str:
        return (
            f"FixedWindowLimiter(limit={self.limit}/{self.window}s, "
            f"granted={self.granted}, rejected={self.rejected})"
        )


class UnlimitedLimiter:
    """A no-op limiter for rate-limit-off ablations (Table 4)."""

    def try_acquire(self, now: float) -> bool:
        """Always grants."""
        return True

    def next_available(self, now: float) -> float:
        """Immediately available."""
        return now

    def __repr__(self) -> str:
        return "UnlimitedLimiter()"
