"""Fault injection for the remote data services (chaos testing, §6.2).

The reproduction's value proposition is that the cache keeps agents fast
*and available* when the remote data service misbehaves, so every failure
path must be exercisable on demand. :class:`FaultInjector` is a seeded,
schedulable fault source wrapped around
:class:`~repro.network.remote.RemoteDataService` (and, through it, the
asyncio :class:`~repro.serving.aio.remote.AsyncRemoteService`):

* **Transient errors** — a fetch fails outright with
  :class:`RemoteUnavailable` after a short wasted round-trip
  (``error_latency``), with probability ``error_rate``.
* **Timeouts** — a fetch hangs for ``timeout_latency`` simulated seconds and
  then fails with :class:`RemoteTimeout`, with probability ``timeout_rate``.
* **Latency spikes** — a fetch succeeds but its service time is multiplied
  by ``spike_scale``, with probability ``spike_rate`` (a degraded backend
  rather than a dead one).
* **Blackout windows** — every fetch whose start time falls inside a
  scheduled ``(start, end)`` window fails with :class:`RemoteUnavailable`
  (a full outage). Windows are checked deterministically — no RNG draw — so
  recovery timing in tests does not depend on the fault stream.

All stochastic draws come from the injector's own seeded generator, separate
from the service's latency RNG, so attaching an injector never perturbs the
latency/jitter streams of the runs it shadows, and two injectors with the
same seed produce the same fault sequence.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.network.remote import RemoteFetchError


class InjectedFault(RemoteFetchError):
    """Base class for failures produced by a :class:`FaultInjector`."""


class RemoteUnavailable(InjectedFault):
    """The backend refused or dropped the call (transient error/blackout)."""


class RemoteTimeout(InjectedFault):
    """The call hung past its deadline; ``latency`` is the time wasted."""


class FaultInjector:
    """Seeded, schedulable fault source for a remote data service.

    Parameters
    ----------
    error_rate / timeout_rate:
        Per-fetch probabilities of a transient error / a timeout. Their sum
        must be <= 1 (a single uniform draw decides between them).
    spike_rate / spike_scale:
        Probability and magnitude of a latency spike (the fetch succeeds;
        its service time is multiplied by ``spike_scale``).
    error_latency / timeout_latency:
        Simulated seconds a caller wastes learning about an error / a
        timeout (errors fail fast, timeouts burn a full deadline).
    blackouts:
        Iterable of ``(start, end)`` simulated-time windows during which
        every fetch fails; more can be added with :meth:`schedule_blackout`.
    seed:
        Seed for the injector's private RNG.
    name:
        Used in exception messages and ``repr``.
    """

    def __init__(
        self,
        error_rate: float = 0.0,
        timeout_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_scale: float = 8.0,
        error_latency: float = 0.05,
        timeout_latency: float = 1.0,
        blackouts: Iterable[Sequence[float]] = (),
        seed: int = 0,
        name: str = "faults",
    ) -> None:
        for label, rate in (
            ("error_rate", error_rate),
            ("timeout_rate", timeout_rate),
            ("spike_rate", spike_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if error_rate + timeout_rate > 1.0:
            raise ValueError(
                f"error_rate + timeout_rate must be <= 1, "
                f"got {error_rate + timeout_rate}"
            )
        if spike_scale < 1.0:
            raise ValueError(f"spike_scale must be >= 1, got {spike_scale}")
        if error_latency < 0 or timeout_latency < 0:
            raise ValueError("fault latencies must be >= 0")
        self.error_rate = error_rate
        self.timeout_rate = timeout_rate
        self.spike_rate = spike_rate
        self.spike_scale = spike_scale
        self.error_latency = error_latency
        self.timeout_latency = timeout_latency
        self.name = name
        self.rng = np.random.default_rng(seed)
        self._blackouts: list[tuple[float, float]] = []
        for window in blackouts:
            self.schedule_blackout(*window)
        # -- statistics --
        self.injected_errors = 0
        self.injected_timeouts = 0
        self.injected_spikes = 0
        self.blackout_faults = 0

    def schedule_blackout(self, start: float, end: float) -> None:
        """Add an outage window ``[start, end)`` in simulated seconds."""
        if end <= start:
            raise ValueError(f"blackout end must be > start, got [{start}, {end})")
        self._blackouts.append((float(start), float(end)))

    @property
    def blackouts(self) -> tuple[tuple[float, float], ...]:
        return tuple(self._blackouts)

    def in_blackout(self, now: float) -> bool:
        """True when ``now`` falls inside a scheduled outage window."""
        return any(start <= now < end for start, end in self._blackouts)

    @property
    def total_faults(self) -> int:
        return self.injected_errors + self.injected_timeouts + self.blackout_faults

    def check(self, now: float) -> float:
        """Assess one fetch starting at ``now``.

        Raises :class:`RemoteUnavailable` / :class:`RemoteTimeout` when the
        fetch is to fail; otherwise returns the latency multiplier for this
        call (1.0 normally, ``spike_scale`` during a spike). Blackout
        windows are checked first and consume no randomness.
        """
        if self.in_blackout(now):
            self.blackout_faults += 1
            raise RemoteUnavailable(
                f"{self.name}: blackout at t={now:.3f}", latency=self.error_latency
            )
        if self.error_rate > 0 or self.timeout_rate > 0:
            draw = float(self.rng.uniform())
            if draw < self.error_rate:
                self.injected_errors += 1
                raise RemoteUnavailable(
                    f"{self.name}: injected transient error at t={now:.3f}",
                    latency=self.error_latency,
                )
            if draw < self.error_rate + self.timeout_rate:
                self.injected_timeouts += 1
                raise RemoteTimeout(
                    f"{self.name}: injected timeout at t={now:.3f}",
                    latency=self.timeout_latency,
                )
        if self.spike_rate > 0 and float(self.rng.uniform()) < self.spike_rate:
            self.injected_spikes += 1
            return self.spike_scale
        return 1.0

    def __repr__(self) -> str:
        return (
            f"FaultInjector({self.name!r}, error_rate={self.error_rate}, "
            f"timeout_rate={self.timeout_rate}, blackouts={self._blackouts}, "
            f"faults={self.total_faults})"
        )
