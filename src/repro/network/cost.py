"""Operational cost accounting.

Tracks API fees and GPU rental exactly as the paper's cost analysis does
(Table 1, Table 5): each remote call is charged a per-call fee, and GPU cost
accrues per occupied GPU-hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Table 1 prices, per single call (the table quotes per 1 000 requests).
PRICE_GOOGLE_SEARCH_PER_CALL = 0.005
PRICE_OPENAI_WEB_SEARCH_PER_CALL = 0.010
PRICE_OPENAI_PREVIEW_PER_CALL_HIGH = 0.025

#: §2.2: an H100 rents for about $1.49/hour.
PRICE_H100_PER_HOUR = 1.49


@dataclass
class CostMeter:
    """Accumulates API and GPU spend over an experiment.

    ``gpu_hourly_rate`` defaults to the H100 rate the paper quotes; call
    :meth:`charge_gpu_time` with occupied GPU-seconds (one GPU fully used
    for 10 s = 10 GPU-seconds).
    """

    gpu_hourly_rate: float = PRICE_H100_PER_HOUR
    api_cost: float = 0.0
    gpu_seconds: float = 0.0
    api_calls: int = 0
    _by_tool: dict = field(default_factory=dict)

    def charge_api_call(self, fee: float, tool: str = "search") -> None:
        """Record one remote API call costing ``fee`` dollars."""
        if fee < 0:
            raise ValueError(f"fee must be >= 0, got {fee}")
        self.api_cost += fee
        self.api_calls += 1
        self._by_tool[tool] = self._by_tool.get(tool, 0.0) + fee

    def charge_gpu_time(self, gpu_seconds: float) -> None:
        """Record ``gpu_seconds`` of GPU occupancy."""
        if gpu_seconds < 0:
            raise ValueError(f"gpu_seconds must be >= 0, got {gpu_seconds}")
        self.gpu_seconds += gpu_seconds

    @property
    def gpu_cost(self) -> float:
        """Dollars of GPU rental accrued so far."""
        return self.gpu_seconds / 3600.0 * self.gpu_hourly_rate

    @property
    def total_cost(self) -> float:
        """API fees plus GPU rental."""
        return self.api_cost + self.gpu_cost

    def by_tool(self) -> dict:
        """API spend broken down by tool name."""
        return dict(self._by_tool)

    def merge(self, other: "CostMeter") -> None:
        """Fold another meter's charges into this one."""
        self.api_cost += other.api_cost
        self.gpu_seconds += other.gpu_seconds
        self.api_calls += other.api_calls
        for tool, fee in other._by_tool.items():
            self._by_tool[tool] = self._by_tool.get(tool, 0.0) + fee

    def __repr__(self) -> str:
        return (
            f"CostMeter(api=${self.api_cost:.4f} over {self.api_calls} calls, "
            f"gpu=${self.gpu_cost:.4f})"
        )
