"""Cross-region network substrate.

Models the three externally visible behaviours of the paper's remote data
services: wide-area latency (300-500 ms per call for the search API, ~300 ms
for the self-hosted RAG service), provider rate limits with client-side
retry/backoff (Google's 100 queries/minute), and per-call fees ($5 per 1 000
requests for search — Table 1).

``RegionTopology`` describes inter-region RTTs; ``TokenBucket`` /
``FixedWindowLimiter`` enforce rate limits; ``RetryPolicy`` shapes backoff;
``CostMeter`` accumulates fees; and ``RemoteDataService`` composes them into
the thing the cache's miss path talks to. ``FaultInjector`` wraps a service
with seeded transient errors, timeouts, latency spikes, and blackout windows
for chaos testing; every failure is a ``RemoteFetchError`` subclass.
"""

from repro.network.faults import (
    FaultInjector,
    InjectedFault,
    RemoteTimeout,
    RemoteUnavailable,
)

from repro.network.cost import (
    CostMeter,
    PRICE_GOOGLE_SEARCH_PER_CALL,
    PRICE_H100_PER_HOUR,
)
from repro.network.ratelimit import (
    FixedWindowLimiter,
    RateLimiter,
    TokenBucket,
    UnlimitedLimiter,
)
from repro.network.remote import (
    RateLimitExceeded,
    RemoteDataService,
    RemoteFetchError,
    RetryPolicy,
)
from repro.network.topology import RegionTopology, default_topology

__all__ = [
    "CostMeter",
    "FaultInjector",
    "FixedWindowLimiter",
    "InjectedFault",
    "PRICE_GOOGLE_SEARCH_PER_CALL",
    "PRICE_H100_PER_HOUR",
    "RateLimitExceeded",
    "RateLimiter",
    "RegionTopology",
    "RemoteDataService",
    "RemoteFetchError",
    "RemoteTimeout",
    "RemoteUnavailable",
    "RetryPolicy",
    "TokenBucket",
    "UnlimitedLimiter",
    "default_topology",
]
